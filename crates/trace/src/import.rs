//! Loading and saving traces as CSV — the bridge to *real* market data.
//!
//! The paper drives its simulator with FERC/CAISO hourly prices and a
//! Microsoft Cosmos job trace. Users with access to such feeds can export
//! them as plain numeric CSV (one row per hour) and replay them here
//! instead of the synthetic processes; the schedulers cannot tell the
//! difference.
//!
//! Formats:
//!
//! * **price CSV** — header `dc1,dc2,…`, one price per data center per row;
//! * **workload CSV** — header `job1,job2,…`, one arrival count per job
//!   type per row.

use crate::csv::{read_csv, write_csv};
use crate::record::{PriceTrace, WorkloadTrace};
use std::io;
use std::path::Path;

/// Loads a price trace from CSV (columns = data centers, rows = slots).
///
/// # Errors
/// I/O errors, or [`io::ErrorKind::InvalidData`] if the file is empty,
/// ragged, or contains negative/non-finite prices.
pub fn load_price_trace<P: AsRef<Path>>(path: P) -> io::Result<PriceTrace> {
    let (headers, rows) = read_csv(path)?;
    if rows.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "price csv has no data rows",
        ));
    }
    let dcs = headers.len();
    let mut per_dc = vec![Vec::with_capacity(rows.len()); dcs];
    for (lineno, row) in rows.iter().enumerate() {
        for (i, &price) in row.iter().enumerate() {
            if !price.is_finite() || price < 0.0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {}: invalid price {price}", lineno + 2),
                ));
            }
            per_dc[i].push(price);
        }
    }
    Ok(PriceTrace::from_rates(per_dc))
}

/// Saves a price trace to CSV (flat base rates only).
///
/// # Errors
/// Any I/O error from writing the file.
pub fn save_price_trace<P: AsRef<Path>>(path: P, trace: &PriceTrace) -> io::Result<()> {
    let dcs = trace.num_data_centers();
    let headers: Vec<String> = (1..=dcs).map(|i| format!("dc{i}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let columns: Vec<Vec<f64>> = (0..dcs).map(|i| trace.rates(i)).collect();
    let rows = (0..trace.num_slots()).map(|t| columns.iter().map(|c| c[t]).collect());
    write_csv(path, &header_refs, rows)
}

/// Loads a workload trace from CSV (columns = job types, rows = slots).
///
/// # Errors
/// I/O errors, or [`io::ErrorKind::InvalidData`] if the file is empty or
/// contains negative/non-finite counts.
pub fn load_workload_trace<P: AsRef<Path>>(path: P) -> io::Result<WorkloadTrace> {
    let (_, rows) = read_csv(path)?;
    if rows.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "workload csv has no data rows",
        ));
    }
    for (lineno, row) in rows.iter().enumerate() {
        for &a in row {
            if !a.is_finite() || a < 0.0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {}: invalid arrival count {a}", lineno + 2),
                ));
            }
        }
    }
    Ok(WorkloadTrace::from_rows(rows))
}

/// Saves a workload trace to CSV.
///
/// # Errors
/// Any I/O error from writing the file.
pub fn save_workload_trace<P: AsRef<Path>>(path: P, trace: &WorkloadTrace) -> io::Result<()> {
    let j = trace.num_job_types();
    let headers: Vec<String> = (1..=j).map(|idx| format!("job{idx}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows = (0..trace.num_slots()).map(|t| trace.arrivals(t as u64).to_vec());
    write_csv(path, &header_refs, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("grefar-import-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn price_trace_roundtrip() {
        let path = temp_path("prices.csv");
        let trace = PriceTrace::from_rates(vec![vec![0.4, 0.5], vec![0.3, 0.35]]);
        save_price_trace(&path, &trace).unwrap();
        let loaded = load_price_trace(&path).unwrap();
        assert_eq!(loaded.num_data_centers(), 2);
        assert_eq!(loaded.num_slots(), 2);
        assert_eq!(loaded.rates(0), vec![0.4, 0.5]);
        assert_eq!(loaded.rates(1), vec![0.3, 0.35]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workload_trace_roundtrip() {
        let path = temp_path("work.csv");
        let trace = WorkloadTrace::from_rows(vec![vec![1.0, 2.0], vec![3.0, 0.0]]);
        save_workload_trace(&path, &trace).unwrap();
        let loaded = load_workload_trace(&path).unwrap();
        assert_eq!(loaded.num_job_types(), 2);
        assert_eq!(loaded.arrivals(1), &[3.0, 0.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_negative_prices() {
        let path = temp_path("bad-prices.csv");
        std::fs::write(&path, "dc1\n-0.5\n").unwrap();
        assert!(load_price_trace(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_empty_files() {
        let path = temp_path("empty.csv");
        std::fs::write(&path, "dc1\n").unwrap();
        assert!(load_price_trace(&path).is_err());
        assert!(load_workload_trace(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loaded_traces_drive_replay() {
        use crate::price::PriceProcess;
        let path = temp_path("replay.csv");
        std::fs::write(&path, "dc1\n0.25\n0.75\n").unwrap();
        let trace = load_price_trace(&path).unwrap();
        let mut replay = crate::price::ReplayPrice::new(trace.rates(0));
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        assert_eq!(replay.sample(0, &mut rng).base_rate(), 0.25);
        assert_eq!(replay.sample(3, &mut rng).base_rate(), 0.75);
        std::fs::remove_file(path).ok();
    }
}
