//! Random-sampling helpers shared by the trace generators.
//!
//! The workspace deliberately depends only on `rand` (no `rand_distr`), so
//! the Gaussian and Poisson samplers live here.

use rand::RngCore;

/// Uniform sample in `[0, 1)` built from 53 random mantissa bits.
pub(crate) fn uniform(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A Box–Muller standard-normal sampler that caches the second variate of
/// each pair.
///
/// # Example
/// ```
/// use grefar_trace::GaussianSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut g = GaussianSampler::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = g.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaussianSampler {
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal variate.
    pub fn sample(&mut self, rng: &mut dyn RngCore) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] to avoid ln(0).
        let u1 = 1.0 - uniform(rng);
        let u2 = uniform(rng);
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * core::f64::consts::PI * u2;
        self.cached = Some(radius * angle.sin());
        radius * angle.cos()
    }
}

/// Poisson sample via Knuth's algorithm (exact; fine for the small rates
/// used by the arrival models).
pub(crate) fn poisson(lambda: f64, rng: &mut dyn RngCore) -> u64 {
    debug_assert!(lambda >= 0.0 && lambda.is_finite());
    if lambda <= 0.0 {
        return 0;
    }
    // For large rates, fall back to a normal approximation to keep the
    // per-sample cost bounded.
    if lambda > 64.0 {
        let mut g = GaussianSampler::new();
        let v = lambda + lambda.sqrt() * g.sample(rng);
        return v.round().max(0.0) as u64;
    }
    let threshold = (-lambda).exp();
    let mut count = 0u64;
    let mut product = uniform(rng);
    while product > threshold {
        count += 1;
        product *= uniform(rng);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut g = GaussianSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_mean_small_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let mean = (0..n).map(|_| poisson(3.5, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_rate_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(200.0, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
