//! Batch-job arrival processes `a_j(t)` (§III-B, Fig. 1).
//!
//! The paper stresses that "the job arrivals may not follow any stationary
//! distributions, especially in an enterprise computing environment where
//! different organizations only submit job requests sporadically". The
//! [`CosmosLikeWorkload`] model reproduces exactly that: a diurnal base rate
//! per job type plus sporadic bursts, with arrivals hard-bounded by
//! `a_j^max` as required by eq. (1).

use crate::rng::{poisson, uniform};
use grefar_types::Slot;
use rand::RngCore;

/// A stochastic process producing the per-type arrival counts
/// `a(t) = (a_1(t), …, a_J(t))` one slot at a time.
pub trait ArrivalProcess {
    /// Samples the arrivals of slot `slot`; entry `j` is `a_j(t)`.
    fn sample(&mut self, slot: Slot, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Number of job types `J` this process produces.
    fn num_job_types(&self) -> usize;
}

/// Deterministic constant arrivals — useful for calibration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantWorkload {
    per_slot: Vec<f64>,
}

impl ConstantWorkload {
    /// Creates the process: `per_slot[j]` jobs of type `j` arrive each slot.
    ///
    /// # Panics
    /// Panics if any rate is negative or non-finite.
    pub fn new(per_slot: Vec<f64>) -> Self {
        for &a in &per_slot {
            assert!(
                a.is_finite() && a >= 0.0,
                "arrival counts must be non-negative and finite"
            );
        }
        Self { per_slot }
    }
}

impl ArrivalProcess for ConstantWorkload {
    fn sample(&mut self, _slot: Slot, _rng: &mut dyn RngCore) -> Vec<f64> {
        self.per_slot.clone()
    }

    fn num_job_types(&self) -> usize {
        self.per_slot.len()
    }
}

/// Replays a recorded arrival table (rows = slots), cycling when exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayWorkload {
    rows: Vec<Vec<f64>>,
}

impl ReplayWorkload {
    /// Creates the replay from recorded rows; all rows must have the same
    /// length.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "replay table must be non-empty");
        let j = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == j),
            "replay table must be rectangular"
        );
        Self { rows }
    }
}

impl ArrivalProcess for ReplayWorkload {
    fn sample(&mut self, slot: Slot, _rng: &mut dyn RngCore) -> Vec<f64> {
        self.rows[(slot as usize) % self.rows.len()].clone()
    }

    fn num_job_types(&self) -> usize {
        self.rows[0].len()
    }
}

/// Arrival statistics of one job type in the Cosmos-like model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobArrivalSpec {
    /// Mean arrivals per slot at the diurnal average.
    pub base_rate: f64,
    /// Relative diurnal modulation in `[0, 1]`: the Poisson rate swings
    /// between `base·(1 − amplitude)` and `base·(1 + amplitude)` over a day.
    pub diurnal_amplitude: f64,
    /// Slot of the daily rate *peak*.
    pub peak_slot: f64,
    /// Probability per slot of a sporadic submission burst.
    pub burst_probability: f64,
    /// Mean size (jobs) of a burst when it happens.
    pub burst_mean: f64,
    /// Hard bound `a_j^max` of eq. (1); samples are clamped to it.
    pub max_arrivals: f64,
    /// Rate multiplier applied on the 6th and 7th day of each week
    /// (weekends of an enterprise workload); 1 disables weekly seasonality.
    pub weekend_factor: f64,
}

impl JobArrivalSpec {
    /// A smooth diurnal spec without bursts or weekly seasonality.
    pub fn diurnal(base_rate: f64, amplitude: f64, peak_slot: f64, max_arrivals: f64) -> Self {
        Self {
            base_rate,
            diurnal_amplitude: amplitude,
            peak_slot,
            burst_probability: 0.0,
            burst_mean: 0.0,
            max_arrivals,
            weekend_factor: 1.0,
        }
    }

    /// Adds sporadic bursts to the spec.
    #[must_use]
    pub fn with_bursts(mut self, probability: f64, mean: f64) -> Self {
        self.burst_probability = probability;
        self.burst_mean = mean;
        self
    }

    /// Scales the rate by `factor` on the last two days of each week
    /// (enterprise submissions typically dip on weekends).
    #[must_use]
    pub fn with_weekend_factor(mut self, factor: f64) -> Self {
        self.weekend_factor = factor;
        self
    }

    fn validate(&self, j: usize) {
        assert!(
            self.base_rate.is_finite() && self.base_rate >= 0.0,
            "job {j}: base rate must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.diurnal_amplitude),
            "job {j}: diurnal amplitude must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.burst_probability),
            "job {j}: burst probability must lie in [0, 1]"
        );
        assert!(
            self.burst_mean.is_finite() && self.burst_mean >= 0.0,
            "job {j}: burst mean must be non-negative"
        );
        assert!(
            self.max_arrivals.is_finite() && self.max_arrivals >= 0.0,
            "job {j}: max arrivals must be non-negative and finite"
        );
        assert!(
            self.weekend_factor.is_finite() && self.weekend_factor >= 0.0,
            "job {j}: weekend factor must be non-negative and finite"
        );
    }
}

/// The Cosmos-like non-stationary arrival model: for each job type `j`,
///
/// ```text
/// rate_j(t) = base_j · (1 + amplitude_j · sin(2π (t − peak_j + P/4) / P))
/// a_j(t)    = min( Poisson(rate_j(t)) + burst_j(t),  a_j^max )
/// burst_j(t) = Poisson(burst_mean_j)  with probability burst_probability_j
/// ```
///
/// The result is time-dependent ("more jobs during the day"), sporadic per
/// organization and bounded — the three properties of the paper's Fig. 1
/// trace that matter to GreFar.
///
/// # Example
/// ```
/// use grefar_trace::{ArrivalProcess, CosmosLikeWorkload, JobArrivalSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let specs = vec![JobArrivalSpec::diurnal(5.0, 0.5, 14.0, 20.0)];
/// let mut w = CosmosLikeWorkload::new(specs, 24.0);
/// let mut rng = StdRng::seed_from_u64(2);
/// let a = w.sample(0, &mut rng);
/// assert!(a[0] >= 0.0 && a[0] <= 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CosmosLikeWorkload {
    specs: Vec<JobArrivalSpec>,
    period: f64,
}

impl CosmosLikeWorkload {
    /// Creates the model from per-type specs and the diurnal `period`
    /// (slots per day).
    ///
    /// # Panics
    /// Panics if `specs` is empty, `period <= 0`, or any spec is invalid.
    pub fn new(specs: Vec<JobArrivalSpec>, period: f64) -> Self {
        assert!(!specs.is_empty(), "at least one job type is required");
        assert!(period > 0.0, "period must be positive");
        for (j, s) in specs.iter().enumerate() {
            s.validate(j);
        }
        Self { specs, period }
    }

    /// The per-type specs.
    pub fn specs(&self) -> &[JobArrivalSpec] {
        &self.specs
    }

    /// The deterministic Poisson rate of type `j` at `slot` (before bursts
    /// and clamping) — exposed for calibration tests.
    pub fn rate(&self, j: usize, slot: Slot) -> f64 {
        let s = &self.specs[j];
        let angle = 2.0 * core::f64::consts::PI * (slot as f64 - s.peak_slot + self.period / 4.0)
            / self.period;
        let day_of_week = ((slot as f64 / self.period).floor() as u64) % 7;
        let weekly = if day_of_week >= 5 {
            s.weekend_factor
        } else {
            1.0
        };
        s.base_rate * weekly * (1.0 + s.diurnal_amplitude * angle.sin())
    }
}

impl ArrivalProcess for CosmosLikeWorkload {
    fn sample(&mut self, slot: Slot, rng: &mut dyn RngCore) -> Vec<f64> {
        let day_of_week = ((slot as f64 / self.period).floor() as u64) % 7;
        self.specs
            .iter()
            .enumerate()
            .map(|(j, s)| {
                let mut count = poisson(self.rate(j, slot), rng) as f64;
                if s.burst_probability > 0.0 && uniform(rng) < s.burst_probability {
                    // Sporadic dumps dip on weekends like the base flow.
                    let weekly = if day_of_week >= 5 {
                        s.weekend_factor
                    } else {
                        1.0
                    };
                    count += poisson(s.burst_mean * weekly, rng) as f64;
                }
                count.min(s.max_arrivals)
            })
            .collect()
    }

    fn num_job_types(&self) -> usize {
        self.specs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn constant_workload() {
        let mut w = ConstantWorkload::new(vec![1.0, 2.0]);
        assert_eq!(w.num_job_types(), 2);
        assert_eq!(w.sample(5, &mut rng()), vec![1.0, 2.0]);
    }

    #[test]
    fn replay_cycles_rows() {
        let mut w = ReplayWorkload::new(vec![vec![1.0], vec![2.0]]);
        let mut r = rng();
        assert_eq!(w.sample(0, &mut r), vec![1.0]);
        assert_eq!(w.sample(3, &mut r), vec![2.0]);
        assert_eq!(w.num_job_types(), 1);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn replay_rejects_ragged() {
        let _ = ReplayWorkload::new(vec![vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn rate_peaks_at_peak_slot() {
        let w =
            CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(10.0, 0.5, 14.0, 100.0)], 24.0);
        assert!((w.rate(0, 14) - 15.0).abs() < 1e-9);
        assert!((w.rate(0, 2) - 5.0).abs() < 1e-9); // 12 h later: trough
    }

    #[test]
    fn arrivals_are_bounded_and_integral() {
        let specs = vec![JobArrivalSpec::diurnal(8.0, 0.6, 14.0, 12.0).with_bursts(0.3, 10.0)];
        let mut w = CosmosLikeWorkload::new(specs, 24.0);
        let mut r = rng();
        for t in 0..2000 {
            let a = w.sample(t, &mut r)[0];
            assert!(a >= 0.0 && a <= 12.0, "slot {t}: {a}");
            assert_eq!(a, a.trunc(), "arrivals must be whole jobs");
        }
    }

    #[test]
    fn mean_tracks_rate_without_bursts() {
        let mut w =
            CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(6.0, 0.0, 0.0, 1e6)], 24.0);
        let mut r = rng();
        let n = 30_000;
        let mean: f64 = (0..n).map(|t| w.sample(t, &mut r)[0]).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn bursts_add_sporadic_mass() {
        let smooth =
            CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(2.0, 0.0, 0.0, 1e6)], 24.0);
        let mut bursty = CosmosLikeWorkload::new(
            vec![JobArrivalSpec::diurnal(2.0, 0.0, 0.0, 1e6).with_bursts(0.1, 20.0)],
            24.0,
        );
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|t| bursty.sample(t, &mut r)[0]).sum::<f64>() / n as f64;
        // Expected: 2 + 0.1 · 20 = 4.
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
        // The smooth model (not sampled) has rate exactly 2.
        assert!((smooth.rate(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_shape_visible_in_sample_means() {
        let mut w =
            CosmosLikeWorkload::new(vec![JobArrivalSpec::diurnal(10.0, 0.8, 14.0, 1e6)], 24.0);
        let mut r = rng();
        let days = 600;
        let mut by_hour = vec![0.0f64; 24];
        for d in 0..days {
            for h in 0..24 {
                by_hour[h] += w.sample((d * 24 + h) as Slot, &mut r)[0];
            }
        }
        let peak = by_hour[14] / days as f64;
        let trough = by_hour[2] / days as f64;
        assert!(peak > 2.0 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    #[should_panic(expected = "at least one job type")]
    fn rejects_empty_specs() {
        let _ = CosmosLikeWorkload::new(vec![], 24.0);
    }

    #[test]
    fn weekend_factor_dips_on_days_five_and_six() {
        let w = CosmosLikeWorkload::new(
            vec![JobArrivalSpec::diurnal(10.0, 0.0, 0.0, 1e6).with_weekend_factor(0.3)],
            24.0,
        );
        assert_eq!(w.rate(0, 24 * 2), 10.0); // Wednesday
        assert_eq!(w.rate(0, 24 * 5), 3.0); // Saturday
        assert_eq!(w.rate(0, 24 * 6 + 12), 3.0); // Sunday
        assert_eq!(w.rate(0, 24 * 7), 10.0); // next Monday
    }

    #[test]
    fn weekly_pattern_visible_in_samples() {
        let mut w = CosmosLikeWorkload::new(
            vec![JobArrivalSpec::diurnal(8.0, 0.0, 0.0, 1e6).with_weekend_factor(0.25)],
            24.0,
        );
        let mut r = rng();
        let weeks = 200;
        let mut weekday_sum = 0.0;
        let mut weekend_sum = 0.0;
        for week in 0..weeks {
            for day in 0..7u64 {
                let slot = (week * 7 + day) * 24;
                let a = w.sample(slot, &mut r)[0];
                if day >= 5 {
                    weekend_sum += a;
                } else {
                    weekday_sum += a;
                }
            }
        }
        let weekday_mean = weekday_sum / (weeks * 5) as f64;
        let weekend_mean = weekend_sum / (weeks * 2) as f64;
        assert!(
            weekend_mean < 0.5 * weekday_mean,
            "weekday {weekday_mean} vs weekend {weekend_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "weekend factor")]
    fn rejects_bad_weekend_factor() {
        let _ = CosmosLikeWorkload::new(
            vec![JobArrivalSpec::diurnal(1.0, 0.0, 0.0, 10.0).with_weekend_factor(f64::NAN)],
            24.0,
        );
    }
}
