//! Property tests for the trace generators: boundedness (eq. (1)), price
//! floors, reproducibility, and statistical calibration.

use grefar_trace::{
    ArrivalProcess, CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceProcess,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = JobArrivalSpec> {
    (
        0.1f64..10.0, // base rate
        0.0f64..1.0,  // amplitude
        0.0f64..24.0, // peak
        0.0f64..0.3,  // burst probability
        0.0f64..20.0, // burst mean
        0.2f64..1.0,  // weekend factor
    )
        .prop_map(|(base, amp, peak, bp, bm, wf)| {
            let a_max = (3.0 * base + bm + 5.0).ceil();
            JobArrivalSpec::diurnal(base, amp, peak, a_max)
                .with_bursts(bp, bm)
                .with_weekend_factor(wf)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Arrivals are integral, non-negative and bounded by a^max (eq. (1)),
    /// whatever the spec.
    #[test]
    fn arrivals_bounded_and_integral(
        specs in proptest::collection::vec(spec_strategy(), 1..=4),
        seed in any::<u64>(),
    ) {
        let caps: Vec<f64> = specs.iter().map(|s| s.max_arrivals).collect();
        let mut w = CosmosLikeWorkload::new(specs, 24.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..500 {
            let a = w.sample(t, &mut rng);
            for (j, (&v, &cap)) in a.iter().zip(&caps).enumerate() {
                prop_assert!(v >= 0.0, "negative arrivals for type {j}");
                prop_assert!(v <= cap + 1e-9, "type {j}: {v} > a^max {cap}");
                prop_assert_eq!(v, v.trunc(), "arrivals must be whole jobs");
            }
        }
    }

    /// The diurnal price model respects its floor and is reproducible.
    #[test]
    fn prices_floored_and_reproducible(
        mean in 0.1f64..1.0,
        amp_frac in 0.0f64..0.5,
        sigma in 0.0f64..0.2,
        floor_frac in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let make = || {
            DiurnalPriceModel::new(mean, mean * amp_frac, 24.0, 6.0)
                .with_noise(0.6, sigma)
                .with_floor(mean * floor_frac)
        };
        let mut m1 = make();
        let mut m2 = make();
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        for t in 0..300 {
            let p1 = m1.sample(t, &mut r1).base_rate();
            let p2 = m2.sample(t, &mut r2).base_rate();
            prop_assert_eq!(p1, p2, "same seed must replay identically");
            prop_assert!(p1 >= mean * floor_frac - 1e-12, "floor violated: {p1}");
            prop_assert!(p1.is_finite());
        }
    }

    /// Sampled arrival means track the configured rates within sampling
    /// error when the cap is generous.
    #[test]
    fn arrival_means_track_rates(base in 0.5f64..6.0, seed in any::<u64>()) {
        let spec = JobArrivalSpec::diurnal(base, 0.0, 0.0, 1e6);
        let mut w = CosmosLikeWorkload::new(vec![spec], 24.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 8_000;
        let mean: f64 = (0..n).map(|t| w.sample(t, &mut rng)[0]).sum::<f64>() / n as f64;
        // 5-sigma tolerance for a Poisson mean estimate.
        let tol = 5.0 * (base / n as f64).sqrt();
        prop_assert!((mean - base).abs() < tol, "mean {mean} vs rate {base} (tol {tol})");
    }
}
