//! `grefar-soak` — deterministic whole-system chaos soak.
//!
//! ```text
//! grefar-soak run [--seeds N] [--start S] [--dir DIR] [--keep-going]
//! grefar-soak replay FILE
//! grefar-soak selfcheck [--seed S]
//! ```
//!
//! * `run` expands each seed into a composed scenario and soaks it
//!   through the batch, crash and daemon legs. On the first oracle
//!   violation it shrinks the scenario to a minimal failing clause set,
//!   writes a repro file under `--dir` (default `soak-failures`), and
//!   exits 1.
//! * `replay` re-executes a repro file twice and certifies the recorded
//!   oracle fires both times with bit-identical detail (exit 0 when the
//!   failure reproduces deterministically, 1 when it does not).
//! * `selfcheck` proves the oracles can fail: it corrupts one queue
//!   update behind the physics' back, demands the conservation-ledger
//!   oracle catches it, shrinks the failure to at most three clauses, and
//!   replays the shrunk repro bit-identically. A green selfcheck is the
//!   license to trust a green `run`.
//!
//! Exit codes: 0 success, 1 oracle violation (or selfcheck/replay
//! failure), 2 usage or harness error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use grefar_soak::{repro, run_scenario, shrink, Clause, OracleKind, Scenario, Violation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("selfcheck") => cmd_selfcheck(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            Ok(ExitCode::from(if args.is_empty() { 2 } else { 0 }))
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match code {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  grefar-soak run [--seeds N] [--start S] [--dir DIR] [--keep-going]
  grefar-soak replay FILE
  grefar-soak selfcheck [--seed S]";

/// A scratch directory for one scenario's transient files.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("grefar-soak-{}-{tag}", std::process::id()))
}

fn parse_u64(args: &[String], index: usize, flag: &str) -> Result<u64, String> {
    args.get(index)
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<u64>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut seeds: u64 = 20;
    let mut start: u64 = 0;
    let mut dir = PathBuf::from("soak-failures");
    let mut keep_going = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                seeds = parse_u64(args, i + 1, "--seeds")?;
                i += 2;
            }
            "--start" => {
                start = parse_u64(args, i + 1, "--start")?;
                i += 2;
            }
            "--dir" => {
                dir = PathBuf::from(args.get(i + 1).ok_or("--dir needs a value")?);
                i += 2;
            }
            "--keep-going" => {
                keep_going = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let mut failures: u64 = 0;
    for seed in start..start + seeds {
        let scenario = Scenario::generate(seed);
        let scratch = scratch_dir(&format!("run-{seed}"));
        let outcome = run_scenario(&scenario, &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        let report = outcome.map_err(|e| format!("seed {seed}: {e}"))?;
        match report.violation {
            None => println!(
                "seed {seed}: ok  (horizon {}, {} clause(s), occupancy {}, {} restart(s))",
                scenario.horizon,
                scenario.clauses.len(),
                if report.occupancy_checked {
                    "checked"
                } else {
                    "uncertified"
                },
                report.restarts,
            ),
            Some(violation) => {
                failures += 1;
                let path = report_failure(&scenario, &violation, &dir, &format!("seed-{seed}"))?;
                println!("seed {seed}: FAIL {violation}");
                println!("  shrunk repro written to {}", path.display());
                if !keep_going {
                    return Ok(ExitCode::from(1));
                }
            }
        }
    }
    if failures > 0 {
        println!("{failures} failing seed(s)");
        return Ok(ExitCode::from(1));
    }
    println!("all {seeds} seed(s) green");
    Ok(ExitCode::SUCCESS)
}

/// Shrinks a failing scenario and writes its repro file; returns the
/// path.
fn report_failure(
    scenario: &Scenario,
    violation: &Violation,
    dir: &Path,
    tag: &str,
) -> Result<PathBuf, String> {
    let scratch = scratch_dir(&format!("shrink-{tag}"));
    let shrunk = shrink(scenario, violation.oracle, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "  shrunk {} -> {} clause(s) in {} probe(s)",
        shrunk.original_clauses,
        shrunk.scenario.clauses.len(),
        shrunk.probes
    );
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    let path = dir.join(format!("repro-{tag}.txt"));
    std::fs::write(&path, repro::render(&shrunk.scenario, violation))
        .map_err(|e| format!("write {path:?}: {e}"))?;
    Ok(path)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let file = args
        .first()
        .ok_or(format!("replay needs a file\n{USAGE}"))?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
    let parsed = repro::parse(&text)?;
    let (first, second) = replay_twice(&parsed.scenario, "replay")?;
    match verify_replay(&parsed.oracle, &first, &second) {
        Ok(violation) => {
            println!("reproduced deterministically: {violation}");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            println!("did not reproduce: {why}");
            Ok(ExitCode::from(1))
        }
    }
}

/// Runs a scenario twice in fresh scratch directories.
fn replay_twice(
    scenario: &Scenario,
    tag: &str,
) -> Result<(Option<Violation>, Option<Violation>), String> {
    let dir_a = scratch_dir(&format!("{tag}-a"));
    let dir_b = scratch_dir(&format!("{tag}-b"));
    let a = run_scenario(scenario, &dir_a);
    let _ = std::fs::remove_dir_all(&dir_a);
    let b = run_scenario(scenario, &dir_b);
    let _ = std::fs::remove_dir_all(&dir_b);
    Ok((a?.violation, b?.violation))
}

/// Certifies two replays of a repro agree with each other and with the
/// recorded oracle, returning the reproduced violation.
fn verify_replay(
    recorded: &Option<OracleKind>,
    first: &Option<Violation>,
    second: &Option<Violation>,
) -> Result<Violation, String> {
    let first = first.clone().ok_or("first replay was green")?;
    let second = second.clone().ok_or("second replay was green")?;
    if let Some(recorded) = recorded {
        if first.oracle != *recorded {
            return Err(format!(
                "repro recorded oracle {recorded}, replay tripped {}",
                first.oracle
            ));
        }
    }
    if first != second {
        return Err(format!(
            "replays diverged:\n  first:  {first}\n  second: {second}"
        ));
    }
    Ok(first)
}

fn cmd_selfcheck(args: &[String]) -> Result<ExitCode, String> {
    let mut seed: u64 = 11;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = parse_u64(args, i + 1, "--seed")?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let mut scenario = Scenario::generate(seed);
    scenario.clauses.push(Clause::Corrupt {
        slot: scenario.horizon / 2,
        delta: 7.0,
    });
    println!(
        "selfcheck: corrupting one queue update at slot {} of seed {seed}",
        scenario.horizon / 2
    );
    let scratch = scratch_dir("selfcheck");
    let outcome = run_scenario(&scenario, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    let violation = match outcome?.violation {
        Some(v) if v.oracle == OracleKind::Ledger => v,
        Some(v) => {
            println!("selfcheck FAILED: expected the ledger oracle, got {v}");
            return Ok(ExitCode::from(1));
        }
        None => {
            println!(
                "selfcheck FAILED: the oracles missed a corrupted queue update — \
                 a green soak proves nothing"
            );
            return Ok(ExitCode::from(1));
        }
    };
    println!("selfcheck: caught as expected: {violation}");
    let scratch = scratch_dir("selfcheck-shrink");
    let shrunk = shrink(&scenario, violation.oracle, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "selfcheck: shrunk {} -> {} clause(s) in {} probe(s)",
        shrunk.original_clauses,
        shrunk.scenario.clauses.len(),
        shrunk.probes
    );
    if shrunk.scenario.clauses.len() > 3 {
        println!(
            "selfcheck FAILED: shrunk repro still has {} clauses (expected <= 3)",
            shrunk.scenario.clauses.len()
        );
        return Ok(ExitCode::from(1));
    }
    // Round-trip the shrunk repro through the file format, then replay it
    // twice and demand bit-identical violations.
    let repro_text = repro::render(&shrunk.scenario, &violation);
    let parsed = repro::parse(&repro_text)?;
    let (first, second) = replay_twice(&parsed.scenario, "selfcheck-replay")?;
    match verify_replay(&parsed.oracle, &first, &second) {
        Ok(replayed) => {
            println!("selfcheck: shrunk repro replays bit-identically: {replayed}");
            println!("selfcheck ok");
            Ok(ExitCode::SUCCESS)
        }
        Err(why) => {
            println!("selfcheck FAILED: shrunk repro did not replay: {why}");
            Ok(ExitCode::from(1))
        }
    }
}
