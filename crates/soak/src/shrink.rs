//! Automatic failure shrinking: greedy delta-debugging over a failing
//! scenario's clause list.
//!
//! The shrinker repeatedly tries removing one clause at a time and keeps
//! any removal under which the *same oracle* still fires. Preserving the
//! oracle kind is the invariant that makes the output a smaller instance
//! of the same bug rather than a different bug that happens to be nearby;
//! the scalar frame (seed, horizon, `V`, the kill slot) is never touched,
//! so a shrunk repro replays through the exact same code paths.

use std::path::Path;

use crate::oracle::OracleKind;
use crate::runner::run_scenario;
use crate::scenario::Scenario;

/// The shrinking transcript: the minimal scenario plus how much work it
/// took (for the console summary).
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized scenario — every remaining clause is load-bearing:
    /// removing any single one makes the oracle stop firing.
    pub scenario: Scenario,
    /// Clauses in the original failing scenario.
    pub original_clauses: usize,
    /// Re-runs spent probing candidates.
    pub probes: u32,
}

/// Minimizes `scenario`'s clause list while `oracle` keeps firing.
/// `scratch` is a directory for the probe runs' transient files (each
/// probe uses a fresh subdirectory).
///
/// A probe that errors at the harness level (I/O, build) is treated as
/// "does not reproduce" — the candidate is rejected and the clause kept,
/// which is conservative in the right direction: the result can only be
/// larger, never wrong.
pub fn shrink(scenario: &Scenario, oracle: OracleKind, scratch: &Path) -> Shrunk {
    let original_clauses = scenario.clauses.len();
    let mut current = scenario.clone();
    let mut probes: u32 = 0;
    loop {
        let mut improved = false;
        for index in 0..current.clauses.len() {
            let mut candidate = current.clone();
            candidate.clauses.remove(index);
            probes += 1;
            if reproduces(&candidate, oracle, scratch, probes) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    Shrunk {
        scenario: current,
        original_clauses,
        probes,
    }
}

/// Whether `candidate` still trips `oracle`.
fn reproduces(candidate: &Scenario, oracle: OracleKind, scratch: &Path, probe: u32) -> bool {
    let dir = scratch.join(format!("probe-{probe}"));
    let hit = matches!(
        run_scenario(candidate, &dir),
        Ok(report) if report.violation.as_ref().map(|v| v.oracle) == Some(oracle)
    );
    let _ = std::fs::remove_dir_all(&dir);
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Clause;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("grefar-soak-sh-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shrinks_a_corrupted_scenario_to_the_corruption_alone() {
        // Decoy clauses that have nothing to do with the ledger break.
        let scenario = Scenario {
            seed: 11,
            horizon: 12,
            v: 2.5,
            beta: 0.0,
            admission_cap: None,
            checkpoint_every: 3,
            kill_at: 5,
            clauses: vec![
                Clause::Traffic {
                    t: 2,
                    job: 1,
                    count: 1.0,
                },
                Clause::Corrupt {
                    slot: 6,
                    delta: 5.0,
                },
                Clause::Traffic {
                    t: 9,
                    job: 0,
                    count: 2.0,
                },
            ],
        };
        let dir = scratch("ledger");
        let first = run_scenario(&scenario, &dir).unwrap().violation.unwrap();
        assert_eq!(first.oracle, OracleKind::Ledger);
        let shrunk = shrink(&scenario, first.oracle, &dir);
        assert_eq!(
            shrunk.scenario.clauses,
            vec![Clause::Corrupt {
                slot: 6,
                delta: 5.0,
            }],
            "only the corruption is load-bearing"
        );
        assert_eq!(shrunk.original_clauses, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
