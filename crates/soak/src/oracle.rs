//! The soak oracles: what "the system behaved" means, as a closed set of
//! checkable judgments. Each violation names its oracle so the shrinker
//! can minimize a scenario while preserving the *kind* of failure (a
//! shrink that turns a ledger imbalance into a resume divergence found a
//! different bug, not a smaller instance of the same one).

use std::fmt;

/// Which judgment failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Job conservation: `admitted − served + route_excess` must equal the
    /// queued mass, every slot, within accumulated float tolerance.
    Ledger,
    /// The widened stale-aware Theorem 1(a) bound: peak queue occupancy
    /// must stay under `stale_queue_bound(V) + q_max · squeezed_slots`
    /// whenever the scenario admits a slackness certificate.
    Occupancy,
    /// Kill-9/resume identity: the truncated-then-resumed telemetry
    /// stream must diff clean against the uninterrupted reference.
    ResumeDiff,
    /// Supervisor conformance: the daemon must exit 0 and restart exactly
    /// once per scheduled kill window, within its restart budget.
    Restart,
    /// Live-vs-offline metrics identity: refolding the recorded telemetry
    /// must render byte-identical to the daemon's live metrics snapshot.
    Fold,
}

impl OracleKind {
    /// The stable label used in repro files and console output.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Ledger => "ledger",
            OracleKind::Occupancy => "occupancy",
            OracleKind::ResumeDiff => "resume-diff",
            OracleKind::Restart => "restart",
            OracleKind::Fold => "fold",
        }
    }

    /// Parses a [`label`](OracleKind::label) back.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "ledger" => Some(OracleKind::Ledger),
            "occupancy" => Some(OracleKind::Occupancy),
            "resume-diff" => Some(OracleKind::ResumeDiff),
            "restart" => Some(OracleKind::Restart),
            "fold" => Some(OracleKind::Fold),
            _ => None,
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One oracle failure: the judgment that fired plus a deterministic
/// detail string (two runs of the same scenario must produce the same
/// detail — that is what `grefar-soak replay` certifies).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which oracle fired.
    pub oracle: OracleKind,
    /// Deterministic, human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// Builds a violation.
    pub fn new(oracle: OracleKind, detail: impl Into<String>) -> Self {
        Violation {
            oracle,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for kind in [
            OracleKind::Ledger,
            OracleKind::Occupancy,
            OracleKind::ResumeDiff,
            OracleKind::Restart,
            OracleKind::Fold,
        ] {
            assert_eq!(OracleKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(OracleKind::parse("nope"), None);
    }
}
