//! The canonical repro file: a failing (usually shrunk) scenario plus the
//! oracle it trips, serialized as plain `key=value` text so it survives
//! bug trackers, diffs and hand-editing. `grefar-soak replay FILE`
//! parses one of these and re-executes it.
//!
//! ```text
//! # grefar-soak repro — replay with `grefar-soak replay <file>`
//! seed=7
//! horizon=30
//! v=2.5
//! beta=0
//! cap=none
//! ckpt_every=4
//! kill_at=11
//! oracle=ledger
//! detail=slot 5: conservation balance ...
//! clause=corrupt slot=5,delta=4
//! ```
//!
//! `oracle=` and `detail=` record what the original run observed (the
//! replay verifies the same oracle fires again); `clause=` lines are the
//! scenario's clause list in order. `detail=` newlines are escaped as
//! `\n` so the file stays line-oriented.

use crate::oracle::{OracleKind, Violation};
use crate::scenario::{Clause, Scenario};

/// A parsed repro file.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The scenario to replay.
    pub scenario: Scenario,
    /// The oracle the original run tripped, when recorded.
    pub oracle: Option<OracleKind>,
    /// The original violation detail, when recorded.
    pub detail: Option<String>,
}

/// Serializes a failing scenario and its violation into the repro format.
pub fn render(scenario: &Scenario, violation: &Violation) -> String {
    let mut out = String::new();
    out.push_str("# grefar-soak repro — replay with `grefar-soak replay <file>`\n");
    out.push_str(&format!("seed={}\n", scenario.seed));
    out.push_str(&format!("horizon={}\n", scenario.horizon));
    out.push_str(&format!("v={}\n", scenario.v));
    out.push_str(&format!("beta={}\n", scenario.beta));
    match scenario.admission_cap {
        None => out.push_str("cap=none\n"),
        Some(cap) => out.push_str(&format!("cap={cap}\n")),
    }
    out.push_str(&format!("ckpt_every={}\n", scenario.checkpoint_every));
    out.push_str(&format!("kill_at={}\n", scenario.kill_at));
    out.push_str(&format!("oracle={}\n", violation.oracle));
    out.push_str(&format!(
        "detail={}\n",
        violation.detail.replace('\\', "\\\\").replace('\n', "\\n")
    ));
    for clause in &scenario.clauses {
        out.push_str(&format!("clause={}\n", clause.spec()));
    }
    out
}

/// Parses the repro format back.
///
/// # Errors
/// A message naming the offending line for any syntax problem or missing
/// required key.
pub fn parse(text: &str) -> Result<Repro, String> {
    let mut seed = None;
    let mut horizon = None;
    let mut v = None;
    let mut beta = None;
    let mut cap: Option<Option<f64>> = None;
    let mut ckpt_every = None;
    let mut kill_at = None;
    let mut oracle = None;
    let mut detail = None;
    let mut clauses = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key=value, got {line:?}", lineno + 1))?;
        let bad = |e: &dyn std::fmt::Display| format!("line {}: {key}: {e}", lineno + 1);
        match key {
            "seed" => seed = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
            "horizon" => horizon = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
            "v" => v = Some(value.parse::<f64>().map_err(|e| bad(&e))?),
            "beta" => beta = Some(value.parse::<f64>().map_err(|e| bad(&e))?),
            "cap" => {
                cap = Some(if value == "none" {
                    None
                } else {
                    Some(value.parse::<f64>().map_err(|e| bad(&e))?)
                })
            }
            "ckpt_every" => ckpt_every = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
            "kill_at" => kill_at = Some(value.parse::<u64>().map_err(|e| bad(&e))?),
            "oracle" => {
                oracle = Some(
                    OracleKind::parse(value)
                        .ok_or_else(|| format!("line {}: unknown oracle {value:?}", lineno + 1))?,
                )
            }
            "detail" => detail = Some(unescape(value)),
            "clause" => clauses.push(Clause::parse(value).map_err(|e| bad(&e))?),
            other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
        }
    }
    let require = |name: &str| format!("missing required key {name}=");
    let scenario = Scenario {
        seed: seed.ok_or_else(|| require("seed"))?,
        horizon: horizon.ok_or_else(|| require("horizon"))?,
        v: v.ok_or_else(|| require("v"))?,
        beta: beta.ok_or_else(|| require("beta"))?,
        admission_cap: cap.ok_or_else(|| require("cap"))?,
        checkpoint_every: ckpt_every.ok_or_else(|| require("ckpt_every"))?,
        kill_at: kill_at.ok_or_else(|| require("kill_at"))?,
        clauses,
    };
    Ok(Repro {
        scenario,
        oracle,
        detail,
    })
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrips() {
        let scenario = Scenario {
            seed: 42,
            horizon: 30,
            v: 2.5,
            beta: 0.2,
            admission_cap: Some(75.0),
            checkpoint_every: 4,
            kill_at: 11,
            clauses: vec![
                Clause::Fault("outage:dc=1,start=3,end=6".to_string()),
                Clause::Traffic {
                    t: 7,
                    job: 3,
                    count: 2.0,
                },
                Clause::Corrupt {
                    slot: 5,
                    delta: 4.0,
                },
            ],
        };
        let violation = Violation::new(
            OracleKind::Ledger,
            "slot 5: balance 4.0 exceeds tolerance\nsecond line",
        );
        let text = render(&scenario, &violation);
        let repro = parse(&text).unwrap();
        assert_eq!(repro.scenario, scenario);
        assert_eq!(repro.oracle, Some(OracleKind::Ledger));
        assert_eq!(repro.detail.as_deref(), Some(violation.detail.as_str()));
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse("seed=1\nwhat even is this\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse("seed=1\nhorizon=nope\n").unwrap_err();
        assert!(err.contains("horizon"), "{err}");
        let err = parse("seed=1\n").unwrap_err();
        assert!(err.contains("horizon="), "{err}");
    }

    #[test]
    fn generated_scenarios_roundtrip_through_the_repro_format() {
        for seed in 0..32 {
            let scenario = Scenario::generate(seed);
            let violation = Violation::new(OracleKind::Occupancy, "x");
            let repro = parse(&render(&scenario, &violation)).unwrap();
            assert_eq!(repro.scenario, scenario, "seed {seed}");
        }
    }
}
