//! Drives one [`Scenario`] through the three soak legs and returns the
//! first oracle violation, if any. See the [crate docs](crate) for the
//! leg-by-leg contract.
//!
//! The legs run in order and stop at the first violation: a scenario
//! whose ledger is already broken in the batch leg would fail the resume
//! diff and the daemon oracles for the same underlying reason, and the
//! shrinker needs one stable failure signature, not three echoes of it.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::thread;
use std::time::Duration;

use grefar_core::theory::{slackness_delta_trace, TheoryBounds};
use grefar_core::{GreFar, GreFarParams};
use grefar_metrics::MetricsFold;
use grefar_obs::json::{parse_object, JsonValue};
use grefar_obs::JsonlSink;
use grefar_report::{diff_streams, DiffOptions};
use grefar_served::state_keeper::Clock;
use grefar_served::{
    run_daemon, ChaosPlan, DaemonOptions, EngineSpec, RestartPolicy, SchedulerSpec,
};
use grefar_sim::{Checkpoint, PaperScenario, RunPolicy, SimError, Simulation, SteppedRun};
use grefar_types::SystemConfig;

use crate::oracle::{OracleKind, Violation};
use crate::scenario::Scenario;

/// Relative slack on the occupancy comparison — the bound itself is an
/// analytic quantity computed in the same float arithmetic as the run, so
/// anything beyond rounding noise is a genuine breach.
const OCCUPANCY_EPS: f64 = 1e-6;

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The first oracle violation, or `None` for a green run.
    pub violation: Option<Violation>,
    /// Whether the occupancy oracle was live (the scenario admitted a
    /// slackness certificate) or skipped.
    pub occupancy_checked: bool,
    /// Slots executed per leg.
    pub slots: u64,
    /// Supervisor restarts observed in the daemon leg (0 when the run
    /// stopped before that leg).
    pub restarts: u64,
}

/// Runs `scenario` end to end, using `scratch` for checkpoints, journals
/// and telemetry files. The directory is created if missing; callers own
/// cleanup (and uniqueness across parallel runs).
///
/// # Errors
/// Harness-level failures — I/O, thread, or build errors that say nothing
/// about the system under test. Oracle failures are *not* errors; they
/// come back inside [`SoakReport::violation`].
pub fn run_scenario(scenario: &Scenario, scratch: &Path) -> Result<SoakReport, String> {
    scenario.validate()?;
    std::fs::create_dir_all(scratch).map_err(|e| format!("create {scratch:?}: {e}"))?;
    let mut report = SoakReport {
        violation: None,
        occupancy_checked: false,
        slots: scenario.horizon,
        restarts: 0,
    };

    // Leg 1: batch reference with per-slot ledger + occupancy oracles.
    let (reference, violation, occupancy_checked) = batch_leg(scenario)?;
    report.occupancy_checked = occupancy_checked;
    if violation.is_some() {
        report.violation = violation;
        return Ok(report);
    }

    // Leg 2: kill-9 at the cut slot, resume, diff against the reference.
    if let Some(v) = crash_leg(scenario, scratch, &reference)? {
        report.violation = Some(v);
        return Ok(report);
    }

    // Leg 3: the daemon under chaos, traffic over the wire.
    let (violation, restarts) = daemon_leg(scenario, scratch)?;
    report.restarts = restarts;
    report.violation = violation;
    Ok(report)
}

/// Builds the scenario's simulation: paper workload from the seed, the
/// scheduler at the scenario's operating point, faults, feeds, cap, and
/// the pre-run traffic injections. `with_corruption` arms the mutation
/// self-check hook (leg 1 only — the other legs must stay healthy so the
/// self-check's failure signature is the ledger, not a resume echo).
fn build_simulation(scenario: &Scenario, with_corruption: bool) -> Result<Simulation, String> {
    let shape = PaperScenario::default().with_seed(scenario.seed);
    let config = shape.config().clone();
    let inputs = shape.into_inputs(scenario.horizon as usize);
    let scheduler = GreFar::new(&config, GreFarParams::new(scenario.v, scenario.beta))
        .map_err(|e| format!("scheduler: {e}"))?;
    let mut sim = Simulation::try_new(config, inputs, Box::new(scheduler))
        .map_err(|e| format!("build: {e}"))?;
    if let Some(cap) = scenario.admission_cap {
        sim = sim.with_admission_cap(cap);
    }
    let plan = scenario.fault_plan()?;
    if !plan.is_empty() {
        sim = sim
            .with_fault_plan(plan)
            .map_err(|e| format!("faults: {e}"))?;
    }
    if let Some(profile) = scenario.feed_profile()? {
        sim = sim
            .with_feed_profile(profile)
            .map_err(|e| format!("feeds: {e}"))?;
    }
    for (t, job, count) in scenario.traffic() {
        sim.inject_arrivals(t as usize, job, count);
    }
    if with_corruption {
        if let Some((slot, delta)) = scenario.corruption() {
            sim.corrupt_queue_for_test(slot, delta);
        }
    }
    Ok(sim)
}

/// The widened stale-aware Theorem 1(a) occupancy bound for this
/// scenario, or `None` when the (faulted, injected) trace admits no
/// slackness certificate — an overloaded system gets no guarantee, so
/// the oracle stands down.
///
/// The widening is the same engineering corollary the feed layer already
/// documents for staleness (`stale_queue_bound = queue_bound +
/// stale·q^max`), extended to solver squeezes: a slot whose decision was
/// computed under a degraded budget can overshoot the drift contraction,
/// but the queues still move by at most `q^max` per slot, so each such
/// slot relaxes the peak by one `q^max`.
fn widened_occupancy_bound(
    scenario: &Scenario,
    config: &SystemConfig,
    sim: &Simulation,
) -> Result<Option<f64>, String> {
    let inputs = sim.inputs();
    let delta =
        match slackness_delta_trace(config, &inputs.capacities(config), inputs.all_arrivals()) {
            Some(delta) => delta,
            None => return Ok(None),
        };
    let price_max = (0..inputs.horizon())
        .flat_map(|t| {
            let state = inputs.state(t);
            (0..config.num_data_centers())
                .map(move |i| state.data_center(i).price())
                .collect::<Vec<_>>()
        })
        .fold(0.0f64, f64::max);
    let bounds = TheoryBounds::new(config, delta, price_max, scenario.beta);
    let stale = match scenario.feed_profile()? {
        Some(profile) => profile
            .staleness_bound(config.num_data_centers())
            .min(scenario.horizon),
        None => 0,
    };
    let plan = scenario.fault_plan()?;
    let squeezed = (0..scenario.horizon)
        .filter(|&t| plan.fw_budget_at(t).is_some())
        .count();
    Ok(Some(
        bounds.stale_queue_bound(scenario.v, stale) + bounds.q_max() * squeezed as f64,
    ))
}

/// Leg 1: step the batch run slot by slot, checking the conservation
/// ledger and the occupancy bound after every slot, and recording the
/// reference telemetry stream.
fn batch_leg(scenario: &Scenario) -> Result<(String, Option<Violation>, bool), String> {
    let config = PaperScenario::default().config().clone();
    let sim = build_simulation(scenario, true)?;
    let bound = widened_occupancy_bound(scenario, &config, &sim)?;
    let mut run = SteppedRun::new(sim);
    let mut sink = JsonlSink::new(Vec::new());
    let mut violation = None;
    while !run.is_done() {
        run.step(&mut sink);
        let slot = run.next_slot() - 1;
        let ledger = run.ledger();
        let balance = ledger.balance(run.queue_total());
        if balance.abs() > ledger.tolerance() {
            violation = Some(Violation::new(
                OracleKind::Ledger,
                format!(
                    "slot {slot}: conservation balance {balance:.6} exceeds tolerance {:.3e} \
                     (admitted {:.3}, served {:.3}, route_excess {:.3}, queued {:.3})",
                    ledger.tolerance(),
                    ledger.admitted(),
                    ledger.served(),
                    ledger.route_excess(),
                    run.queue_total(),
                ),
            ));
            break;
        }
        if let Some(bound) = bound {
            let peak = run.queue_peak();
            if peak > bound * (1.0 + OCCUPANCY_EPS) {
                violation = Some(Violation::new(
                    OracleKind::Occupancy,
                    format!(
                        "slot {slot}: peak queue {peak:.6} exceeds the widened Theorem 1(a) \
                         bound {bound:.6} (V={}, beta={})",
                        scenario.v, scenario.beta
                    ),
                ));
                break;
            }
        }
    }
    let done = run.is_done();
    let _ = run.finish(&mut sink);
    let text = String::from_utf8(sink.into_inner()).map_err(|e| e.to_string())?;
    // A run cut short by a violation has a truncated stream; it is never
    // used as a reference because the caller stops at the violation.
    let _ = done;
    Ok((text, violation, bound.is_some()))
}

/// Leg 2: run the same simulation under a kill policy, resume from the
/// checkpoint, and demand the concatenated stream diffs clean against the
/// uninterrupted reference.
fn crash_leg(
    scenario: &Scenario,
    scratch: &Path,
    reference: &str,
) -> Result<Option<Violation>, String> {
    let ck_path = scratch.join("batch-checkpoint.jsonl");
    let policy =
        RunPolicy::new(&ck_path, scenario.checkpoint_every as usize).with_kill_at(scenario.kill_at);
    let mut sim = build_simulation(scenario, false)?;
    let mut cut = JsonlSink::new(Vec::new());
    match sim.run_resumable(&mut cut, &policy) {
        Err(SimError::Killed { .. }) => {}
        Ok(_) => {
            return Ok(Some(Violation::new(
                OracleKind::ResumeDiff,
                format!(
                    "kill scheduled at slot {} inside horizon {} never fired",
                    scenario.kill_at, scenario.horizon
                ),
            )))
        }
        Err(e) => return Err(format!("crash leg: {e}")),
    }
    let recovery = Checkpoint::load_latest(&ck_path).map_err(|e| format!("checkpoint: {e}"))?;
    let mut resumed_sim = build_simulation(scenario, false)?;
    let mut tail = JsonlSink::new(Vec::new());
    resumed_sim
        .resume(recovery.checkpoint, &mut tail, None)
        .map_err(|e| format!("resume: {e}"))?;
    let mut combined = String::from_utf8(cut.into_inner()).map_err(|e| e.to_string())?;
    combined.push_str(&String::from_utf8(tail.into_inner()).map_err(|e| e.to_string())?);
    let diff = diff_streams(reference, &combined, &DiffOptions::default())?;
    if diff.is_match() {
        Ok(None)
    } else {
        Ok(Some(Violation::new(
            OracleKind::ResumeDiff,
            format!(
                "kill at slot {} / resume diverged from the uninterrupted run:\n{}",
                scenario.kill_at,
                diff.render().trim_end()
            ),
        )))
    }
}

/// One line-delimited JSON client connection to the in-process daemon.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: &str) -> Result<Self, String> {
        // verify: allow(determinism): wall-clock retry deadline for a live TCP daemon, not decision-path state
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                // verify: allow(determinism): wall-clock retry deadline for a live TCP daemon
                Err(_) if std::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("connect {addr}: {e}")),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Wire {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and waits for the reply with `op == want_op`,
    /// skipping stale replies from earlier timed-out requests. `None`
    /// means the read timed out — after a state-keeper kill the in-flight
    /// request's reply is simply lost, and the caller resyncs via
    /// `status`.
    fn call(
        &mut self,
        line: &str,
        want_op: &str,
    ) -> Result<Option<BTreeMap<String, JsonValue>>, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send {line:?}: {e}"))?;
        loop {
            let mut reply = String::new();
            match self.reader.read_line(&mut reply) {
                Ok(0) => return Err("daemon closed the connection".to_string()),
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(format!("read: {e}")),
            }
            let object = parse_object(reply.trim())
                .map_err(|e| format!("unparsable reply {:?}: {e}", reply.trim()))?;
            if object.get("op").and_then(JsonValue::as_str) == Some(want_op) {
                return Ok(Some(object));
            }
            // A stale reply for an earlier request whose wait timed out;
            // skip it and keep reading.
        }
    }
}

fn num_field(object: &BTreeMap<String, JsonValue>, key: &str) -> Option<f64> {
    object.get(key).and_then(JsonValue::as_f64)
}

fn is_ok(object: &BTreeMap<String, JsonValue>) -> bool {
    object.get("ok") == Some(&JsonValue::Bool(true))
}

fn error_reason(object: &BTreeMap<String, JsonValue>) -> String {
    object
        .get("error")
        .and_then(JsonValue::as_str)
        .unwrap_or("<none>")
        .to_string()
}

/// Leg 3: run `grefar-served` in-process under a manual clock, feed it
/// the scenario's traffic over the wire while the chaos plan fires, then
/// check exit status, restart conformance and the metrics fold identity.
fn daemon_leg(scenario: &Scenario, scratch: &Path) -> Result<(Option<Violation>, u64), String> {
    let shape = PaperScenario::default().with_seed(scenario.seed);
    let config = shape.config().clone();
    let base_inputs = shape.into_inputs(scenario.horizon as usize);
    let plan = scenario.fault_plan()?;
    let engine = EngineSpec {
        config,
        base_inputs,
        scheduler: SchedulerSpec::GreFar {
            v: scenario.v,
            beta: scenario.beta,
        },
        admission_cap: scenario.admission_cap,
        faults: if plan.is_empty() { None } else { Some(plan) },
        feeds: scenario.feed_profile()?,
        deadline_iters: None,
    };
    let chaos = match scenario.chaos_spec() {
        Some(spec) => Some(ChaosPlan::parse(&spec).map_err(|e| format!("chaos: {e}"))?),
        None => None,
    };
    let telemetry = scratch.join("daemon-telemetry.jsonl");
    let snapshot = scratch.join("daemon-metrics.prom");
    let checkpoint = scratch.join("daemon-checkpoint.jsonl");
    let port_file = scratch.join("daemon.port");
    let options = DaemonOptions {
        listen: "127.0.0.1:0".to_string(),
        clock: Clock::Manual,
        engine,
        chaos,
        checkpoint: Some(checkpoint),
        checkpoint_every: scenario.checkpoint_every,
        resume: false,
        telemetry: Some(telemetry.clone()),
        metrics_snapshot: Some(snapshot.clone()),
        metrics_listen: None,
        alerts: Vec::new(),
        port_file: Some(port_file.clone()),
        queue_cap: 64,
        restart: RestartPolicy {
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            ..RestartPolicy::default()
        },
    };
    let daemon = thread::spawn(move || run_daemon(options));
    let addr = wait_port_file(&port_file)?;
    let exit = match drive_daemon(scenario, &addr) {
        Ok(()) => daemon
            .join()
            .map_err(|_| "daemon thread panicked".to_string())?
            .map_err(|e| format!("daemon: {e}"))?,
        Err(e) => {
            // Best effort: do not leave the daemon thread running behind a
            // harness error.
            if let Ok(mut wire) = Wire::connect(&addr) {
                let _ = wire.call("{\"op\":\"drain\"}", "drain");
            }
            let _ = daemon.join();
            return Err(e);
        }
    };
    let mut violation = None;
    if exit != 0 {
        violation = Some(Violation::new(
            OracleKind::Restart,
            format!("daemon exited {exit} (expected 0: clean shutdown after the horizon)"),
        ));
    }
    let tele_text =
        std::fs::read_to_string(&telemetry).map_err(|e| format!("read {telemetry:?}: {e}"))?;
    let restarts = tele_text
        .lines()
        .filter(|l| l.contains("\"event\":\"served.restart\""))
        .count() as u64;
    if violation.is_none() {
        let expected = scenario.kill_count() as u64;
        if restarts != expected {
            violation = Some(Violation::new(
                OracleKind::Restart,
                format!(
                    "supervisor restarted {restarts} time(s), chaos plan scheduled {expected} \
                     kill window(s)"
                ),
            ));
        }
    }
    if violation.is_none() {
        let live =
            std::fs::read_to_string(&snapshot).map_err(|e| format!("read {snapshot:?}: {e}"))?;
        let mut fold = MetricsFold::new(true);
        fold.fold_jsonl(&tele_text)
            .map_err(|e| format!("refold: {e}"))?;
        let offline = fold.render();
        if offline != live {
            violation = Some(Violation::new(
                OracleKind::Fold,
                format!(
                    "offline refold of the telemetry stream differs from the live metrics \
                     snapshot ({} vs {} bytes); first divergence: {}",
                    offline.len(),
                    live.len(),
                    first_divergence(&offline, &live)
                ),
            ));
        }
    }
    Ok((violation, restarts))
}

/// Polls the daemon's `--port-file` until the listener address appears.
fn wait_port_file(port_file: &Path) -> Result<String, String> {
    // verify: allow(determinism): wall-clock startup deadline for a live daemon
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        // verify: allow(determinism): wall-clock startup deadline for a live daemon
        if std::time::Instant::now() >= deadline {
            return Err(format!("daemon never wrote {port_file:?}"));
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Submits the traffic script slot by slot and advances the manual clock
/// to the horizon, resyncing via `status` whenever a state-keeper kill
/// swallows an in-flight reply, then drains.
fn drive_daemon(scenario: &Scenario, addr: &str) -> Result<(), String> {
    let mut wire = Wire::connect(addr)?;
    let mut pending: BTreeMap<u64, Vec<(usize, f64)>> = BTreeMap::new();
    for (t, job, count) in scenario.traffic() {
        pending.entry(t).or_default().push((job, count));
    }
    // verify: allow(determinism): wall-clock watchdog so a deadlocked daemon fails the leg instead of hanging CI
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        // verify: allow(determinism): wall-clock watchdog so a deadlocked daemon fails the leg
        if std::time::Instant::now() >= deadline {
            return Err("daemon leg timed out after 120s".to_string());
        }
        let status = match wire.call("{\"op\":\"status\"}", "status")? {
            Some(s) => s,
            None => continue, // keeper mid-restart; retry
        };
        if !is_ok(&status) {
            // `unavailable` while an actor restarts — back off and retry.
            thread::sleep(Duration::from_millis(5));
            continue;
        }
        let slot = num_field(&status, "slot").unwrap_or(0.0) as u64;
        let horizon = num_field(&status, "horizon").unwrap_or(0.0) as u64;
        if slot >= horizon {
            break;
        }
        if let Some(subs) = pending.remove(&slot) {
            for (job, count) in subs {
                submit(&mut wire, job, count)?;
            }
        }
        match wire.call("{\"op\":\"advance\"}", "advance")? {
            Some(reply) if is_ok(&reply) => {
                if reply.get("done") == Some(&JsonValue::Bool(true)) {
                    break;
                }
            }
            // A rejection (`unavailable`) or a lost reply (keeper killed
            // mid-slot): fall through to the status resync.
            Some(_) | None => thread::sleep(Duration::from_millis(5)),
        }
    }
    // No explicit drain: completing the horizon finishes the state keeper
    // (`SkExit::Finished`) and the supervisor shuts the daemon down on its
    // own — a drain after that would race the closing listener.
    Ok(())
}

/// One wire submission with retry on the daemon's transient rejections.
fn submit(wire: &mut Wire, job: usize, count: f64) -> Result<(), String> {
    let line = format!("{{\"op\":\"submit\",\"job\":{job},\"count\":{count}}}");
    for _ in 0..200 {
        match wire.call(&line, "submit")? {
            Some(reply) if is_ok(&reply) => return Ok(()),
            Some(reply) => match error_reason(&reply).as_str() {
                // Transient: actor restarting or backpressure.
                "unavailable" | "queue_full" => thread::sleep(Duration::from_millis(5)),
                other => return Err(format!("submit rejected: {other}")),
            },
            None => thread::sleep(Duration::from_millis(5)),
        }
    }
    Err("submit never accepted after 200 attempts".to_string())
}

/// The first line where two renderings diverge (for the fold oracle's
/// detail string).
fn first_divergence(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("{la:?} vs {lb:?}");
        }
    }
    "one rendering is a prefix of the other".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Clause;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("grefar-soak-ut-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A small fixed scenario that exercises every leg quickly.
    fn small_scenario() -> Scenario {
        Scenario {
            seed: 11,
            horizon: 12,
            v: 2.5,
            beta: 0.0,
            admission_cap: None,
            checkpoint_every: 3,
            kill_at: 5,
            clauses: vec![
                Clause::Traffic {
                    t: 4,
                    job: 2,
                    count: 2.0,
                },
                Clause::Chaos("kill:actor=state_keeper,start=6,end=7".to_string()),
            ],
        }
    }

    #[test]
    fn healthy_scenario_soaks_green_through_all_legs() {
        let dir = scratch("green");
        let report = run_scenario(&small_scenario(), &dir).unwrap();
        assert_eq!(report.violation, None, "{:?}", report.violation);
        assert_eq!(report.restarts, 1, "one kill window, one restart");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_queue_update_trips_the_ledger_oracle() {
        let dir = scratch("corrupt");
        let mut sc = small_scenario();
        sc.clauses.push(Clause::Corrupt {
            slot: 6,
            delta: 5.0,
        });
        let report = run_scenario(&sc, &dir).unwrap();
        let violation = report.violation.expect("the ledger oracle must fire");
        assert_eq!(violation.oracle, OracleKind::Ledger, "{violation}");
        assert!(violation.detail.contains("slot 6"), "{violation}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn violations_are_bit_deterministic_across_runs() {
        let dir_a = scratch("det-a");
        let dir_b = scratch("det-b");
        let mut sc = small_scenario();
        sc.clauses.push(Clause::Corrupt {
            slot: 7,
            delta: 3.0,
        });
        let a = run_scenario(&sc, &dir_a).unwrap().violation;
        let b = run_scenario(&sc, &dir_b).unwrap().violation;
        assert_eq!(a, b);
        assert!(a.is_some());
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
