//! Seeded scenario generation: one `u64` expands into a complete composed
//! soak scenario, and the expansion is a pure function of the seed (the
//! generator is [`grefar_faults::splitmix64`], the workspace's one PRNG).
//!
//! A scenario is a scalar frame (seed, horizon, operating point, cut
//! points) plus an ordered list of [`Clause`]s — the *removable* parts the
//! shrinker delta-debugs. Every clause round-trips through a one-line
//! canonical spec, so a shrunk scenario serializes into the repro format
//! and parses back bit-identically.

use grefar_faults::{splitmix64, FaultPlan};
use grefar_ingest::FeedProfile;
use grefar_sim::PaperScenario;

/// The candidate `V` operating points a seed chooses between (the paper's
/// sweep range, small enough that bounds stay checkable at soak horizons).
const V_CHOICES: [f64; 5] = [0.5, 1.0, 2.5, 5.0, 7.5];

/// One removable ingredient of a scenario. The shrinker minimizes over
/// this list; everything not expressible as a clause (horizon, `V`, the
/// kill slot) is fixed frame and survives shrinking untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// A data-fault clause in the [`FaultPlan`] DSL
    /// (`outage:`/`collapse:`/`spike:`/`gap:`/`burst:`/`squeeze:`).
    Fault(String),
    /// An actor-chaos clause in the same DSL (`kill:`/`stall:`) — only
    /// meaningful to the daemon leg.
    Chaos(String),
    /// An unreliable-feed clause in the [`FeedProfile`] DSL.
    Feed(String),
    /// One live admission: `count` jobs of class `job` landing in slot
    /// `t` (pre-run injection in the batch legs, a wire submission in the
    /// daemon leg).
    Traffic {
        /// Target slot.
        t: u64,
        /// Job class.
        job: usize,
        /// Whole number of jobs.
        count: f64,
    },
    /// The mutation self-check: add `delta` phantom jobs to a central
    /// queue right after slot `slot`'s update, behind the physics' back.
    /// Only `grefar-soak selfcheck` generates this clause; the
    /// conservation-ledger oracle must catch it.
    Corrupt {
        /// Slot whose queue update is corrupted.
        slot: u64,
        /// Phantom jobs added.
        delta: f64,
    },
}

impl Clause {
    /// The canonical one-line spec (`kind rest`); parses back to `self`.
    pub fn spec(&self) -> String {
        match self {
            Clause::Fault(s) => format!("fault {s}"),
            Clause::Chaos(s) => format!("chaos {s}"),
            Clause::Feed(s) => format!("feed {s}"),
            Clause::Traffic { t, job, count } => {
                format!("traffic t={t},job={job},count={count}")
            }
            Clause::Corrupt { slot, delta } => format!("corrupt slot={slot},delta={delta}"),
        }
    }

    /// Parses one canonical clause spec.
    ///
    /// # Errors
    /// A message naming the malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, rest) = spec
            .trim()
            .split_once(' ')
            .ok_or_else(|| format!("clause {spec:?}: expected `kind rest`"))?;
        let rest = rest.trim();
        let field = |key: &str| -> Result<f64, String> {
            for pair in rest.split(',') {
                if let Some((k, v)) = pair.split_once('=') {
                    if k.trim() == key {
                        return v
                            .trim()
                            .parse::<f64>()
                            .map_err(|e| format!("clause {spec:?}: bad {key}: {e}"));
                    }
                }
            }
            Err(format!("clause {spec:?}: missing {key}="))
        };
        match kind {
            "fault" => Ok(Clause::Fault(rest.to_string())),
            "chaos" => Ok(Clause::Chaos(rest.to_string())),
            "feed" => Ok(Clause::Feed(rest.to_string())),
            "traffic" => Ok(Clause::Traffic {
                t: field("t")? as u64,
                job: field("job")? as usize,
                count: field("count")?,
            }),
            "corrupt" => Ok(Clause::Corrupt {
                slot: field("slot")? as u64,
                delta: field("delta")?,
            }),
            other => Err(format!("clause {spec:?}: unknown kind {other:?}")),
        }
    }
}

/// A complete soak scenario (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed that generated (or labels) this scenario; also the
    /// [`PaperScenario`] input seed, so the workload itself varies.
    pub seed: u64,
    /// Horizon in slots.
    pub horizon: u64,
    /// GreFar cost-delay parameter `V`.
    pub v: f64,
    /// GreFar fairness weight `β`.
    pub beta: f64,
    /// Per-slot admission cap, if any.
    pub admission_cap: Option<f64>,
    /// Checkpoint cadence (slots) for the crash leg and the daemon.
    pub checkpoint_every: u64,
    /// The crash leg's kill slot (strictly inside the horizon).
    pub kill_at: u64,
    /// The removable ingredients, in generation order.
    pub clauses: Vec<Clause>,
}

impl Scenario {
    /// Expands `seed` into a full scenario. Pure: the same seed always
    /// yields the same scenario, and every generated scenario passes
    /// [`validate`](Scenario::validate).
    pub fn generate(seed: u64) -> Self {
        let shape = PaperScenario::default();
        let num_dcs = shape.config().num_data_centers() as u64;
        let num_jobs = shape.config().num_job_classes() as u64;
        let mut state = seed ^ SOAK_SEED_TAG;
        let mut r = |m: u64| splitmix64(&mut state) % m.max(1);

        let horizon = 24 + r(13); // 24..=36 slots
        let v = V_CHOICES[r(V_CHOICES.len() as u64) as usize];
        let beta = if r(3) == 0 { 0.2 } else { 0.0 };
        let admission_cap = if r(2) == 0 {
            None
        } else {
            Some(60.0 + r(40) as f64)
        };
        let checkpoint_every = 3 + r(4); // 3..=6
        let kill_at = (horizon / 3 + r(horizon / 3)).clamp(2, horizon - 2);

        let mut clauses = Vec::new();
        // Data faults: up to two, drawn from every DSL kind.
        for _ in 0..r(3) {
            let dur = 2 + r(3);
            let start = r(horizon - dur);
            let end = start + dur;
            let dc = r(num_dcs);
            clauses.push(Clause::Fault(match r(6) {
                0 => format!("outage:dc={dc},start={start},end={end}"),
                1 => {
                    let fraction = 0.25 * (1 + r(2)) as f64;
                    format!("collapse:dc={dc},fraction={fraction},start={start},end={end}")
                }
                2 => format!("spike:dc={dc},factor={},start={start},end={end}", 2 + r(6)),
                3 => format!("gap:dc={dc},start={start},end={end}"),
                4 => {
                    let factor = (2 + r(2)) as f64;
                    if r(2) == 0 {
                        format!("burst:factor={factor},start={start},end={end}")
                    } else {
                        format!(
                            "burst:factor={factor},job={},start={start},end={end}",
                            r(num_jobs)
                        )
                    }
                }
                _ => format!("squeeze:iters={},start={start},end={end}", 1 + r(3)),
            }));
        }
        // Unreliable feeds: one profile a third of the time.
        if r(3) == 0 {
            let start = r(horizon / 2);
            let end = start + 2 + r(4);
            clauses.push(Clause::Feed(match r(3) {
                0 => format!("drop:feed=price,p=0.{},start={start},end={end}", 2 + r(3)),
                1 => format!(
                    "delay:feed=price,slots={},start={start},end={end}",
                    1 + r(2)
                ),
                _ => format!(
                    "outage:feed=avail,dc={},start={start},end={end}",
                    r(num_dcs)
                ),
            }));
        }
        // Actor chaos for the daemon leg: up to two kill windows on the
        // state keeper (well separated so restart windows never overlap)
        // plus an occasional tiny stall. The telemetry actor is never
        // killed — the metrics fold-identity oracle needs the full stream
        // on disk — and `sockdrop` is excluded because it severs the soak
        // driver's own connection.
        if r(2) == 0 {
            let k1 = 1 + r(horizon - 3);
            clauses.push(Clause::Chaos(format!(
                "kill:actor=state_keeper,start={k1},end={}",
                k1 + 1
            )));
            if r(3) == 0 && k1 + 4 < horizon - 1 {
                let k2 = k1 + 4 + r(horizon - 1 - (k1 + 4));
                clauses.push(Clause::Chaos(format!(
                    "kill:actor=state_keeper,start={k2},end={}",
                    k2 + 1
                )));
            }
        }
        if r(3) == 0 {
            let s = 1 + r(horizon - 2);
            clauses.push(Clause::Chaos(format!(
                "stall:actor=state_keeper,ms={},start={s},end={}",
                5 + r(10),
                s + 1
            )));
        }
        // Live traffic: up to five submissions.
        for _ in 0..r(6) {
            clauses.push(Clause::Traffic {
                t: r(horizon),
                job: r(num_jobs) as usize,
                count: (1 + r(4)) as f64,
            });
        }
        Scenario {
            seed,
            horizon,
            v,
            beta,
            admission_cap,
            checkpoint_every,
            kill_at,
            clauses,
        }
    }

    /// The data-fault plan (chaos clauses excluded — those only mean
    /// something under the daemon's supervisor).
    ///
    /// # Errors
    /// The DSL parse error for a malformed fault clause.
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        let spec = self.clause_specs(|c| matches!(c, Clause::Fault(_)));
        FaultPlan::parse(&spec).map_err(|e| e.to_string())
    }

    /// The chaos plan spec (`kill:`/`stall:` clauses), or `None` when the
    /// scenario has no actor chaos.
    pub fn chaos_spec(&self) -> Option<String> {
        let spec = self.clause_specs(|c| matches!(c, Clause::Chaos(_)));
        if spec.is_empty() {
            None
        } else {
            Some(spec)
        }
    }

    /// The unreliable-feed profile, or `None` when every feed is perfect.
    ///
    /// # Errors
    /// The DSL parse error for a malformed feed clause.
    pub fn feed_profile(&self) -> Result<Option<FeedProfile>, String> {
        let spec = self.clause_specs(|c| matches!(c, Clause::Feed(_)));
        if spec.is_empty() {
            return Ok(None);
        }
        FeedProfile::parse(&spec)
            .map(Some)
            .map_err(|e| e.to_string())
    }

    /// The traffic script as `(slot, job, count)` triples, in clause
    /// order.
    pub fn traffic(&self) -> Vec<(u64, usize, f64)> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::Traffic { t, job, count } => Some((*t, *job, *count)),
                _ => None,
            })
            .collect()
    }

    /// The mutation self-check's corruption, if one is scripted.
    pub fn corruption(&self) -> Option<(u64, f64)> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Corrupt { slot, delta } => Some((*slot, *delta)),
            _ => None,
        })
    }

    /// How many actor-kill windows the chaos plan schedules (the daemon
    /// leg expects exactly this many supervisor restarts).
    pub fn kill_count(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| matches!(c, Clause::Chaos(s) if s.starts_with("kill:")))
            .count()
    }

    /// Parses every clause through its real DSL, catching generation or
    /// hand-editing mistakes before a run starts.
    ///
    /// # Errors
    /// The first clause that fails its DSL parser or range check.
    pub fn validate(&self) -> Result<(), String> {
        let shape = PaperScenario::default();
        let num_dcs = shape.config().num_data_centers();
        let num_jobs = shape.config().num_job_classes();
        if self.horizon < 4 {
            return Err(format!("horizon {} is too short to soak", self.horizon));
        }
        if self.kill_at < 1 || self.kill_at >= self.horizon {
            return Err(format!(
                "kill_at {} must lie strictly inside the horizon {}",
                self.kill_at, self.horizon
            ));
        }
        let plan = self.fault_plan()?;
        plan.validate_for(num_dcs, num_jobs)
            .map_err(|e| e.to_string())?;
        if let Some(spec) = self.chaos_spec() {
            let chaos = FaultPlan::parse(&spec).map_err(|e| e.to_string())?;
            if chaos.faults().iter().any(|f| !f.is_chaos()) {
                return Err("chaos clauses must be kill:/stall:/sockdrop:".to_string());
            }
        }
        if let Some(profile) = self.feed_profile()? {
            profile.validate_for(num_dcs).map_err(|e| e.to_string())?;
        }
        for (t, job, count) in self.traffic() {
            if t >= self.horizon {
                return Err(format!(
                    "traffic slot {t} past the horizon {}",
                    self.horizon
                ));
            }
            if job >= num_jobs {
                return Err(format!("traffic job class {job} out of range ({num_jobs})"));
            }
            // verify: allow(float-eq): fract() == 0 is the exact integrality test
            if !(count.is_finite() && count > 0.0 && count.fract() == 0.0) {
                return Err(format!(
                    "traffic count {count} must be a positive whole number"
                ));
            }
        }
        Ok(())
    }

    fn clause_specs(&self, keep: impl Fn(&Clause) -> bool) -> String {
        self.clauses
            .iter()
            .filter(|c| keep(c))
            .map(|c| match c {
                Clause::Fault(s) | Clause::Chaos(s) | Clause::Feed(s) => s.clone(),
                _ => String::new(),
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// The soak generator's domain-separation constant (so a soak seed never
/// replays the outage generator's stream for the same raw `u64`).
const SOAK_SEED_TAG: u64 = 0x5048_ab11_c0a5_7e57;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..64 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed} must expand deterministically");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn seeds_actually_vary_the_scenario() {
        let mut horizons: Vec<u64> = (0..32).map(|s| Scenario::generate(s).horizon).collect();
        horizons.dedup();
        assert!(horizons.len() > 1, "horizon never varied across seeds");
        assert!(
            (0..64).any(|s| !Scenario::generate(s).clauses.is_empty()),
            "no seed generated any clause"
        );
    }

    #[test]
    fn clause_specs_roundtrip() {
        let clauses = vec![
            Clause::Fault("outage:dc=1,start=3,end=6".to_string()),
            Clause::Chaos("kill:actor=state_keeper,start=4,end=5".to_string()),
            Clause::Feed("drop:feed=price,p=0.4,start=0,end=9".to_string()),
            Clause::Traffic {
                t: 7,
                job: 3,
                count: 2.0,
            },
            Clause::Corrupt {
                slot: 5,
                delta: 4.0,
            },
        ];
        for clause in clauses {
            let spec = clause.spec();
            assert_eq!(Clause::parse(&spec), Ok(clause), "{spec}");
        }
    }

    #[test]
    fn generated_clauses_roundtrip_for_many_seeds() {
        for seed in 0..64 {
            for clause in Scenario::generate(seed).clauses {
                let spec = clause.spec();
                assert_eq!(
                    Clause::parse(&spec).as_ref(),
                    Ok(&clause),
                    "seed {seed}: {spec}"
                );
            }
        }
    }
}
