//! Deterministic whole-system chaos soak for the GreFar workspace.
//!
//! One `u64` seed expands — through the same SplitMix64 stream the fault
//! layer uses — into a complete composed [`Scenario`](scenario::Scenario):
//! an operating point (`V`, `β`, horizon, admission cap), a data-fault
//! plan, an unreliable-feed profile, actor chaos for the daemon, a live
//! admission-traffic script, and a kill/resume cut point. The
//! [`runner`] then drives the whole system through that scenario three
//! times:
//!
//! 1. **Batch leg** — a [`SteppedRun`](grefar_sim::SteppedRun) executed
//!    slot by slot, checking the job-conservation ledger and the widened
//!    stale-aware Theorem 1(a) occupancy bound after every slot, while
//!    recording the reference telemetry stream.
//! 2. **Crash leg** — the same simulation killed mid-run at the scenario's
//!    cut slot ([`RunPolicy::with_kill_at`](grefar_sim::RunPolicy)), then
//!    resumed from its checkpoint; the concatenated truncated + resumed
//!    stream must diff clean against the uninterrupted reference
//!    (`grefar-report diff` semantics, zero tolerance).
//! 3. **Daemon leg** — `grefar-served` run in-process under a manual
//!    clock, fed the scenario's traffic over its own wire protocol while
//!    the chaos plan kills and stalls its actors; the supervisor must
//!    finish with exit 0, restart exactly once per kill window, and the
//!    offline refold of the recorded telemetry must render byte-identical
//!    to the daemon's live metrics snapshot.
//!
//! Every check is an [`oracle`]. On the first violation the
//! [`shrink`] pass delta-debugs the scenario's clause list down to a
//! minimal set that still trips the *same* oracle, and [`repro`] writes a
//! canonical text file that `grefar-soak replay FILE` re-executes
//! bit-identically. A built-in mutation self-check (`grefar-soak
//! selfcheck`) corrupts one queue update behind the physics' back and
//! proves the ledger oracle catches it — a harness that cannot fail is
//! not testing anything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod repro;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use oracle::{OracleKind, Violation};
pub use repro::Repro;
pub use runner::{run_scenario, SoakReport};
pub use scenario::{Clause, Scenario};
pub use shrink::shrink;
