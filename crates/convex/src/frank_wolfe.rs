//! The Frank–Wolfe (conditional gradient) method.

use grefar_obs::{NullObserver, Observer};

use crate::objective::{Lmo, Objective};

/// Step-size strategy for [`frank_wolfe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineSearch {
    /// The classic diminishing step `γ_t = 2 / (t + 2)`. Parameter-free and
    /// guaranteed `O(1/t)` convergence for smooth convex objectives.
    Diminishing,
    /// Golden-section search on `θ ∈ [0, 1]` along each FW segment, with the
    /// given number of shrink iterations. Exact up to interval width for
    /// objectives convex along segments, and much faster in practice.
    GoldenSection {
        /// Number of interval-shrinking iterations (~40 gives ~1e-8 width).
        iters: u32,
    },
}

/// Options for [`frank_wolfe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FwOptions {
    /// Maximum number of FW iterations.
    pub max_iters: usize,
    /// Stop when the FW duality gap `⟨∇f(x), x − v⟩` falls below this.
    pub gap_tolerance: f64,
    /// Step-size strategy.
    pub line_search: LineSearch,
}

impl Default for FwOptions {
    fn default() -> Self {
        Self {
            max_iters: 400,
            gap_tolerance: 1e-7,
            line_search: LineSearch::GoldenSection { iters: 40 },
        }
    }
}

/// Outcome of a Frank–Wolfe run.
#[derive(Debug, Clone, PartialEq)]
pub struct FwResult {
    /// The final (feasible) iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final FW duality gap `⟨∇f(x), x − v⟩` — an upper bound on
    /// `f(x) − f*` for convex `f`.
    pub gap: f64,
}

/// Minimizes a smooth convex objective over a compact convex region
/// accessed only through its linear minimization oracle.
///
/// Starting from the *feasible* point `x0`, each iteration calls the oracle
/// at the current gradient, obtains a vertex `v`, and moves along the
/// segment `x → v`. Every iterate is a convex combination of feasible
/// points, hence feasible.
///
/// # Panics
/// Panics if `x0` is empty or the oracle writes non-finite values.
///
/// # Example
/// See the [crate-level documentation](crate).
pub fn frank_wolfe(
    objective: &dyn Objective,
    oracle: &dyn Lmo,
    x0: Vec<f64>,
    options: FwOptions,
) -> FwResult {
    frank_wolfe_observed(objective, oracle, x0, options, &mut NullObserver)
}

/// [`frank_wolfe`] with per-iteration span attribution: when the sink is
/// [profiling](Observer::profiling), every iteration opens an `fw.iter`
/// span under the caller's current span. Sinks that do not profile pay
/// one virtual call up front and nothing per iteration.
pub fn frank_wolfe_observed(
    objective: &dyn Objective,
    oracle: &dyn Lmo,
    x0: Vec<f64>,
    options: FwOptions,
    obs: &mut dyn Observer,
) -> FwResult {
    assert!(!x0.is_empty(), "frank_wolfe requires a non-empty start");
    let profiling = obs.profiling();
    let n = x0.len();
    let mut x = x0;
    let mut grad = vec![0.0; n];
    let mut vertex = vec![0.0; n];
    let mut gap = f64::INFINITY;
    let mut iterations = 0;

    for t in 0..options.max_iters {
        iterations = t + 1;
        if profiling {
            obs.span_enter("fw.iter");
        }
        objective.gradient(&x, &mut grad);
        oracle.minimize(&grad, &mut vertex);
        assert!(
            vertex.iter().all(|v| v.is_finite()),
            "LMO produced a non-finite vertex"
        );
        // FW duality gap: ⟨∇f(x), x − v⟩ ≥ f(x) − f*.
        gap = grad
            .iter()
            .zip(x.iter().zip(&vertex))
            .map(|(g, (xi, vi))| g * (xi - vi))
            .sum();
        if gap <= options.gap_tolerance {
            if profiling {
                obs.span_exit("fw.iter");
            }
            break;
        }
        let theta = match options.line_search {
            LineSearch::Diminishing => 2.0 / (t as f64 + 2.0),
            LineSearch::GoldenSection { iters } => golden_section(objective, &x, &vertex, iters),
        };
        for (xi, vi) in x.iter_mut().zip(&vertex) {
            *xi += theta * (vi - *xi);
        }
        if profiling {
            obs.span_exit("fw.iter");
        }
    }

    let value = objective.value(&x);
    FwResult {
        x,
        value,
        iterations,
        gap,
    }
}

/// Golden-section search for `argmin_{θ ∈ [0,1]} f(x + θ (v − x))`.
fn golden_section(objective: &dyn Objective, x: &[f64], v: &[f64], iters: u32) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    // One buffer for every probe point: the closure runs ~2·iters times
    // per line search, so allocating inside it would be per-iteration
    // allocator traffic on the per-slot path.
    let mut point = vec![0.0; x.len()];
    let mut eval = |theta: f64| {
        for (p, (xi, vi)) in point.iter_mut().zip(x.iter().zip(v)) {
            *p = xi + theta * (vi - xi);
        }
        objective.value(&point)
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut m1 = hi - INV_PHI * (hi - lo);
    let mut m2 = lo + INV_PHI * (hi - lo);
    let mut f1 = eval(m1);
    let mut f2 = eval(m2);
    for _ in 0..iters {
        if f1 <= f2 {
            hi = m2;
            m2 = m1;
            f2 = f1;
            m1 = hi - INV_PHI * (hi - lo);
            f1 = eval(m1);
        } else {
            lo = m1;
            m1 = m2;
            f1 = f2;
            m2 = lo + INV_PHI * (hi - lo);
            f2 = eval(m2);
        }
    }
    // Prefer the endpoint if it is at least as good (handles linear
    // objectives whose optimum is at θ = 1 exactly).
    let mid = 0.5 * (lo + hi);
    let candidates = [0.0, mid, 1.0];
    let mut best = mid;
    let mut best_val = eval(mid);
    for &c in &candidates {
        let val = eval(c);
        if val < best_val {
            best_val = val;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Quadratic;

    /// LMO for the box `[0, u]^n`.
    struct BoxLmo {
        upper: Vec<f64>,
    }
    impl Lmo for BoxLmo {
        fn minimize(&self, g: &[f64], out: &mut [f64]) {
            for ((o, &gi), &u) in out.iter_mut().zip(g).zip(&self.upper) {
                *o = if gi < 0.0 { u } else { 0.0 };
            }
        }
    }

    #[test]
    fn quadratic_over_box_interior_optimum() {
        // min ½‖x − (0.3, 0.7)‖² over [0,1]²; optimum interior at (0.3, 0.7).
        let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![-0.3, -0.7]);
        let lmo = BoxLmo {
            upper: vec![1.0, 1.0],
        };
        let r = frank_wolfe(&q, &lmo, vec![0.0, 0.0], FwOptions::default());
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.7).abs() < 1e-3, "{:?}", r.x);
        assert!(r.gap < 1e-2);
    }

    #[test]
    fn boundary_optimum_is_found_quickly() {
        // min −x₀ − x₁ over [0,1]²: optimum at the vertex (1,1); golden
        // section should land there almost immediately.
        let q = Quadratic::new(2, vec![0.0; 4], vec![-1.0, -1.0]);
        let lmo = BoxLmo {
            upper: vec![1.0, 1.0],
        };
        let r = frank_wolfe(&q, &lmo, vec![0.0, 0.0], FwOptions::default());
        assert!((r.value + 2.0).abs() < 1e-9);
        assert!(r.iterations <= 3, "took {} iterations", r.iterations);
    }

    #[test]
    fn diminishing_steps_also_converge() {
        let q = Quadratic::new(2, vec![2.0, 0.0, 0.0, 2.0], vec![-1.0, -1.0]);
        let lmo = BoxLmo {
            upper: vec![1.0, 1.0],
        };
        let opts = FwOptions {
            line_search: LineSearch::Diminishing,
            max_iters: 2000,
            gap_tolerance: 1e-8,
        };
        let r = frank_wolfe(&q, &lmo, vec![0.0, 0.0], opts);
        // Optimum at (0.5, 0.5), value −0.5.
        assert!((r.value + 0.5).abs() < 1e-3, "value {}", r.value);
    }

    #[test]
    fn gap_bounds_suboptimality() {
        let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![-0.9, -0.9]);
        let lmo = BoxLmo {
            upper: vec![1.0, 1.0],
        };
        let opts = FwOptions {
            max_iters: 25,
            gap_tolerance: 0.0,
            line_search: LineSearch::GoldenSection { iters: 30 },
        };
        let r = frank_wolfe(&q, &lmo, vec![0.0, 0.0], opts);
        let f_star = q.value(&[0.9, 0.9]);
        assert!(r.value - f_star <= r.gap + 1e-9);
    }

    #[test]
    fn stays_feasible() {
        let q = Quadratic::new(3, vec![0.0; 9], vec![-1.0, 1.0, -0.5]);
        let lmo = BoxLmo {
            upper: vec![2.0, 3.0, 1.0],
        };
        let r = frank_wolfe(&q, &lmo, vec![0.0, 0.0, 0.0], FwOptions::default());
        for (xi, u) in r.x.iter().zip([2.0, 3.0, 1.0]) {
            assert!(*xi >= -1e-12 && *xi <= u + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_start() {
        let q = Quadratic::new(1, vec![1.0], vec![0.0]);
        let lmo = BoxLmo { upper: vec![1.0] };
        let _ = frank_wolfe(&q, &lmo, vec![], FwOptions::default());
    }
}
