//! Objective and oracle traits.

/// A differentiable (or subdifferentiable) convex objective over `ℝⁿ`,
/// evaluated on flat slices.
pub trait Objective {
    /// The objective value `f(x)`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes a (sub)gradient of `f` at `x` into `grad`.
    ///
    /// Implementations may assume `grad.len() == x.len()`.
    fn gradient(&self, x: &[f64], grad: &mut [f64]);
}

/// A linear minimization oracle over a compact convex feasible region:
/// given a linear objective `g`, write some
/// `argmin_{v ∈ feasible} ⟨g, v⟩` into `out`.
///
/// This is the only access Frank–Wolfe needs to the feasible region. For
/// GreFar's per-slot polytope the oracle is the exact greedy dispatch.
pub trait Lmo {
    /// Writes a vertex minimizing `⟨gradient, v⟩` into `out`.
    ///
    /// Implementations may assume `out.len() == gradient.len()`.
    fn minimize(&self, gradient: &[f64], out: &mut [f64]);
}

impl<F> Lmo for F
where
    F: Fn(&[f64], &mut [f64]),
{
    fn minimize(&self, gradient: &[f64], out: &mut [f64]) {
        self(gradient, out)
    }
}

/// A convex quadratic `f(x) = ½ xᵀQx + cᵀx` with dense symmetric
/// positive-semidefinite `Q` (row-major). Mostly used in tests and as a
/// building block for penalty terms.
///
/// # Example
/// ```
/// use grefar_convex::{Objective, Quadratic};
///
/// // f(x, y) = ½(x² + y²) − x
/// let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![-1.0, 0.0]);
/// assert_eq!(q.value(&[1.0, 0.0]), -0.5);
/// let mut g = vec![0.0; 2];
/// q.gradient(&[1.0, 0.0], &mut g);
/// assert_eq!(g, vec![0.0, 0.0]); // unconstrained minimum at (1, 0)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quadratic {
    n: usize,
    q: Vec<f64>,
    c: Vec<f64>,
}

impl Quadratic {
    /// Creates the quadratic from row-major `q` (`n × n`) and linear term `c`.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn new(n: usize, q: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(q.len(), n * n, "Q must be n x n");
        assert_eq!(c.len(), n, "c must have length n");
        Self { n, q, c }
    }

    /// The dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Objective for Quadratic {
    fn value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n);
        let mut quad = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let row: f64 = self.q[i * self.n..(i + 1) * self.n]
                .iter()
                .zip(x)
                .map(|(q, xj)| q * xj)
                .sum();
            quad += xi * row;
        }
        0.5 * quad + self.c.iter().zip(x).map(|(a, b)| a * b).sum::<f64>()
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(grad.len(), self.n);
        for (i, g_out) in grad.iter_mut().enumerate() {
            let mut g = self.c[i];
            for (j, &xj) in x.iter().enumerate() {
                // (Q + Qᵀ)/2 · x, exact for symmetric Q.
                g += 0.5 * (self.q[i * self.n + j] + self.q[j * self.n + i]) * xj;
            }
            *g_out = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_value_and_gradient() {
        // f(x) = ½ (2x₀² + 2x₁²) + x₀ = x₀² + x₁² + x₀
        let q = Quadratic::new(2, vec![2.0, 0.0, 0.0, 2.0], vec![1.0, 0.0]);
        assert_eq!(q.dim(), 2);
        assert_eq!(q.value(&[1.0, 2.0]), 1.0 + 4.0 + 1.0);
        let mut g = vec![0.0; 2];
        q.gradient(&[1.0, 2.0], &mut g);
        assert_eq!(g, vec![3.0, 4.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let q = Quadratic::new(
            3,
            vec![4.0, 1.0, 0.0, 1.0, 3.0, 0.5, 0.0, 0.5, 2.0],
            vec![-1.0, 0.5, 2.0],
        );
        let x = [0.3, -0.7, 1.1];
        let mut g = vec![0.0; 3];
        q.gradient(&x, &mut g);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += eps;
            xm[i] -= eps;
            let fd = (q.value(&xp) - q.value(&xm)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-6, "component {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn closures_are_lmos() {
        let lmo = |g: &[f64], out: &mut [f64]| {
            // Box [0,1]^n vertex: 1 where gradient negative.
            for (o, &gi) in out.iter_mut().zip(g) {
                *o = if gi < 0.0 { 1.0 } else { 0.0 };
            }
        };
        let mut out = vec![0.0; 2];
        Lmo::minimize(&lmo, &[-1.0, 2.0], &mut out);
        assert_eq!(out, vec![1.0, 0.0]);
    }
}
