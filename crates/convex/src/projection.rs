//! Exact Euclidean projections used by the projected-subgradient method.

/// Clamps `x` into the box `[lower, upper]` elementwise, in place.
///
/// # Panics
/// Panics if slice lengths differ or any `lower[i] > upper[i]`.
///
/// # Example
/// ```
/// let mut x = vec![-1.0, 0.5, 9.0];
/// grefar_convex::projection::clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
/// assert_eq!(x, vec![0.0, 0.5, 1.0]);
/// ```
pub fn clamp_box(x: &mut [f64], lower: &[f64], upper: &[f64]) {
    assert_eq!(x.len(), lower.len(), "lower bound length mismatch");
    assert_eq!(x.len(), upper.len(), "upper bound length mismatch");
    for ((xi, &lo), &hi) in x.iter_mut().zip(lower).zip(upper) {
        assert!(lo <= hi, "empty box: lower {lo} > upper {hi}");
        *xi = xi.clamp(lo, hi);
    }
}

/// Projects `x` (in place) onto the capacity-capped box
/// `{y : 0 ≤ y ≤ upper, Σ_i weights_i · y_i ≤ capacity}`
/// in the Euclidean norm.
///
/// This is the feasible region of one data center's processing decision:
/// `y = h_{i,·}`, `weights = d` (work per job), `capacity = Σ_k n_k s_k`.
///
/// Uses the KKT characterization `y_i(λ) = clamp(x_i − λ·w_i, 0, u_i)` and
/// bisects on the multiplier `λ ≥ 0` of the capacity constraint.
///
/// # Panics
/// Panics if lengths differ, any weight is non-positive, any upper bound is
/// negative, or `capacity` is negative.
///
/// # Example
/// ```
/// use grefar_convex::projection::project_capped_box;
///
/// let mut x = vec![3.0, 3.0];
/// // Box [0,5]², constraint y₀ + y₁ ≤ 4: projection of (3,3) is (2,2).
/// project_capped_box(&mut x, &[5.0, 5.0], &[1.0, 1.0], 4.0);
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// assert!((x[1] - 2.0).abs() < 1e-9);
/// ```
pub fn project_capped_box(x: &mut [f64], upper: &[f64], weights: &[f64], capacity: f64) {
    assert_eq!(x.len(), upper.len(), "upper bound length mismatch");
    assert_eq!(x.len(), weights.len(), "weight length mismatch");
    assert!(
        capacity >= 0.0 && capacity.is_finite(),
        "capacity must be non-negative and finite"
    );
    for &w in weights {
        assert!(
            w > 0.0 && w.is_finite(),
            "weights must be positive, got {w}"
        );
    }
    for &u in upper {
        assert!(u >= 0.0, "upper bounds must be non-negative, got {u}");
    }

    // First clamp into the box; if the capacity constraint already holds,
    // that is the projection (the constraints are separable).
    let weighted_sum = |lambda: f64, x: &[f64]| -> f64 {
        x.iter()
            .zip(upper)
            .zip(weights)
            .map(|((xi, &u), &w)| (xi - lambda * w).clamp(0.0, u) * w)
            .sum()
    };

    let total: f64 = x
        .iter()
        .zip(upper)
        .zip(weights)
        .map(|((xi, &u), &w)| xi.clamp(0.0, u) * w)
        .sum();
    if total <= capacity + 1e-12 {
        for (xi, &u) in x.iter_mut().zip(upper) {
            *xi = xi.clamp(0.0, u);
        }
        return;
    }

    // Bisection on λ: weighted_sum is non-increasing in λ, hits `capacity`
    // somewhere in (0, λ_hi] where λ_hi pushes everything to 0.
    let mut lo = 0.0f64;
    let mut hi = x
        .iter()
        .zip(weights)
        .map(|(xi, w)| (xi / w).max(0.0))
        .fold(0.0f64, f64::max)
        + 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if weighted_sum(mid, x) > capacity {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 * (1.0 + hi) {
            break;
        }
    }
    let lambda = 0.5 * (lo + hi);
    for ((xi, &u), &w) in x.iter_mut().zip(upper).zip(weights) {
        *xi = (*xi - lambda * w).clamp(0.0, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible(y: &[f64], upper: &[f64], weights: &[f64], capacity: f64, tol: f64) -> bool {
        y.iter()
            .zip(upper)
            .all(|(v, &u)| *v >= -tol && *v <= u + tol)
            && y.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() <= capacity + tol
    }

    #[test]
    fn noop_when_already_feasible() {
        let mut x = vec![0.5, 0.25];
        project_capped_box(&mut x, &[1.0, 1.0], &[1.0, 2.0], 2.0);
        assert_eq!(x, vec![0.5, 0.25]);
    }

    #[test]
    fn clamps_into_box_first() {
        let mut x = vec![-2.0, 10.0];
        project_capped_box(&mut x, &[1.0, 1.0], &[1.0, 1.0], 5.0);
        assert_eq!(x, vec![0.0, 1.0]);
    }

    #[test]
    fn symmetric_projection() {
        let mut x = vec![3.0, 3.0, 3.0];
        project_capped_box(&mut x, &[9.0; 3], &[1.0; 3], 3.0);
        for v in &x {
            assert!((*v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_projection_respects_kkt() {
        // Heavier-weighted coordinates shrink more per unit of λ.
        let mut x = vec![2.0, 2.0];
        let w = [1.0, 4.0];
        project_capped_box(&mut x, &[10.0, 10.0], &w, 4.0);
        assert!(feasible(&x, &[10.0, 10.0], &w, 4.0, 1e-9));
        // y = (2 − λ, 2 − 4λ) with 1·y₀ + 4·y₁ = 4 → 10 − 17λ = 4 → λ = 6/17.
        let lambda: f64 = 6.0 / 17.0;
        assert!((x[0] - (2.0 - lambda)).abs() < 1e-7);
        assert!((x[1] - (2.0 - 4.0 * lambda)).abs() < 1e-7);
    }

    #[test]
    fn zero_capacity_projects_to_origin() {
        let mut x = vec![5.0, 1.0];
        project_capped_box(&mut x, &[10.0, 10.0], &[1.0, 1.0], 0.0);
        assert!(x[0].abs() < 1e-7 && x[1].abs() < 1e-7);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut x = vec![4.0, 1.0, 0.2];
        let u = [2.0, 2.0, 2.0];
        let w = [1.0, 2.0, 0.5];
        project_capped_box(&mut x, &u, &w, 2.5);
        let once = x.clone();
        project_capped_box(&mut x, &u, &w, 2.5);
        for (a, b) in once.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_minimizes_distance_vs_grid() {
        // Brute-force check on a coarse feasible grid.
        let orig = [1.7, 1.3];
        let u = [2.0, 2.0];
        let w = [1.0, 1.0];
        let cap = 2.0;
        let mut x = orig.to_vec();
        project_capped_box(&mut x, &u, &w, cap);
        let d_proj: f64 = orig.iter().zip(&x).map(|(a, b)| (a - b) * (a - b)).sum();
        let steps = 50;
        for i in 0..=steps {
            for j in 0..=steps {
                let y = [2.0 * i as f64 / steps as f64, 2.0 * j as f64 / steps as f64];
                if y[0] + y[1] <= cap {
                    let d: f64 = orig.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
                    assert!(
                        d_proj <= d + 1e-6,
                        "grid point {y:?} closer than projection"
                    );
                }
            }
        }
    }

    #[test]
    fn clamp_box_basic() {
        let mut x = vec![5.0, -5.0];
        clamp_box(&mut x, &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(x, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_zero_weight() {
        let mut x = vec![1.0];
        project_capped_box(&mut x, &[1.0], &[0.0], 1.0);
    }
}
