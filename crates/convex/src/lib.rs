//! Convex-optimization toolkit for the GreFar scheduler.
//!
//! The paper notes (§IV-B) that the per-slot drift-plus-penalty problem (14)
//! with fairness (`β > 0`) "is a convex optimization problem, to which
//! efficient numerical algorithms … exist". This crate provides the two
//! first-order methods the workspace uses, plus the projections they need:
//!
//! * [`frank_wolfe`] — the Frank–Wolfe (conditional-gradient) method.
//!   All it needs from the feasible region is a *linear minimization oracle*
//!   ([`Lmo`]): given a gradient, return a feasible minimizer of the linear
//!   model. For GreFar's per-slot polytope the LMO is the exact greedy
//!   dispatch (the `β = 0` solver), so FW composes beautifully with it.
//! * [`projected_subgradient`] — projected subgradient descent with a
//!   diminishing step, used as an independent cross-check.
//! * [`projection`] — exact Euclidean projections onto boxes and onto
//!   capacity-capped boxes (`{0 ≤ x ≤ u, Σ w·x ≤ C}`) via Lagrangian
//!   bisection.
//!
//! # Example
//!
//! Minimize `‖x − (2, 2)‖²` over the simplex-like region
//! `{x ≥ 0, x_1 + x_2 ≤ 1}`:
//!
//! ```
//! use grefar_convex::{frank_wolfe, FwOptions, Lmo, Objective};
//!
//! struct Dist;
//! impl Objective for Dist {
//!     fn value(&self, x: &[f64]) -> f64 {
//!         (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2)
//!     }
//!     fn gradient(&self, x: &[f64], g: &mut [f64]) {
//!         g[0] = 2.0 * (x[0] - 2.0);
//!         g[1] = 2.0 * (x[1] - 2.0);
//!     }
//! }
//!
//! struct Simplex;
//! impl Lmo for Simplex {
//!     fn minimize(&self, g: &[f64], out: &mut [f64]) {
//!         out.fill(0.0);
//!         // Vertices are (0,0), (1,0), (0,1): pick the best.
//!         if g[0] <= g[1] && g[0] < 0.0 { out[0] = 1.0; }
//!         else if g[1] < 0.0 { out[1] = 1.0; }
//!     }
//! }
//!
//! let result = frank_wolfe(&Dist, &Simplex, vec![0.0, 0.0], FwOptions::default());
//! // Optimum is (0.5, 0.5) with value 4.5.
//! assert!((result.value - 4.5).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frank_wolfe;
mod objective;
pub mod projection;
mod subgradient;

pub use frank_wolfe::{frank_wolfe, frank_wolfe_observed, FwOptions, FwResult, LineSearch};
pub use objective::{Lmo, Objective, Quadratic};
pub use subgradient::{projected_subgradient, SubgradientOptions, SubgradientResult};
