//! Projected subgradient descent.
//!
//! A slower but assumption-light method used to cross-check the Frank–Wolfe
//! path of the GreFar per-slot solver (DESIGN.md §4). It requires only a
//! projection onto the feasible region rather than an LMO.

use crate::objective::Objective;

/// Options for [`projected_subgradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgradientOptions {
    /// Number of iterations (the method has no natural stopping test).
    pub iterations: usize,
    /// Initial step size; step at iteration `t` is `step0 / √(t+1)`.
    pub step0: f64,
}

impl Default for SubgradientOptions {
    fn default() -> Self {
        Self {
            iterations: 2_000,
            step0: 1.0,
        }
    }
}

/// Outcome of a projected-subgradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgradientResult {
    /// The best (lowest-objective) feasible iterate seen.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Minimizes a convex objective by projected subgradient descent with the
/// diminishing step `step0 / √(t+1)`, returning the best iterate seen.
///
/// `project` must map an arbitrary point to a feasible one (in place);
/// `x0` is projected before use, so it need not be feasible.
///
/// # Panics
/// Panics if `x0` is empty.
///
/// # Example
/// ```
/// use grefar_convex::{projected_subgradient, SubgradientOptions, Objective, Quadratic};
/// use grefar_convex::projection::clamp_box;
///
/// // min (x−2)² over [0, 1]: optimum at x = 1.
/// let q = Quadratic::new(1, vec![2.0], vec![-4.0]);
/// let r = projected_subgradient(
///     &q,
///     |x: &mut [f64]| clamp_box(x, &[0.0], &[1.0]),
///     vec![0.0],
///     SubgradientOptions::default(),
/// );
/// assert!((r.x[0] - 1.0).abs() < 1e-3);
/// ```
pub fn projected_subgradient<P>(
    objective: &dyn Objective,
    mut project: P,
    x0: Vec<f64>,
    options: SubgradientOptions,
) -> SubgradientResult
where
    P: FnMut(&mut [f64]),
{
    assert!(
        !x0.is_empty(),
        "projected_subgradient requires a non-empty start"
    );
    let n = x0.len();
    let mut x = x0;
    project(&mut x);
    let mut grad = vec![0.0; n];
    // verify: allow(hot-path-alloc): the incumbent buffer is one exact-size allocation per solve call (not per iteration); the result must own its point
    let mut best = x.clone();
    let mut best_value = objective.value(&x);

    for t in 0..options.iterations {
        objective.gradient(&x, &mut grad);
        let step = options.step0 / ((t + 1) as f64).sqrt();
        for (xi, g) in x.iter_mut().zip(&grad) {
            *xi -= step * g;
        }
        project(&mut x);
        let value = objective.value(&x);
        if value < best_value {
            best_value = value;
            best.copy_from_slice(&x);
        }
    }

    SubgradientResult {
        x: best,
        value: best_value,
        iterations: options.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Quadratic;
    use crate::projection::{clamp_box, project_capped_box};

    #[test]
    fn unconstrained_style_quadratic() {
        // min ½‖x − (1, −1)‖² over a huge box: optimum clipped at (1, 0).
        let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![-1.0, 1.0]);
        let r = projected_subgradient(
            &q,
            |x: &mut [f64]| clamp_box(x, &[0.0, 0.0], &[10.0, 10.0]),
            vec![5.0, 5.0],
            SubgradientOptions {
                iterations: 5_000,
                step0: 1.0,
            },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
        assert!(r.x[1].abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn agrees_with_frank_wolfe_on_capped_box() {
        use crate::frank_wolfe::{frank_wolfe, FwOptions};
        use crate::objective::Lmo;

        // min ½‖x − (2, 2)‖² s.t. 0 ≤ x ≤ (3,3), x₀ + 2x₁ ≤ 3.
        let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![-2.0, -2.0]);
        struct CapLmo;
        impl Lmo for CapLmo {
            fn minimize(&self, g: &[f64], out: &mut [f64]) {
                // Vertices of the region: enumerate the candidates.
                let verts: [[f64; 2]; 4] = [[0.0, 0.0], [3.0, 0.0], [0.0, 1.5], [1.0, 1.0]];
                let mut best = verts[0];
                let mut best_val = f64::INFINITY;
                for v in verts {
                    if v[0] + 2.0 * v[1] <= 3.0 + 1e-9 {
                        let val = g[0] * v[0] + g[1] * v[1];
                        if val < best_val {
                            best_val = val;
                            best = v;
                        }
                    }
                }
                out.copy_from_slice(&best);
            }
        }
        let fw = frank_wolfe(&q, &CapLmo, vec![0.0, 0.0], FwOptions::default());
        let sg = projected_subgradient(
            &q,
            |x: &mut [f64]| project_capped_box(x, &[3.0, 3.0], &[1.0, 2.0], 3.0),
            vec![0.0, 0.0],
            SubgradientOptions {
                iterations: 20_000,
                step0: 1.0,
            },
        );
        assert!(
            (fw.value - sg.value).abs() < 1e-2,
            "FW {} vs subgradient {}",
            fw.value,
            sg.value
        );
    }

    #[test]
    fn start_is_projected() {
        let q = Quadratic::new(1, vec![2.0], vec![0.0]);
        let r = projected_subgradient(
            &q,
            |x: &mut [f64]| clamp_box(x, &[1.0], &[2.0]),
            vec![-50.0],
            SubgradientOptions::default(),
        );
        assert!(r.x[0] >= 1.0 - 1e-12);
    }

    #[test]
    fn best_iterate_never_worse_than_start() {
        let q = Quadratic::new(2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0]);
        let start = vec![3.0, 3.0];
        let start_value = {
            let mut s = start.clone();
            clamp_box(&mut s, &[0.0, 0.0], &[4.0, 4.0]);
            q.value(&s)
        };
        let r = projected_subgradient(
            &q,
            |x: &mut [f64]| clamp_box(x, &[0.0, 0.0], &[4.0, 4.0]),
            start,
            SubgradientOptions {
                iterations: 50,
                step0: 0.5,
            },
        );
        assert!(r.value <= start_value);
    }
}
