//! Property tests for the convex toolkit: Frank–Wolfe descent and
//! feasibility over random boxes, and projection optimality.

use grefar_convex::projection::{clamp_box, project_capped_box};
use grefar_convex::{frank_wolfe, FwOptions, Lmo, Objective, Quadratic};
use proptest::prelude::*;

/// LMO of the box `[0, u]^n`.
struct BoxLmo {
    upper: Vec<f64>,
}

impl Lmo for BoxLmo {
    fn minimize(&self, g: &[f64], out: &mut [f64]) {
        for ((o, &gi), &u) in out.iter_mut().zip(g).zip(&self.upper) {
            *o = if gi < 0.0 { u } else { 0.0 };
        }
    }
}

fn spd_quadratic(n: usize, diag: &[f64], c: &[f64]) -> Quadratic {
    // Diagonal PSD quadratic: ½ Σ d_i x_i² + c·x.
    let mut q = vec![0.0; n * n];
    for i in 0..n {
        q[i * n + i] = diag[i];
    }
    Quadratic::new(n, q, c.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Frank–Wolfe with golden-section line search never increases the
    /// objective, stays in the box, and its final gap certifies
    /// near-optimality against a dense grid of random feasible points.
    #[test]
    fn frank_wolfe_descends_and_certifies(
        diag in proptest::collection::vec(0.1f64..4.0, 2..=4),
        c in proptest::collection::vec(-3.0f64..3.0, 4),
        upper in proptest::collection::vec(0.5f64..4.0, 4),
        probes in proptest::collection::vec(0.0f64..1.0, 24),
    ) {
        let n = diag.len();
        let q = spd_quadratic(n, &diag, &c[..n]);
        let lmo = BoxLmo { upper: upper[..n].to_vec() };
        let x0 = vec![0.0; n];
        let f0 = q.value(&x0);
        let result = frank_wolfe(&q, &lmo, x0, FwOptions::default());

        prop_assert!(result.value <= f0 + 1e-12, "FW increased the objective");
        for (xi, &u) in result.x.iter().zip(&upper[..n]) {
            prop_assert!(*xi >= -1e-12 && *xi <= u + 1e-12, "left the box");
        }
        // The duality gap upper-bounds suboptimality vs any feasible probe.
        for chunk in probes.chunks(n) {
            if chunk.len() < n {
                continue;
            }
            let probe: Vec<f64> = chunk.iter().zip(&upper[..n]).map(|(t, u)| t * u).collect();
            prop_assert!(
                result.value - q.value(&probe) <= result.gap + 1e-7,
                "probe beats FW by more than the certified gap"
            );
        }
    }

    /// project_capped_box returns a feasible point at least as close to the
    /// input as any random feasible candidate (projection optimality).
    #[test]
    fn projection_is_nearest_feasible(
        x in proptest::collection::vec(-2.0f64..6.0, 3),
        upper in proptest::collection::vec(0.5f64..4.0, 3),
        weights in proptest::collection::vec(0.2f64..2.0, 3),
        cap_frac in 0.1f64..1.0,
        candidates in proptest::collection::vec(0.0f64..1.0, 30),
    ) {
        let max_cap: f64 = upper.iter().zip(&weights).map(|(u, w)| u * w).sum();
        let cap = cap_frac * max_cap;
        let mut proj = x.clone();
        project_capped_box(&mut proj, &upper, &weights, cap);

        // Feasibility.
        let load: f64 = proj.iter().zip(&weights).map(|(p, w)| p * w).sum();
        prop_assert!(load <= cap + 1e-7, "projection violates the cap");
        for (p, &u) in proj.iter().zip(&upper) {
            prop_assert!(*p >= -1e-9 && *p <= u + 1e-9);
        }

        // Optimality vs random feasible candidates.
        let d_proj: f64 = x.iter().zip(&proj).map(|(a, b)| (a - b) * (a - b)).sum();
        for chunk in candidates.chunks(3) {
            if chunk.len() < 3 {
                continue;
            }
            let mut cand: Vec<f64> = chunk.iter().zip(&upper).map(|(t, u)| t * u).collect();
            // Make the candidate feasible by scaling under the cap.
            let cload: f64 = cand.iter().zip(&weights).map(|(p, w)| p * w).sum();
            if cload > cap {
                let scale = cap / cload;
                for v in cand.iter_mut() {
                    *v *= scale;
                }
            }
            let d_cand: f64 = x.iter().zip(&cand).map(|(a, b)| (a - b) * (a - b)).sum();
            prop_assert!(
                d_proj <= d_cand + 1e-6,
                "candidate closer than projection: {d_cand} < {d_proj}"
            );
        }
    }

    /// clamp_box is idempotent and order-insensitive with projection.
    #[test]
    fn clamp_box_idempotent(
        x in proptest::collection::vec(-5.0f64..5.0, 4),
        upper in proptest::collection::vec(0.1f64..3.0, 4),
    ) {
        let lower = vec![0.0; 4];
        let mut once = x.clone();
        clamp_box(&mut once, &lower, &upper);
        let mut twice = once.clone();
        clamp_box(&mut twice, &lower, &upper);
        prop_assert_eq!(once, twice);
    }
}
