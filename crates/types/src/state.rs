//! Time-varying system state `x(t)` (§III-A).

use crate::{ServerClass, Slot, Tariff};

/// The state `x_i(t) = {n_i(t), φ_i(t)}` of one data center during one slot:
/// per-class server availability and the electricity tariff (§III-A).
///
/// Availabilities are real-valued to model servers available for a fraction
/// of a slot; in the common case they are integral counts.
///
/// # Example
/// ```
/// use grefar_types::{DataCenterState, ServerClass, Tariff};
///
/// let state = DataCenterState::new(vec![120.0, 40.0], Tariff::flat(0.43));
/// let classes = [ServerClass::new(1.0, 1.0), ServerClass::new(0.75, 0.6)];
/// assert_eq!(state.capacity(&classes), 120.0 + 40.0 * 0.75);
/// assert_eq!(state.price(), 0.43);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataCenterState {
    available: Vec<f64>,
    tariff: Tariff,
}

impl DataCenterState {
    /// Creates the state from per-class availability `n_{i,·}(t)` (length
    /// `K`) and the slot's tariff `φ_i(t)`.
    ///
    /// # Panics
    /// Panics if any availability is negative or non-finite.
    pub fn new(available: Vec<f64>, tariff: Tariff) -> Self {
        for (k, &n) in available.iter().enumerate() {
            assert!(
                n.is_finite() && n >= 0.0,
                "availability of server class {k} must be non-negative and finite, got {n}"
            );
        }
        Self { available, tariff }
    }

    /// Number of available type-`k` servers, `n_{i,k}(t)`.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    #[inline]
    pub fn available(&self, k: usize) -> f64 {
        self.available[k]
    }

    /// Per-class availability vector `n_i(t)`.
    #[inline]
    pub fn available_slice(&self) -> &[f64] {
        &self.available
    }

    /// The slot's electricity tariff `φ_i(t)`.
    #[inline]
    pub fn tariff(&self) -> &Tariff {
        &self.tariff
    }

    /// The scalar electricity price: the tariff's base marginal rate. Equals
    /// `φ_i(t)` exactly for flat tariffs (the paper's evaluation setting).
    #[inline]
    pub fn price(&self) -> f64 {
        self.tariff.base_rate()
    }

    /// Maximum work this data center can process during the slot,
    /// `Σ_k n_{i,k}(t) · s_k` (the right-hand side of constraint (11)).
    ///
    /// # Panics
    /// Panics if `classes.len()` differs from the availability length.
    pub fn capacity(&self, classes: &[ServerClass]) -> f64 {
        assert_eq!(
            classes.len(),
            self.available.len(),
            "server class count mismatch"
        );
        self.available
            .iter()
            .zip(classes)
            .map(|(n, c)| n * c.speed())
            .sum()
    }
}

/// The joint state `x(t) = [x_1(t), …, x_N(t)]` observed by the scheduler at
/// the beginning of slot `t` (§III-A).
///
/// Note that per the queue dynamics (12), the arrivals `a_j(t)` of the
/// current slot are *not* part of the observation: they are revealed only
/// after the slot's decisions are made.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    slot: Slot,
    data_centers: Vec<DataCenterState>,
}

impl SystemState {
    /// Creates the joint state for slot `slot`.
    pub fn new(slot: Slot, data_centers: Vec<DataCenterState>) -> Self {
        Self { slot, data_centers }
    }

    /// The slot index `t` this state belongs to.
    #[inline]
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Number of data centers `N`.
    #[inline]
    pub fn num_data_centers(&self) -> usize {
        self.data_centers.len()
    }

    /// The state of data center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn data_center(&self, i: usize) -> &DataCenterState {
        &self.data_centers[i]
    }

    /// Iterates over the per-data-center states.
    pub fn iter(&self) -> core::slice::Iter<'_, DataCenterState> {
        self.data_centers.iter()
    }

    /// Total available computing resource
    /// `R(t) = Σ_i Σ_k n_{i,k}(t) s_k` (used by the fairness function (3)).
    pub fn total_capacity(&self, classes: &[ServerClass]) -> f64 {
        self.data_centers.iter().map(|d| d.capacity(classes)).sum()
    }
}

impl<'a> IntoIterator for &'a SystemState {
    type Item = &'a DataCenterState;
    type IntoIter = core::slice::Iter<'a, DataCenterState>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ServerClass> {
        vec![ServerClass::new(1.0, 1.0), ServerClass::new(2.0, 1.5)]
    }

    #[test]
    fn capacity_weights_by_speed() {
        let s = DataCenterState::new(vec![10.0, 5.0], Tariff::flat(0.5));
        assert_eq!(s.capacity(&classes()), 10.0 + 10.0);
    }

    #[test]
    fn total_capacity_sums_dcs() {
        let sys = SystemState::new(
            3,
            vec![
                DataCenterState::new(vec![10.0, 0.0], Tariff::flat(0.4)),
                DataCenterState::new(vec![0.0, 4.0], Tariff::flat(0.6)),
            ],
        );
        assert_eq!(sys.slot(), 3);
        assert_eq!(sys.num_data_centers(), 2);
        assert_eq!(sys.total_capacity(&classes()), 10.0 + 8.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_availability() {
        let _ = DataCenterState::new(vec![-1.0], Tariff::flat(0.1));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn capacity_checks_class_count() {
        let s = DataCenterState::new(vec![1.0], Tariff::flat(0.1));
        let _ = s.capacity(&classes());
    }

    #[test]
    fn iteration_yields_all() {
        let sys = SystemState::new(
            0,
            vec![
                DataCenterState::new(vec![1.0], Tariff::flat(0.1)),
                DataCenterState::new(vec![2.0], Tariff::flat(0.2)),
            ],
        );
        let prices: Vec<f64> = sys.iter().map(|d| d.price()).collect();
        assert_eq!(prices, vec![0.1, 0.2]);
        let count = (&sys).into_iter().count();
        assert_eq!(count, 2);
    }
}
