//! Index newtypes for the four entity families of the model.
//!
//! The paper indexes data centers by `i = 1..N`, server types by `k = 1..K`,
//! job types by `j = 1..J` and accounts by `m = 1..M`. These newtypes keep
//! the four index spaces statically distinct (C-NEWTYPE) while remaining
//! zero-cost wrappers around `usize` (0-based).

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $letter:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a 0-based index.
            ///
            /// # Example
            /// ```
            /// let id = grefar_types::DataCenterId::new(2);
            /// assert_eq!(id.index(), 2);
            /// ```
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the 0-based index wrapped by this id.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                // 1-based in display to match the paper's "DC #1" convention.
                write!(f, concat!($letter, "#{}"), self.0 + 1)
            }
        }
    };
}

define_id!(
    /// Identifies one of the `N` geographically distributed data centers
    /// (the paper's index `i`).
    DataCenterId,
    "dc"
);

define_id!(
    /// Identifies one of the `K` server types (the paper's index `k`).
    ServerClassId,
    "srv"
);

define_id!(
    /// Identifies one of the `J` job types (the paper's index `j`).
    JobTypeId,
    "job"
);

define_id!(
    /// Identifies one of the `M` accounts/organizations (the paper's
    /// index `m` / `ρ`).
    AccountId,
    "acct"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_usize() {
        let id = DataCenterId::new(7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(DataCenterId::from(7usize), id);
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(DataCenterId::new(0).to_string(), "dc#1");
        assert_eq!(ServerClassId::new(1).to_string(), "srv#2");
        assert_eq!(JobTypeId::new(2).to_string(), "job#3");
        assert_eq!(AccountId::new(3).to_string(), "acct#4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(JobTypeId::new(1) < JobTypeId::new(2));
    }

    #[test]
    fn ids_are_distinct_types() {
        fn takes_dc(_: DataCenterId) {}
        takes_dc(DataCenterId::new(0));
        // `takes_dc(ServerClassId::new(0))` would not compile: the whole point.
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", AccountId::default()).is_empty());
    }
}
