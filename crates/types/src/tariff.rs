//! Electricity tariffs: the price signal `φ_i(t)` (§III-A.2).
//!
//! The paper's primary model is a flat per-slot price (the cost of consuming
//! `e` units of energy during the slot is `φ_i(t) · e`), but it notes that
//! the analysis carries over when "the electricity cost is an increasing and
//! convex function of the energy consumption". [`Tariff`] supports both: a
//! flat rate, and an increasing convex piecewise-linear cost curve.

use crate::ConfigError;

/// One linear segment of a convex piecewise-linear tariff: up to `width`
/// units of energy are billed at marginal price `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TariffSegment {
    /// Energy capacity of the segment. `f64::INFINITY` is allowed for the
    /// final segment.
    pub width: f64,
    /// Marginal price for energy consumed within this segment.
    pub rate: f64,
}

/// Electricity tariff for one data center during one slot — the `φ_i(t)` of
/// §III-A.2, generalized to usage-dependent (convex) pricing.
///
/// # Example
/// ```
/// use grefar_types::Tariff;
///
/// // Flat pricing (the paper's evaluation setting):
/// let flat = Tariff::flat(0.392);
/// assert_eq!(flat.cost(100.0), 39.2);
///
/// // Convex tiered pricing: first 50 units cheap, everything above pricier.
/// let tiered = Tariff::convex(vec![(50.0, 0.3), (f64::INFINITY, 0.6)]).unwrap();
/// assert_eq!(tiered.cost(80.0), 50.0 * 0.3 + 30.0 * 0.6);
/// assert_eq!(tiered.marginal_rate(10.0), 0.3);
/// assert_eq!(tiered.marginal_rate(60.0), 0.6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tariff {
    segments: Vec<TariffSegment>,
}

impl Tariff {
    /// A flat tariff: energy costs `rate` per unit regardless of volume.
    ///
    /// # Panics
    /// Panics if `rate` is negative or non-finite.
    pub fn flat(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "tariff rate must be non-negative and finite, got {rate}"
        );
        Self {
            segments: vec![TariffSegment {
                width: f64::INFINITY,
                rate,
            }],
        }
    }

    /// A convex piecewise-linear tariff given as `(width, rate)` pairs with
    /// non-decreasing rates. Only the last segment may have infinite width;
    /// if the final width is finite, consumption beyond the total width is
    /// billed at the last rate (the curve is extended linearly).
    ///
    /// # Errors
    /// Returns [`ConfigError::InvalidTariff`] if the segment list is empty,
    /// a width is non-positive, a rate is negative/non-finite, rates
    /// decrease, or a non-final width is infinite.
    pub fn convex(segments: Vec<(f64, f64)>) -> Result<Self, ConfigError> {
        if segments.is_empty() {
            return Err(ConfigError::InvalidTariff("no segments".into()));
        }
        let mut prev_rate = 0.0;
        let last = segments.len() - 1;
        for (idx, &(width, rate)) in segments.iter().enumerate() {
            if width <= 0.0 || width.is_nan() {
                return Err(ConfigError::InvalidTariff(format!(
                    "segment {idx} has non-positive width {width}"
                )));
            }
            if width.is_infinite() && idx != last {
                return Err(ConfigError::InvalidTariff(format!(
                    "segment {idx} has infinite width but is not last"
                )));
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(ConfigError::InvalidTariff(format!(
                    "segment {idx} has invalid rate {rate}"
                )));
            }
            if rate < prev_rate {
                return Err(ConfigError::InvalidTariff(format!(
                    "rates must be non-decreasing for convexity (segment {idx}: {rate} < {prev_rate})"
                )));
            }
            prev_rate = rate;
        }
        Ok(Self {
            segments: segments
                .into_iter()
                .map(|(width, rate)| TariffSegment { width, rate })
                .collect(),
        })
    }

    /// The tariff segments, in order of increasing marginal rate.
    #[inline]
    pub fn segments(&self) -> &[TariffSegment] {
        &self.segments
    }

    /// Returns `true` if this is a single-rate (flat) tariff.
    pub fn is_flat(&self) -> bool {
        self.segments.len() == 1
    }

    /// The flat rate if this tariff is flat, `None` otherwise.
    pub fn flat_rate(&self) -> Option<f64> {
        if self.is_flat() {
            Some(self.segments[0].rate)
        } else {
            None
        }
    }

    /// The base (lowest) marginal rate — used as the scalar "price" when
    /// reporting `φ_i(t)` for flat tariffs.
    pub fn base_rate(&self) -> f64 {
        self.segments[0].rate
    }

    /// This tariff with every marginal rate multiplied by `factor` (price
    /// spikes, currency scaling). Segment widths are unchanged; scaling by
    /// a non-negative factor preserves the non-decreasing rate order, so
    /// the result is still convex.
    ///
    /// # Panics
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "tariff scale factor must be non-negative and finite, got {factor}"
        );
        Self {
            segments: self
                .segments
                .iter()
                .map(|s| TariffSegment {
                    width: s.width,
                    rate: s.rate * factor,
                })
                .collect(),
        }
    }

    /// Total cost of consuming `energy` units during the slot. Convex,
    /// non-decreasing and piecewise linear in `energy`.
    ///
    /// Consumption beyond the declared segments is billed at the last rate.
    ///
    /// # Panics
    /// Panics if `energy` is negative or non-finite.
    pub fn cost(&self, energy: f64) -> f64 {
        assert!(
            energy.is_finite() && energy >= 0.0,
            "energy must be non-negative and finite, got {energy}"
        );
        let mut remaining = energy;
        let mut total = 0.0;
        for seg in &self.segments {
            let used = remaining.min(seg.width);
            total += used * seg.rate;
            remaining -= used;
            if remaining <= 0.0 {
                return total;
            }
        }
        // Beyond the declared curve: extend at the final rate.
        total + remaining * self.segments[self.segments.len() - 1].rate
    }

    /// Marginal price of the next unit of energy at consumption level
    /// `energy` (the right derivative of [`cost`](Self::cost)).
    ///
    /// # Panics
    /// Panics if `energy` is negative or non-finite.
    pub fn marginal_rate(&self, energy: f64) -> f64 {
        assert!(
            energy.is_finite() && energy >= 0.0,
            "energy must be non-negative and finite, got {energy}"
        );
        let mut level = energy;
        for seg in &self.segments {
            if level < seg.width {
                return seg.rate;
            }
            level -= seg.width;
        }
        self.segments[self.segments.len() - 1].rate
    }
}

impl Default for Tariff {
    /// A zero-cost flat tariff.
    fn default() -> Self {
        Self::flat(0.0)
    }
}

impl core::fmt::Display for Tariff {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.flat_rate() {
            Some(rate) => write!(f, "flat({rate})"),
            None => {
                write!(f, "convex(")?;
                for (i, seg) in self.segments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}@{}", seg.width, seg.rate)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_cost_is_linear() {
        let t = Tariff::flat(0.5);
        assert_eq!(t.cost(0.0), 0.0);
        assert_eq!(t.cost(10.0), 5.0);
        assert_eq!(t.marginal_rate(123.0), 0.5);
        assert_eq!(t.flat_rate(), Some(0.5));
        assert!(t.is_flat());
    }

    #[test]
    fn convex_cost_accumulates_segments() {
        let t = Tariff::convex(vec![(10.0, 0.2), (10.0, 0.4), (f64::INFINITY, 0.8)]).unwrap();
        assert!(!t.is_flat());
        assert_eq!(t.flat_rate(), None);
        assert_eq!(t.base_rate(), 0.2);
        assert!((t.cost(5.0) - 1.0).abs() < 1e-12);
        assert!((t.cost(15.0) - (2.0 + 2.0)).abs() < 1e-12);
        assert!((t.cost(25.0) - (2.0 + 4.0 + 4.0)).abs() < 1e-12);
        assert_eq!(t.marginal_rate(0.0), 0.2);
        assert_eq!(t.marginal_rate(10.0), 0.4);
        assert_eq!(t.marginal_rate(99.0), 0.8);
    }

    #[test]
    fn finite_final_segment_extends_linearly() {
        let t = Tariff::convex(vec![(10.0, 0.2), (10.0, 0.4)]).unwrap();
        assert!((t.cost(30.0) - (2.0 + 4.0 + 4.0)).abs() < 1e-12);
        assert_eq!(t.marginal_rate(25.0), 0.4);
    }

    #[test]
    fn rejects_decreasing_rates() {
        assert!(Tariff::convex(vec![(10.0, 0.4), (10.0, 0.2)]).is_err());
    }

    #[test]
    fn rejects_empty_and_bad_segments() {
        assert!(Tariff::convex(vec![]).is_err());
        assert!(Tariff::convex(vec![(0.0, 0.2)]).is_err());
        assert!(Tariff::convex(vec![(f64::INFINITY, 0.2), (1.0, 0.4)]).is_err());
        assert!(Tariff::convex(vec![(1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn cost_is_convex_on_grid() {
        let t = Tariff::convex(vec![(5.0, 0.1), (5.0, 0.3), (f64::INFINITY, 0.9)]).unwrap();
        // Discrete convexity: second differences non-negative.
        let vals: Vec<f64> = (0..40).map(|i| t.cost(i as f64 * 0.5)).collect();
        for w in vals.windows(3) {
            assert!(w[2] - 2.0 * w[1] + w[0] >= -1e-12);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Tariff::flat(0.4).to_string(), "flat(0.4)");
        let t = Tariff::convex(vec![(1.0, 0.1), (f64::INFINITY, 0.2)]).unwrap();
        assert_eq!(t.to_string(), "convex(1@0.1, inf@0.2)");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn cost_rejects_negative_energy() {
        let _ = Tariff::flat(1.0).cost(-1.0);
    }
}
