//! Static system configuration and its builder.

use crate::{
    AccountId, ConfigError, DataCenterId, Decision, JobClass, JobTypeId, ServerClass, ServerClassId,
};

/// An account/organization `m` with fairness weight `γ_m` — the desired share
/// of total computing resource (§III-C.1, eq. (3)).
#[derive(Debug, Clone, PartialEq)]
pub struct Account {
    name: String,
    gamma: f64,
}

impl Account {
    /// Creates an account with a human-readable name and fairness weight
    /// `γ_m ≥ 0`. Weights are validated by [`SystemConfig`].
    pub fn new(name: impl Into<String>, gamma: f64) -> Self {
        Self {
            name: name.into(),
            gamma,
        }
    }

    /// The account's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fairness weight `γ_m`: the desired fraction of total resource.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

/// Static description of one data center: a name and the maximum fleet
/// (servers owned per class). The *available* counts `n_{i,k}(t) ≤ fleet`
/// vary over time and live in
/// [`DataCenterState`](crate::DataCenterState).
#[derive(Debug, Clone, PartialEq)]
pub struct DataCenterInfo {
    name: String,
    fleet: Vec<f64>,
}

impl DataCenterInfo {
    /// Creates a data center with `fleet[k]` servers of class `k`.
    pub fn new(name: impl Into<String>, fleet: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            fleet,
        }
    }

    /// The data center's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum servers owned per class (length `K`).
    #[inline]
    pub fn fleet(&self) -> &[f64] {
        &self.fleet
    }
}

/// Immutable, validated description of the whole system: the `K` server
/// classes, `N` data centers, `J` job classes and `M` accounts of §III.
///
/// Construct via [`SystemConfig::builder`]; validation runs once at
/// [`SystemConfigBuilder::build`] so every accessor can be infallible.
///
/// # Example
/// ```
/// use grefar_types::{SystemConfig, ServerClass, JobClass, Account, DataCenterId};
///
/// # fn main() -> Result<(), grefar_types::ConfigError> {
/// let cfg = SystemConfig::builder()
///     .server_class(ServerClass::new(1.0, 1.0))
///     .server_class(ServerClass::new(0.75, 0.6))
///     .data_center("east", vec![100.0, 0.0])
///     .data_center("west", vec![0.0, 200.0])
///     .account("org-a", 0.6)
///     .account("org-b", 0.4)
///     .job_class(JobClass::new(1.0, vec![DataCenterId::new(0), DataCenterId::new(1)], 0))
///     .job_class(JobClass::new(2.0, vec![DataCenterId::new(1)], 1))
///     .build()?;
/// assert_eq!(cfg.num_server_classes(), 2);
/// assert_eq!(cfg.max_capacity(1), 150.0);
/// assert_eq!(cfg.jobs_of_account(grefar_types::AccountId::new(1)).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    server_classes: Vec<ServerClass>,
    data_centers: Vec<DataCenterInfo>,
    job_classes: Vec<JobClass>,
    accounts: Vec<Account>,
    /// jobs_by_account[m] = job type indices owned by account m (derived).
    jobs_by_account: Vec<Vec<JobTypeId>>,
}

impl SystemConfig {
    /// Starts building a configuration.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Number of data centers `N`.
    #[inline]
    pub fn num_data_centers(&self) -> usize {
        self.data_centers.len()
    }

    /// Number of server classes `K`.
    #[inline]
    pub fn num_server_classes(&self) -> usize {
        self.server_classes.len()
    }

    /// Number of job classes `J`.
    #[inline]
    pub fn num_job_classes(&self) -> usize {
        self.job_classes.len()
    }

    /// Number of accounts `M`.
    #[inline]
    pub fn num_accounts(&self) -> usize {
        self.accounts.len()
    }

    /// All server classes, indexable by `ServerClassId::index`.
    #[inline]
    pub fn server_classes(&self) -> &[ServerClass] {
        &self.server_classes
    }

    /// The server class `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    #[inline]
    pub fn server_class(&self, k: ServerClassId) -> &ServerClass {
        &self.server_classes[k.index()]
    }

    /// All data centers, indexable by `DataCenterId::index`.
    #[inline]
    pub fn data_centers(&self) -> &[DataCenterInfo] {
        &self.data_centers
    }

    /// The data center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn data_center(&self, i: DataCenterId) -> &DataCenterInfo {
        &self.data_centers[i.index()]
    }

    /// All job classes, indexable by `JobTypeId::index`.
    #[inline]
    pub fn job_classes(&self) -> &[JobClass] {
        &self.job_classes
    }

    /// The job class `j`.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[inline]
    pub fn job_class(&self, j: JobTypeId) -> &JobClass {
        &self.job_classes[j.index()]
    }

    /// All accounts, indexable by `AccountId::index`.
    #[inline]
    pub fn accounts(&self) -> &[Account] {
        &self.accounts
    }

    /// The account `m`.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    #[inline]
    pub fn account(&self, m: AccountId) -> &Account {
        &self.accounts[m.index()]
    }

    /// Job types owned by account `m` (precomputed).
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn jobs_of_account(&self, m: AccountId) -> &[JobTypeId] {
        &self.jobs_by_account[m.index()]
    }

    /// The fairness weight vector `γ = (γ_1, …, γ_M)`.
    pub fn gammas(&self) -> Vec<f64> {
        self.accounts.iter().map(Account::gamma).collect()
    }

    /// The job work vector `d = (d_1, …, d_J)`.
    pub fn work_vector(&self) -> Vec<f64> {
        self.job_classes.iter().map(JobClass::work).collect()
    }

    /// The server speed vector `s = (s_1, …, s_K)`.
    pub fn speed_vector(&self) -> Vec<f64> {
        self.server_classes.iter().map(ServerClass::speed).collect()
    }

    /// Peak capacity of data center `i` when its full fleet is available:
    /// `Σ_k fleet_{i,k} · s_k`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn max_capacity(&self, i: usize) -> f64 {
        self.data_centers[i]
            .fleet()
            .iter()
            .zip(&self.server_classes)
            .map(|(n, c)| n * c.speed())
            .sum()
    }

    /// Peak capacity of the whole system across all data centers.
    pub fn total_max_capacity(&self) -> f64 {
        (0..self.num_data_centers())
            .map(|i| self.max_capacity(i))
            .sum()
    }

    /// An all-zero [`Decision`] of the right shape for this system.
    pub fn decision_zeros(&self) -> Decision {
        Decision::zeros(
            self.num_data_centers(),
            self.num_job_classes(),
            self.num_server_classes(),
        )
    }

    /// Iterates over all eligible (data center, job type) pairs — the index
    /// set `{(i, j) : i ∈ 𝒟_j}` over which `r` and `h` may be non-zero.
    pub fn eligible_pairs(&self) -> impl Iterator<Item = (DataCenterId, JobTypeId)> + '_ {
        self.job_classes
            .iter()
            .enumerate()
            .flat_map(|(j, jc)| jc.eligible().iter().map(move |&i| (i, JobTypeId::new(j))))
    }
}

/// Incremental builder for [`SystemConfig`] (C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct SystemConfigBuilder {
    server_classes: Vec<ServerClass>,
    data_centers: Vec<DataCenterInfo>,
    job_classes: Vec<JobClass>,
    accounts: Vec<Account>,
}

impl SystemConfigBuilder {
    /// Adds a server class (in index order: the first call defines class 0).
    pub fn server_class(mut self, class: ServerClass) -> Self {
        self.server_classes.push(class);
        self
    }

    /// Adds a data center with `fleet[k]` servers of class `k`.
    pub fn data_center(mut self, name: impl Into<String>, fleet: Vec<f64>) -> Self {
        self.data_centers.push(DataCenterInfo::new(name, fleet));
        self
    }

    /// Adds a job class (in index order).
    pub fn job_class(mut self, job: JobClass) -> Self {
        self.job_classes.push(job);
        self
    }

    /// Adds an account with fairness weight `gamma` (in index order).
    pub fn account(mut self, name: impl Into<String>, gamma: f64) -> Self {
        self.accounts.push(Account::new(name, gamma));
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found: empty entity families,
    /// fleet-length mismatches, negative fleets, dangling or duplicate
    /// references in job eligibility/accounts, or invalid fairness weights.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        if self.data_centers.is_empty() {
            return Err(ConfigError::NoDataCenters);
        }
        if self.server_classes.is_empty() {
            return Err(ConfigError::NoServerClasses);
        }
        if self.job_classes.is_empty() {
            return Err(ConfigError::NoJobClasses);
        }
        if self.accounts.is_empty() {
            return Err(ConfigError::NoAccounts);
        }
        let n = self.data_centers.len();
        let k = self.server_classes.len();
        let m = self.accounts.len();
        for (i, dc) in self.data_centers.iter().enumerate() {
            if dc.fleet().len() != k {
                return Err(ConfigError::FleetLengthMismatch {
                    data_center: i,
                    expected: k,
                    got: dc.fleet().len(),
                });
            }
            for (kk, &count) in dc.fleet().iter().enumerate() {
                if !count.is_finite() || count < 0.0 {
                    return Err(ConfigError::InvalidFleet {
                        data_center: i,
                        server_class: kk,
                    });
                }
            }
        }
        for (j, job) in self.job_classes.iter().enumerate() {
            if job.eligible().is_empty() {
                return Err(ConfigError::EmptyEligibility { job: j });
            }
            let mut seen = vec![false; n];
            for &dc in job.eligible() {
                if dc.index() >= n {
                    return Err(ConfigError::UnknownDataCenter {
                        job: j,
                        data_center: dc.index(),
                    });
                }
                if seen[dc.index()] {
                    return Err(ConfigError::DuplicateEligibility {
                        job: j,
                        data_center: dc.index(),
                    });
                }
                seen[dc.index()] = true;
            }
            if job.account().index() >= m {
                return Err(ConfigError::UnknownAccount {
                    job: j,
                    account: job.account().index(),
                });
            }
        }
        for (mi, acct) in self.accounts.iter().enumerate() {
            if !acct.gamma().is_finite() || acct.gamma() < 0.0 {
                return Err(ConfigError::InvalidGamma { account: mi });
            }
        }
        let mut jobs_by_account = vec![Vec::new(); m];
        for (j, job) in self.job_classes.iter().enumerate() {
            jobs_by_account[job.account().index()].push(JobTypeId::new(j));
        }
        Ok(SystemConfig {
            server_classes: self.server_classes,
            data_centers: self.data_centers,
            job_classes: self.job_classes,
            accounts: self.accounts,
            jobs_by_account,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: usize) -> DataCenterId {
        DataCenterId::new(i)
    }

    fn valid_builder() -> SystemConfigBuilder {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(JobClass::new(1.0, vec![dc(0)], 0))
            .job_class(JobClass::new(2.0, vec![dc(0)], 1))
    }

    #[test]
    fn builds_valid_config() {
        let cfg = valid_builder().build().unwrap();
        assert_eq!(cfg.num_data_centers(), 1);
        assert_eq!(cfg.num_server_classes(), 1);
        assert_eq!(cfg.num_job_classes(), 2);
        assert_eq!(cfg.num_accounts(), 2);
        assert_eq!(cfg.max_capacity(0), 10.0);
        assert_eq!(cfg.total_max_capacity(), 10.0);
        assert_eq!(cfg.work_vector(), vec![1.0, 2.0]);
        assert_eq!(cfg.speed_vector(), vec![1.0]);
        assert_eq!(cfg.gammas(), vec![0.5, 0.5]);
        assert_eq!(cfg.jobs_of_account(AccountId::new(0)), &[JobTypeId::new(0)]);
        assert_eq!(cfg.eligible_pairs().count(), 2);
        let z = cfg.decision_zeros();
        assert_eq!(z.num_data_centers(), 1);
        assert_eq!(z.num_job_types(), 2);
    }

    #[test]
    fn rejects_empty_families() {
        assert_eq!(
            SystemConfig::builder().build().unwrap_err(),
            ConfigError::NoDataCenters
        );
        assert_eq!(
            SystemConfig::builder()
                .data_center("a", vec![])
                .build()
                .unwrap_err(),
            ConfigError::NoServerClasses
        );
    }

    #[test]
    fn rejects_fleet_mismatch() {
        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![1.0, 2.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![dc(0)], 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::FleetLengthMismatch { .. }));
    }

    #[test]
    fn rejects_dangling_references() {
        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![1.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![dc(5)], 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::UnknownDataCenter { .. }));

        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![1.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![dc(0)], 3))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::UnknownAccount { .. }));
    }

    #[test]
    fn rejects_duplicate_eligibility() {
        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![1.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![dc(0), dc(0)], 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::DuplicateEligibility { .. }));
    }

    #[test]
    fn rejects_bad_gamma() {
        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![1.0])
            .account("x", -0.5)
            .job_class(JobClass::new(1.0, vec![dc(0)], 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidGamma { .. }));
    }

    #[test]
    fn rejects_negative_fleet() {
        let err = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![-1.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![dc(0)], 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidFleet { .. }));
    }
}
