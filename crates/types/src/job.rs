//! Job classes (§III-B).

use crate::{AccountId, DataCenterId};

/// A type-`j` job class `y_j = {d_j, 𝒟_j, ρ_j}` (§III-B) together with its
/// boundedness parameters.
///
/// * `work` — the service demand `d_j > 0` in units of work (processor
///   cycles, normalized). In the paper's evaluation, one unit is 1000 hours
///   on a speed-1 server.
/// * `eligible` — the set `𝒟_j ⊆ {1..N}` of data centers this job type may
///   run in (data locality).
/// * `account` — the organization `ρ_j` that submits these jobs.
/// * `max_arrivals` — `a_j^max`, the bound on arrivals per slot (eq. (1)).
/// * `max_route` — `r_{i,j}^max`, the per-DC routing bound (eq. (4)).
/// * `max_process` — `h_{i,j}^max`, the per-DC processing bound (eq. (5)).
///   Because a fully parallelizable job of the paper can also be given a
///   *parallelism constraint* (§III-B), `max_process` doubles as that cap:
///   at most `max_process · d_j` units of this class's work are served per
///   DC per slot.
///
/// Jobs may be suspended and resumed (§III-B), which is why `h_{i,j}(t)` —
/// and therefore `max_process` — are real-valued.
///
/// # Example
/// ```
/// use grefar_types::{JobClass, DataCenterId};
///
/// let j = JobClass::new(2.0, vec![DataCenterId::new(0), DataCenterId::new(2)], 1)
///     .with_max_arrivals(8.0)
///     .with_max_route(16.0)
///     .with_max_process(16.0);
/// assert_eq!(j.work(), 2.0);
/// assert!(j.is_eligible(DataCenterId::new(2)));
/// assert!(!j.is_eligible(DataCenterId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    work: f64,
    eligible: Vec<DataCenterId>,
    account: AccountId,
    max_arrivals: f64,
    max_route: f64,
    max_process: f64,
}

/// Default per-slot bound used for `a^max`, `r^max` and `h^max` when not
/// explicitly configured. Generous enough to be non-binding in the paper's
/// scenario, yet finite as required by eqs. (1), (4), (5).
const DEFAULT_BOUND: f64 = 1.0e3;

impl JobClass {
    /// Creates a job class with service demand `work = d_j`, eligible data
    /// centers `𝒟_j` and owning account `ρ_j`.
    ///
    /// The three per-slot bounds default to a generous finite value; tune
    /// them with [`with_max_arrivals`](Self::with_max_arrivals),
    /// [`with_max_route`](Self::with_max_route) and
    /// [`with_max_process`](Self::with_max_process).
    ///
    /// # Panics
    /// Panics if `work` is not positive and finite. Eligibility and account
    /// ranges are validated by [`SystemConfig`](crate::SystemConfig).
    pub fn new(work: f64, eligible: Vec<DataCenterId>, account: impl Into<AccountId>) -> Self {
        assert!(
            work.is_finite() && work > 0.0,
            "job work must be positive and finite, got {work}"
        );
        Self {
            work,
            eligible,
            account: account.into(),
            max_arrivals: DEFAULT_BOUND,
            max_route: DEFAULT_BOUND,
            max_process: DEFAULT_BOUND,
        }
    }

    /// Sets `a_j^max`, the bound on arrivals per slot (eq. (1)).
    ///
    /// # Panics
    /// Panics if `max` is negative or non-finite.
    #[must_use]
    pub fn with_max_arrivals(mut self, max: f64) -> Self {
        assert!(
            max.is_finite() && max >= 0.0,
            "max_arrivals must be non-negative and finite"
        );
        self.max_arrivals = max;
        self
    }

    /// Sets `r_{i,j}^max`, the per-data-center routing bound (eq. (4)).
    ///
    /// # Panics
    /// Panics if `max` is negative or non-finite.
    #[must_use]
    pub fn with_max_route(mut self, max: f64) -> Self {
        assert!(
            max.is_finite() && max >= 0.0,
            "max_route must be non-negative and finite"
        );
        self.max_route = max;
        self
    }

    /// Sets `h_{i,j}^max`, the per-data-center processing bound (eq. (5)),
    /// which also encodes the optional parallelism constraint of §III-B.
    ///
    /// # Panics
    /// Panics if `max` is negative or non-finite.
    #[must_use]
    pub fn with_max_process(mut self, max: f64) -> Self {
        assert!(
            max.is_finite() && max >= 0.0,
            "max_process must be non-negative and finite"
        );
        self.max_process = max;
        self
    }

    /// Service demand `d_j` in units of work.
    #[inline]
    pub fn work(&self) -> f64 {
        self.work
    }

    /// The eligible data centers `𝒟_j`.
    #[inline]
    pub fn eligible(&self) -> &[DataCenterId] {
        &self.eligible
    }

    /// Returns `true` if this job class may run in data center `dc`.
    pub fn is_eligible(&self, dc: DataCenterId) -> bool {
        self.eligible.contains(&dc)
    }

    /// The owning account `ρ_j`.
    #[inline]
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// Arrival bound `a_j^max` (jobs per slot).
    #[inline]
    pub fn max_arrivals(&self) -> f64 {
        self.max_arrivals
    }

    /// Routing bound `r_{i,j}^max` (jobs per slot per data center).
    #[inline]
    pub fn max_route(&self) -> f64 {
        self.max_route
    }

    /// Processing bound `h_{i,j}^max` (jobs per slot per data center).
    #[inline]
    pub fn max_process(&self) -> f64 {
        self.max_process
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: usize) -> DataCenterId {
        DataCenterId::new(i)
    }

    #[test]
    fn builder_chain() {
        let j = JobClass::new(1.5, vec![dc(0)], 2)
            .with_max_arrivals(5.0)
            .with_max_route(10.0)
            .with_max_process(7.5);
        assert_eq!(j.work(), 1.5);
        assert_eq!(j.account(), AccountId::new(2));
        assert_eq!(j.max_arrivals(), 5.0);
        assert_eq!(j.max_route(), 10.0);
        assert_eq!(j.max_process(), 7.5);
    }

    #[test]
    fn eligibility() {
        let j = JobClass::new(1.0, vec![dc(1), dc(2)], 0);
        assert!(!j.is_eligible(dc(0)));
        assert!(j.is_eligible(dc(1)));
        assert!(j.is_eligible(dc(2)));
        assert_eq!(j.eligible().len(), 2);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn rejects_nonpositive_work() {
        let _ = JobClass::new(0.0, vec![dc(0)], 0);
    }

    #[test]
    #[should_panic(expected = "max_arrivals")]
    fn rejects_negative_arrival_bound() {
        let _ = JobClass::new(1.0, vec![dc(0)], 0).with_max_arrivals(-1.0);
    }

    #[test]
    fn defaults_are_finite() {
        let j = JobClass::new(1.0, vec![dc(0)], 0);
        assert!(j.max_arrivals().is_finite());
        assert!(j.max_route().is_finite());
        assert!(j.max_process().is_finite());
    }
}
