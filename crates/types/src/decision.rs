//! The per-slot control action `z(t)` (§III-C.2).

use crate::Grid;

/// The action `z(t) = {r_{i,j}(t), h_{i,j}(t), b_{i,k}(t)}` chosen at the
/// beginning of slot `t` (§III-C.2):
///
/// * `routed[(i, j)] = r_{i,j}(t)` — jobs of type `j` routed from the
///   central queue to data center `i` (integer-valued in the paper; kept as
///   `f64`, the schedulers produce integral values),
/// * `processed[(i, j)] = h_{i,j}(t)` — jobs of type `j` served in data
///   center `i` (real-valued: jobs may be suspended/resumed),
/// * `busy[(i, k)] = b_{i,k}(t)` — type-`k` servers kept busy in data
///   center `i` (real-valued: a server may be on for part of a slot).
///
/// This is a passive data structure in the C spirit; the fields are public.
///
/// # Example
/// ```
/// use grefar_types::Decision;
///
/// let mut z = Decision::zeros(2, 3, 1);
/// z.routed[(0, 2)] = 4.0;
/// z.processed[(0, 2)] = 4.0;
/// z.busy[(0, 0)] = 8.0;
/// assert_eq!(z.routed.row_sum(0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Decision {
    /// Routing matrix `r_{i,j}(t)`, shape `N × J`.
    pub routed: Grid,
    /// Processing matrix `h_{i,j}(t)`, shape `N × J`.
    pub processed: Grid,
    /// Busy-server matrix `b_{i,k}(t)`, shape `N × K`.
    pub busy: Grid,
}

impl Decision {
    /// An all-zero ("do nothing") action for a system with
    /// `num_dcs` data centers, `num_jobs` job types and `num_classes`
    /// server classes.
    pub fn zeros(num_dcs: usize, num_jobs: usize, num_classes: usize) -> Self {
        Self {
            routed: Grid::zeros(num_dcs, num_jobs),
            processed: Grid::zeros(num_dcs, num_jobs),
            busy: Grid::zeros(num_dcs, num_classes),
        }
    }

    /// Number of data centers this decision is shaped for.
    #[inline]
    pub fn num_data_centers(&self) -> usize {
        self.routed.rows()
    }

    /// Number of job types this decision is shaped for.
    #[inline]
    pub fn num_job_types(&self) -> usize {
        self.routed.cols()
    }

    /// Number of server classes this decision is shaped for.
    #[inline]
    pub fn num_server_classes(&self) -> usize {
        self.busy.cols()
    }

    /// Returns `true` if every entry of every field is non-negative
    /// (all three decision families are constrained `≥ 0`).
    pub fn is_nonnegative(&self) -> bool {
        self.routed.as_slice().iter().all(|&v| v >= 0.0)
            && self.processed.as_slice().iter().all(|&v| v >= 0.0)
            && self.busy.as_slice().iter().all(|&v| v >= 0.0)
    }

    /// Returns `true` if every entry of every field is finite.
    pub fn is_finite(&self) -> bool {
        self.routed.is_finite() && self.processed.is_finite() && self.busy.is_finite()
    }

    /// Total work served in data center `i`: `Σ_j h_{i,j}(t) · d_j`, where
    /// `work[j] = d_j`.
    ///
    /// # Panics
    /// Panics if `work.len()` differs from the number of job types.
    pub fn work_processed(&self, i: usize, work: &[f64]) -> f64 {
        assert_eq!(work.len(), self.num_job_types(), "job work vector mismatch");
        self.processed
            .row(i)
            .iter()
            .zip(work)
            .map(|(h, d)| h * d)
            .sum()
    }

    /// Computing supply switched on in data center `i`:
    /// `Σ_k b_{i,k}(t) · s_k`, where `speed[k] = s_k`.
    ///
    /// # Panics
    /// Panics if `speed.len()` differs from the number of server classes.
    pub fn supply(&self, i: usize, speed: &[f64]) -> f64 {
        assert_eq!(
            speed.len(),
            self.num_server_classes(),
            "server speed vector mismatch"
        );
        self.busy.row(i).iter().zip(speed).map(|(b, s)| b * s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let z = Decision::zeros(3, 4, 2);
        assert_eq!(z.num_data_centers(), 3);
        assert_eq!(z.num_job_types(), 4);
        assert_eq!(z.num_server_classes(), 2);
        assert!(z.is_nonnegative());
        assert!(z.is_finite());
    }

    #[test]
    fn work_processed_weights_by_demand() {
        let mut z = Decision::zeros(1, 2, 1);
        z.processed[(0, 0)] = 3.0;
        z.processed[(0, 1)] = 2.0;
        assert_eq!(z.work_processed(0, &[1.0, 4.0]), 3.0 + 8.0);
    }

    #[test]
    fn supply_weights_by_speed() {
        let mut z = Decision::zeros(1, 1, 2);
        z.busy[(0, 0)] = 2.0;
        z.busy[(0, 1)] = 4.0;
        assert_eq!(z.supply(0, &[1.0, 0.75]), 2.0 + 3.0);
    }

    #[test]
    fn negativity_detection() {
        let mut z = Decision::zeros(1, 1, 1);
        z.routed[(0, 0)] = -1.0;
        assert!(!z.is_nonnegative());
    }
}
