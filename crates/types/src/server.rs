//! Server hardware classes (§III-A).

/// A type-`k` server class, characterized by processing speed `s_k`, active
/// power `p̄_k` and idle power `p̲_k` (§III-A).
///
/// Following the paper, what matters to the scheduler is the *differential*
/// power between busy and idle, so the canonical form normalizes
/// `idle_power = 0` and stores the busy-minus-idle differential in
/// `active_power`. [`ServerClass::new`] builds the canonical form directly;
/// [`ServerClass::with_idle_power`] accepts measured busy/idle pairs and
/// normalizes them.
///
/// # Example
/// ```
/// use grefar_types::ServerClass;
///
/// // A server that draws 250 W busy, 100 W idle and processes 1.15 units of
/// // work per slot is equivalent to the canonical (1.15, 150 W, 0 W) class.
/// let k = ServerClass::with_idle_power(1.15, 250.0, 100.0);
/// assert_eq!(k.active_power(), 150.0);
/// assert_eq!(k.idle_power(), 0.0);
/// // Energy cost efficiency: differential power per unit of work.
/// assert!((k.power_per_work() - 150.0 / 1.15).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerClass {
    speed: f64,
    active_power: f64,
}

impl ServerClass {
    /// Creates a server class from its speed `s_k` (work units per slot) and
    /// busy-minus-idle differential power `p_k`.
    ///
    /// # Panics
    /// Panics if `speed <= 0`, if `active_power < 0`, or if either is
    /// non-finite. (Use [`SystemConfig::builder`] for fallible validation of
    /// whole configurations.)
    ///
    /// [`SystemConfig::builder`]: crate::SystemConfig::builder
    pub fn new(speed: f64, active_power: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "server speed must be positive and finite, got {speed}"
        );
        assert!(
            active_power.is_finite() && active_power >= 0.0,
            "server active power must be non-negative and finite, got {active_power}"
        );
        Self {
            speed,
            active_power,
        }
    }

    /// Creates a server class from measured busy and idle power, normalizing
    /// to the canonical zero-idle form used throughout the paper (§III-C.1).
    ///
    /// # Panics
    /// Panics if `busy_power < idle_power`, if `idle_power < 0`, or under the
    /// same conditions as [`ServerClass::new`].
    pub fn with_idle_power(speed: f64, busy_power: f64, idle_power: f64) -> Self {
        assert!(
            idle_power.is_finite() && idle_power >= 0.0,
            "idle power must be non-negative and finite, got {idle_power}"
        );
        assert!(
            busy_power >= idle_power,
            "busy power ({busy_power}) must be at least idle power ({idle_power})"
        );
        Self::new(speed, busy_power - idle_power)
    }

    /// Processing speed `s_k`: units of work one busy server completes per slot.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Differential (busy minus idle) power draw `p_k` of one busy server.
    #[inline]
    pub fn active_power(&self) -> f64 {
        self.active_power
    }

    /// Idle power in the canonical form — always `0` (§III-C.1: the paper
    /// normalizes `p̲ = 0` without loss of generality).
    #[inline]
    pub fn idle_power(&self) -> f64 {
        0.0
    }

    /// Power consumed per unit of work, `p_k / s_k` — the hardware half of
    /// the "energy cost per unit work" metric of Table I. Lower is more
    /// energy-efficient.
    #[inline]
    pub fn power_per_work(&self) -> f64 {
        self.active_power / self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        let k = ServerClass::new(0.75, 0.6);
        assert_eq!(k.speed(), 0.75);
        assert_eq!(k.active_power(), 0.6);
        assert_eq!(k.idle_power(), 0.0);
        assert!((k.power_per_work() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn idle_power_is_subtracted() {
        let k = ServerClass::with_idle_power(1.0, 1.5, 0.5);
        assert_eq!(k.active_power(), 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        let _ = ServerClass::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be at least idle power")]
    fn rejects_busy_below_idle() {
        let _ = ServerClass::with_idle_power(1.0, 0.4, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_power() {
        let _ = ServerClass::new(1.0, -0.1);
    }

    #[test]
    fn table_one_ordering() {
        // Table I: DC2's servers are the most energy-efficient per unit work.
        let dc1 = ServerClass::new(1.00, 1.00);
        let dc2 = ServerClass::new(0.75, 0.60);
        let dc3 = ServerClass::new(1.15, 1.20);
        assert!(dc2.power_per_work() < dc1.power_per_work());
        assert!(dc1.power_per_work() < dc3.power_per_work());
    }
}
