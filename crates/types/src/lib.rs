//! Common domain types for the GreFar geo-distributed job scheduler.
//!
//! This crate is the dependency-free leaf of the `grefar` workspace. It
//! defines the vocabulary of the model in *"Provably-Efficient Job Scheduling
//! for Energy and Fairness in Geographically Distributed Data Centers"*
//! (Ren, He, Xu — ICDCS 2012):
//!
//! * [`ServerClass`] — a type-`k` server with speed `s_k` and active power
//!   `p_k` (§III-A),
//! * [`JobClass`] — a type-`j` job `y_j = {d_j, 𝒟_j, ρ_j}` together with the
//!   boundedness parameters `a_j^max`, `r_{i,j}^max`, `h_{i,j}^max`
//!   (§III-B, eqs. (1), (4), (5)),
//! * [`Account`] — an organization `m` with fairness weight `γ_m` (§III-C),
//! * [`DataCenterState`] / [`SystemState`] — the stochastic state
//!   `x_i(t) = {n_i(t), φ_i(t)}` (§III-A),
//! * [`Decision`] — the control action
//!   `z(t) = {r_{i,j}(t), h_{i,j}(t), b_{i,k}(t)}` (§III-C),
//! * [`SystemConfig`] — the static description of the whole system,
//!   validated on construction.
//!
//! # Example
//!
//! ```
//! use grefar_types::{SystemConfig, ServerClass, JobClass, Account, DataCenterId};
//!
//! # fn main() -> Result<(), grefar_types::ConfigError> {
//! let config = SystemConfig::builder()
//!     .server_class(ServerClass::new(1.0, 1.0))
//!     .data_center("dc-east", vec![100.0])
//!     .account("tenant-a", 1.0)
//!     .job_class(
//!         JobClass::new(2.0, vec![DataCenterId::new(0)], 0)
//!             .with_max_arrivals(10.0)
//!             .with_max_route(20.0)
//!             .with_max_process(20.0),
//!     )
//!     .build()?;
//! assert_eq!(config.num_data_centers(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod config;
mod decision;
mod error;
mod grid;
mod ids;
mod job;
mod server;
mod state;
mod tariff;

pub use approx::{approx_eq, approx_zero, TOL_SENTINEL};
pub use config::{Account, DataCenterInfo, SystemConfig, SystemConfigBuilder};
pub use decision::Decision;
pub use error::ConfigError;
pub use grid::Grid;
pub use ids::{AccountId, DataCenterId, JobTypeId, ServerClassId};
pub use job::JobClass;
pub use server::ServerClass;
pub use state::{DataCenterState, SystemState};
pub use tariff::Tariff;

/// Discrete scheduling time, counted in slots `t = 0, 1, 2, …` (§III).
///
/// One slot corresponds to the electricity-market price-update period
/// (e.g. 15 minutes or 1 hour; the paper's evaluation uses 1 hour).
pub type Slot = u64;
