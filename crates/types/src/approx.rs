//! Tolerance-aware float comparison.
//!
//! The workspace's lint pass (`grefar-verify`, rule `float-eq`) forbids
//! raw `==`/`!=` against float expressions in decision-path crates:
//! almost every such comparison is either a latent bug (values that went
//! through arithmetic) or an exact-zero fast path that deserves an
//! explicit justification. Tolerance comparisons route through here so
//! there is exactly one definition of "close enough" to audit.

/// Absolute-tolerance equality: `|a − b| ≤ tol`, plus same-signed
/// infinities. NaN compares unequal to everything (as with `==`).
///
/// For "is this parameter exactly its sentinel value" checks (e.g.
/// `β = 0` selecting the greedy solver), pass a tiny tolerance such as
/// [`TOL_SENTINEL`] — values within it are indistinguishable from the
/// sentinel for every downstream computation.
///
/// # Example
/// ```
/// use grefar_types::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!approx_eq(0.1, 0.2, 1e-12));
/// assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-12));
/// assert!(!approx_eq(f64::NAN, f64::NAN, 1e-12));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "tolerance must be non-negative");
    // The exact-equality backstop makes equal infinities compare equal
    // ((inf - inf).abs() is NaN).
    (a - b).abs() <= tol || (a == b)
}

/// Shorthand for [`approx_eq`]`(a, 0.0, tol)`.
#[inline]
pub fn approx_zero(a: f64, tol: f64) -> bool {
    approx_eq(a, 0.0, tol)
}

/// Tolerance for sentinel-value parameter checks (`β = 0`, zero noise
/// amplitude): far below any physically meaningful parameter, far above
/// rounding error from parameter arithmetic.
pub const TOL_SENTINEL: f64 = 1e-12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tolerance() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.001, 1e-12));
        assert!(approx_zero(0.0, 0.0));
        assert!(approx_zero(-1e-13, TOL_SENTINEL));
    }

    #[test]
    fn infinities_and_nan() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(approx_eq(f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e9));
        assert!(!approx_eq(f64::NAN, f64::NAN, f64::INFINITY.min(1e300)));
        assert!(!approx_eq(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn symmetric() {
        for (a, b) in [(0.3, 0.1 + 0.2), (5.0, -5.0), (1e300, 1e300 + 1e288)] {
            assert_eq!(approx_eq(a, b, 1e-9), approx_eq(b, a, 1e-9));
        }
    }
}
