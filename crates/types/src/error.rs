//! Validation errors for system configurations.

use core::fmt;

/// Error returned when a [`SystemConfig`](crate::SystemConfig) or
/// [`Tariff`](crate::Tariff) fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The configuration declares no data centers (`N = 0`).
    NoDataCenters,
    /// The configuration declares no server classes (`K = 0`).
    NoServerClasses,
    /// The configuration declares no job classes (`J = 0`).
    NoJobClasses,
    /// The configuration declares no accounts (`M = 0`).
    NoAccounts,
    /// A data center's fleet vector length differs from `K`.
    FleetLengthMismatch {
        /// Index of the offending data center.
        data_center: usize,
        /// Expected length (`K`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A fleet entry is negative or non-finite.
    InvalidFleet {
        /// Index of the offending data center.
        data_center: usize,
        /// Index of the offending server class.
        server_class: usize,
    },
    /// A job class has an empty eligible set `𝒟_j`.
    EmptyEligibility {
        /// Index of the offending job class.
        job: usize,
    },
    /// A job class references a data center outside `0..N`.
    UnknownDataCenter {
        /// Index of the offending job class.
        job: usize,
        /// The out-of-range data center index.
        data_center: usize,
    },
    /// A job class lists the same data center twice in `𝒟_j`.
    DuplicateEligibility {
        /// Index of the offending job class.
        job: usize,
        /// The duplicated data center index.
        data_center: usize,
    },
    /// A job class references an account outside `0..M`.
    UnknownAccount {
        /// Index of the offending job class.
        job: usize,
        /// The out-of-range account index.
        account: usize,
    },
    /// An account's fairness weight `γ_m` is negative or non-finite.
    InvalidGamma {
        /// Index of the offending account.
        account: usize,
    },
    /// A tariff failed validation; the payload describes why.
    InvalidTariff(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoDataCenters => write!(f, "configuration has no data centers"),
            Self::NoServerClasses => write!(f, "configuration has no server classes"),
            Self::NoJobClasses => write!(f, "configuration has no job classes"),
            Self::NoAccounts => write!(f, "configuration has no accounts"),
            Self::FleetLengthMismatch {
                data_center,
                expected,
                got,
            } => write!(
                f,
                "data center {data_center} declares {got} fleet entries, expected {expected}"
            ),
            Self::InvalidFleet {
                data_center,
                server_class,
            } => write!(
                f,
                "data center {data_center} has an invalid fleet size for server class {server_class}"
            ),
            Self::EmptyEligibility { job } => {
                write!(f, "job class {job} has an empty eligible data-center set")
            }
            Self::UnknownDataCenter { job, data_center } => write!(
                f,
                "job class {job} references unknown data center {data_center}"
            ),
            Self::DuplicateEligibility { job, data_center } => write!(
                f,
                "job class {job} lists data center {data_center} more than once"
            ),
            Self::UnknownAccount { job, account } => {
                write!(f, "job class {job} references unknown account {account}")
            }
            Self::InvalidGamma { account } => write!(
                f,
                "account {account} has a negative or non-finite fairness weight"
            ),
            Self::InvalidTariff(why) => write!(f, "invalid tariff: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            ConfigError::NoDataCenters,
            ConfigError::NoServerClasses,
            ConfigError::NoJobClasses,
            ConfigError::NoAccounts,
            ConfigError::FleetLengthMismatch {
                data_center: 1,
                expected: 2,
                got: 3,
            },
            ConfigError::InvalidFleet {
                data_center: 0,
                server_class: 1,
            },
            ConfigError::EmptyEligibility { job: 0 },
            ConfigError::UnknownDataCenter {
                job: 0,
                data_center: 9,
            },
            ConfigError::DuplicateEligibility {
                job: 0,
                data_center: 1,
            },
            ConfigError::UnknownAccount { job: 0, account: 9 },
            ConfigError::InvalidGamma { account: 2 },
            ConfigError::InvalidTariff("why".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
