//! A small dense row-major 2-D array of `f64`.
//!
//! Decision variables in the model are naturally matrices indexed by
//! (data center, job type) or (data center, server class) — e.g. the routing
//! matrix `r_{i,j}(t)`. [`Grid`] provides exactly the operations the
//! schedulers and the simulator need without pulling in a linear-algebra
//! dependency.

use core::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64` used for the decision fields
/// `r_{i,j}`, `h_{i,j}` and `b_{i,k}`.
///
/// # Example
/// ```
/// use grefar_types::Grid;
///
/// let mut g = Grid::zeros(2, 3);
/// g[(1, 2)] = 4.5;
/// assert_eq!(g[(1, 2)], 4.5);
/// assert_eq!(g.row(1), &[0.0, 0.0, 4.5]);
/// assert_eq!(g.sum(), 4.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Grid {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a `rows × cols` grid filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a grid from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "grid data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of the entries in row `r`.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row(r).iter().sum()
    }

    /// Sum of the entries in column `c`.
    ///
    /// # Panics
    /// Panics if `c >= cols`.
    pub fn col_sum(&self, c: usize) -> f64 {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).sum()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero, keeping the shape.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Elementwise `self += alpha * other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Grid) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "grid shape mismatch in axpy"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Linear interpolation towards `other`: `self = (1 - theta) * self + theta * other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn lerp(&mut self, theta: f64, other: &Grid) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "grid shape mismatch in lerp"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = (1.0 - theta) * *a + theta * b;
        }
    }

    /// Dot product of the two grids seen as flat vectors.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn dot(&self, other: &Grid) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "grid shape mismatch in dot"
        );
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Maximum absolute entry (0 for an empty grid).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Grid {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Grid {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let g = Grid::zeros(3, 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn index_roundtrip() {
        let mut g = Grid::zeros(2, 2);
        g[(0, 1)] = 1.0;
        g[(1, 0)] = 2.0;
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 2.0);
        assert_eq!(g.sum(), 3.0);
    }

    #[test]
    fn row_and_col_sums() {
        let g = Grid::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(g.row_sum(0), 6.0);
        assert_eq!(g.row_sum(1), 15.0);
        assert_eq!(g.col_sum(0), 5.0);
        assert_eq!(g.col_sum(2), 9.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Grid::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn axpy_and_lerp() {
        let mut a = Grid::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Grid::from_vec(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.lerp(1.0, &b);
        assert_eq!(a.as_slice(), &[10.0, 20.0]);
    }

    #[test]
    fn dot_and_max_abs() {
        let a = Grid::from_vec(1, 3, vec![1.0, -4.0, 2.0]);
        let b = Grid::from_vec(1, 3, vec![2.0, 1.0, 0.5]);
        assert_eq!(a.dot(&b), -1.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn clear_resets() {
        let mut g = Grid::from_vec(1, 2, vec![1.0, 2.0]);
        g.clear();
        assert_eq!(g.sum(), 0.0);
        assert_eq!(g.cols(), 2);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut g = Grid::zeros(1, 1);
        assert!(g.is_finite());
        g[(0, 0)] = f64::NAN;
        assert!(!g.is_finite());
    }
}
