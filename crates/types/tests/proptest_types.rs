//! Property tests for the foundational types: tariffs, grids and the
//! configuration builder.

use grefar_types::{DataCenterId, Grid, JobClass, ServerClass, SystemConfig, Tariff};
use proptest::prelude::*;

fn tariff_strategy() -> impl Strategy<Value = Tariff> {
    prop_oneof![
        (0.0f64..2.0).prop_map(Tariff::flat),
        proptest::collection::vec((0.1f64..20.0, 0.0f64..0.5), 1..=4).prop_map(|mut segs| {
            // Sort rates ascending to satisfy convexity.
            segs.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            Tariff::convex(segs).expect("sorted rates are convex")
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Tariff cost is 0 at 0, non-decreasing, convex, and its marginal rate
    /// is the slope between nearby points.
    #[test]
    fn tariff_cost_is_convex(tariff in tariff_strategy(), scale in 1.0f64..100.0) {
        prop_assert_eq!(tariff.cost(0.0), 0.0);
        let samples: Vec<f64> = (0..=24).map(|i| tariff.cost(scale * i as f64 / 24.0)).collect();
        for w in samples.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        for w in samples.windows(3) {
            prop_assert!(w[2] - 2.0 * w[1] + w[0] >= -1e-9);
        }
        // Marginal rate bounds the local slope.
        let e = scale * 0.37;
        let h = 1e-7 * scale;
        let slope = (tariff.cost(e + h) - tariff.cost(e)) / h;
        prop_assert!((slope - tariff.marginal_rate(e)).abs() < 1e-3 * (1.0 + slope.abs()));
    }

    /// Grid algebra: axpy/lerp/dot behave like their vector definitions.
    #[test]
    fn grid_algebra(
        a in proptest::collection::vec(-10.0f64..10.0, 6),
        b in proptest::collection::vec(-10.0f64..10.0, 6),
        alpha in -2.0f64..2.0,
        theta in 0.0f64..1.0,
    ) {
        let ga0 = Grid::from_vec(2, 3, a.clone());
        let gb = Grid::from_vec(2, 3, b.clone());

        let mut axpy = ga0.clone();
        axpy.axpy(alpha, &gb);
        for i in 0..6 {
            prop_assert!((axpy.as_slice()[i] - (a[i] + alpha * b[i])).abs() < 1e-12);
        }

        let mut lerp = ga0.clone();
        lerp.lerp(theta, &gb);
        for i in 0..6 {
            let want = (1.0 - theta) * a[i] + theta * b[i];
            prop_assert!((lerp.as_slice()[i] - want).abs() < 1e-12);
        }

        let dot = ga0.dot(&gb);
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((dot - want).abs() < 1e-9);

        // Row/column sums tile the total.
        let total: f64 = (0..2).map(|r| ga0.row_sum(r)).sum();
        let total_c: f64 = (0..3).map(|c| ga0.col_sum(c)).sum();
        prop_assert!((total - total_c).abs() < 1e-9);
        prop_assert!((total - ga0.sum()).abs() < 1e-9);
    }

    /// Any structurally-consistent random configuration builds, and its
    /// derived accessors are consistent with the inputs.
    #[test]
    fn valid_configs_build(
        n in 1usize..4,
        k in 1usize..3,
        j in 1usize..5,
        m in 1usize..3,
        seedling in any::<u64>(),
    ) {
        let mut state = seedling;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut builder = SystemConfig::builder();
        for _ in 0..k {
            builder = builder.server_class(ServerClass::new(0.5 + next(), 0.1 + next()));
        }
        for i in 0..n {
            let fleet: Vec<f64> = (0..k).map(|_| (20.0 * next()).floor()).collect();
            builder = builder.data_center(format!("dc{i}"), fleet);
        }
        for mm in 0..m {
            builder = builder.account(format!("m{mm}"), next());
        }
        for jj in 0..j {
            let first = (next() * n as f64) as usize % n;
            let mut eligible = vec![DataCenterId::new(first)];
            for i in 0..n {
                if i != first && next() < 0.5 {
                    eligible.push(DataCenterId::new(i));
                }
            }
            builder = builder.job_class(JobClass::new(0.1 + next(), eligible, jj % m));
        }
        let config = builder.build().expect("structurally consistent config");
        prop_assert_eq!(config.num_data_centers(), n);
        prop_assert_eq!(config.num_server_classes(), k);
        prop_assert_eq!(config.num_job_classes(), j);
        prop_assert_eq!(config.num_accounts(), m);
        // jobs_of_account partitions the job set.
        let total: usize = (0..m)
            .map(|mm| config.jobs_of_account(grefar_types::AccountId::new(mm)).len())
            .sum();
        prop_assert_eq!(total, j);
        // Total capacity is the sum of per-DC capacities.
        let sum: f64 = (0..n).map(|i| config.max_capacity(i)).sum();
        prop_assert!((sum - config.total_max_capacity()).abs() < 1e-9);
        // Eligible pairs are exactly the jobs' eligibility lists.
        let pair_count: usize = config.job_classes().iter().map(|jc| jc.eligible().len()).sum();
        prop_assert_eq!(config.eligible_pairs().count(), pair_count);
    }
}
