//! End-to-end tests of the `grefar-served` binary: the wire protocol, the
//! `kill -9` → `--resume` continuation, chaos-driven actor restarts, and
//! the supervisor's give-up escalation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_grefar-served")
}

/// A fresh scratch directory per test (parallel tests must not collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grefar-served-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls the `--port-file` until the daemon has written its address.
fn wait_addr(port_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote {port_file:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_exit(child: &mut Child) -> ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Session {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Session {
    fn connect(addr: &str) -> Self {
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("cannot connect to {addr}: {e}"),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Session {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Sends one request line, returns the one reply line.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "connection closed after {line:?}");
        reply.trim().to_string()
    }
}

/// The deterministic slice of a telemetry stream: the events the schedule
/// itself emits, with the wall-clock field stripped (`grefar-report diff`
/// applies the same filters).
fn schedule_events(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| {
            [
                "\"event\":\"run.start\"",
                "\"event\":\"slot\"",
                "\"event\":\"run.end\"",
            ]
            .iter()
            .any(|tag| l.contains(tag))
        })
        .map(|l| {
            // "wall_us":N is always the trailing field of slot/run.end.
            match l.find(",\"wall_us\":") {
                Some(cut) => format!("{}}}", &l[..cut]),
                None => l.to_string(),
            }
        })
        .collect()
}

fn count_lines_with(path: &Path, needles: &[&str]) -> usize {
    std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter(|l| needles.iter().all(|needle| l.contains(needle)))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn manual_clock_session_drains_cleanly() {
    let dir = scratch("drain");
    let port_file = dir.join("port");
    let telemetry = dir.join("tele.jsonl");
    let mut daemon = Command::new(bin())
        .args(["--hours", "6", "--clock", "manual", "--seed", "42"])
        .arg("--telemetry")
        .arg(&telemetry)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_addr(&port_file);
    let mut session = Session::connect(&addr);

    let accept = session.request("{\"op\":\"submit\",\"job\":0,\"count\":2}");
    assert!(accept.contains("\"ok\":true"), "{accept}");
    assert!(accept.contains("\"seq\":0"), "{accept}");

    let advanced = session.request("{\"op\":\"advance\",\"slots\":2}");
    assert!(advanced.contains("\"slot\":2"), "{advanced}");

    let status = session.request("{\"op\":\"status\"}");
    assert!(status.contains("\"admitted\":1"), "{status}");
    assert!(status.contains("\"horizon\":6"), "{status}");

    // Fractional counts are refused at the protocol edge.
    let reject = session.request("{\"op\":\"submit\",\"job\":0,\"count\":0.5}");
    assert!(reject.contains("\"error\":\"bad_request\""), "{reject}");

    let drain = session.request("{\"op\":\"drain\"}");
    assert!(drain.contains("\"draining\":true"), "{drain}");

    let status = wait_exit(&mut daemon);
    assert_eq!(status.code(), Some(0), "drain must exit 0");
    let text = std::fs::read_to_string(&telemetry).unwrap();
    assert!(text.contains("\"event\":\"served.start\""), "{text}");
    assert!(text.contains("\"event\":\"admission.accept\""), "{text}");
    assert!(text.contains("\"event\":\"run.end\""), "{text}");
    assert!(text.contains("\"event\":\"served.stop\""), "{text}");
}

#[test]
fn kill_nine_then_resume_continues_bit_identically() {
    let dir = scratch("resume");
    let run = |tag: &str| {
        let port_file = dir.join(format!("{tag}.port"));
        let telemetry = dir.join(format!("{tag}.jsonl"));
        let checkpoint = dir.join(format!("{tag}.ck"));
        let mut cmd = Command::new(bin());
        cmd.args(["--hours", "8", "--clock", "manual", "--seed", "7"])
            .arg("--telemetry")
            .arg(&telemetry)
            .arg("--checkpoint")
            .arg(&checkpoint)
            .arg("--port-file")
            .arg(&port_file)
            .stdout(Stdio::null());
        (cmd, port_file, telemetry)
    };

    // Reference: one uninterrupted session.
    let (mut cmd, port_file, reference_tele) = run("ref");
    let mut daemon = cmd.spawn().unwrap();
    let mut session = Session::connect(&wait_addr(&port_file));
    session.request("{\"op\":\"submit\",\"job\":1,\"count\":3}");
    let advanced = session.request("{\"op\":\"advance\",\"slots\":8}");
    assert!(advanced.contains("\"done\":true"), "{advanced}");
    assert_eq!(wait_exit(&mut daemon).code(), Some(0));

    // Interrupted: same submissions, kill -9 mid-run, resume, finish.
    let (mut cmd, port_file, interrupted_tele) = run("cut");
    let mut daemon = cmd.spawn().unwrap();
    let mut session = Session::connect(&wait_addr(&port_file));
    session.request("{\"op\":\"submit\",\"job\":1,\"count\":3}");
    let advanced = session.request("{\"op\":\"advance\",\"slots\":3}");
    assert!(advanced.contains("\"slot\":3"), "{advanced}");
    daemon.kill().unwrap(); // SIGKILL: no drain, no flush
    daemon.wait().unwrap();

    let (mut cmd, port_file, _) = run("cut");
    std::fs::remove_file(&port_file).unwrap();
    cmd.arg("--resume");
    let mut daemon = cmd.spawn().unwrap();
    let mut session = Session::connect(&wait_addr(&port_file));
    let status = session.request("{\"op\":\"status\"}");
    assert!(status.contains("\"slot\":3"), "resume position: {status}");
    let advanced = session.request("{\"op\":\"advance\",\"slots\":5}");
    assert!(advanced.contains("\"done\":true"), "{advanced}");
    assert_eq!(wait_exit(&mut daemon).code(), Some(0));

    // The merged interrupted stream carries the same schedule as the
    // uninterrupted one.
    let reference = schedule_events(&reference_tele);
    let merged = schedule_events(&interrupted_tele);
    assert_eq!(reference.len(), 10, "run.start + 8 slots + run.end");
    assert_eq!(reference, merged, "resume must continue bit-identically");
}

#[test]
fn chaos_kills_restart_actors_and_the_run_completes() {
    let dir = scratch("chaos");
    let port_file = dir.join("port");
    let telemetry = dir.join("tele.jsonl");
    let checkpoint = dir.join("ck");
    // Kills are spaced out (telemetry first) so no restart event can land
    // in a telemetry incarnation that is itself about to be killed.
    let mut daemon = Command::new(bin())
        .args(["--hours", "10", "--clock", "turbo", "--seed", "3"])
        .args(["--backoff-ms", "1"])
        .args([
            "--chaos",
            "kill:actor=telemetry,start=2,end=3;\
             kill:actor=feeds,start=4,end=5;\
             kill:actor=state_keeper,start=6,end=7;\
             stall:actor=admission,ms=1,start=7,end=8",
        ])
        .arg("--telemetry")
        .arg(&telemetry)
        .arg("--checkpoint")
        .arg(&checkpoint)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    wait_addr(&port_file);
    assert_eq!(
        wait_exit(&mut daemon).code(),
        Some(0),
        "a supervised run rides out its chaos plan"
    );
    for actor in ["telemetry", "feeds", "state_keeper"] {
        assert_eq!(
            count_lines_with(
                &telemetry,
                &[
                    "\"event\":\"served.restart\"",
                    &format!("\"actor\":\"{actor}\"")
                ],
            ),
            1,
            "the {actor} kill leaves exactly one served.restart"
        );
    }
    assert_eq!(
        count_lines_with(&telemetry, &["\"event\":\"run.end\""]),
        1,
        "the run still completes exactly once"
    );
}

#[test]
fn restart_intensity_limit_gives_up_with_exit_one() {
    let dir = scratch("giveup");
    let port_file = dir.join("port");
    let mut daemon = Command::new(bin())
        .args(["--hours", "12", "--clock", "turbo", "--seed", "3"])
        .args(["--max-restarts", "1", "--backoff-ms", "1"])
        .args([
            "--chaos",
            "kill:actor=state_keeper,start=1,end=2;\
             kill:actor=state_keeper,start=2,end=3;\
             kill:actor=state_keeper,start=3,end=4",
        ])
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_addr(&port_file);
    assert_eq!(
        wait_exit(&mut daemon).code(),
        Some(1),
        "exceeding the restart budget must escalate to exit 1"
    );
}

#[test]
fn client_subcommand_scripts_a_session() {
    let dir = scratch("client");
    let port_file = dir.join("port");
    let script = dir.join("script.txt");
    std::fs::write(
        &script,
        "# a comment and a blank line are skipped\n\n\
         {\"op\":\"submit\",\"job\":0,\"count\":1}\n\
         {\"op\":\"advance\"}\n\
         {\"op\":\"drain\"}\n",
    )
    .unwrap();
    let mut daemon = Command::new(bin())
        .args(["--hours", "4", "--clock", "manual", "--seed", "9"])
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_addr(&port_file);
    let output = Command::new(bin())
        .arg("client")
        .arg(&addr)
        .arg(&script)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), 3, "{stdout}");
    assert!(replies[0].contains("\"seq\":0"), "{stdout}");
    assert!(replies[1].contains("\"slot\":1"), "{stdout}");
    assert!(replies[2].contains("\"draining\":true"), "{stdout}");
    assert_eq!(wait_exit(&mut daemon).code(), Some(0));
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = scratch("sigterm");
    let port_file = dir.join("port");
    let telemetry = dir.join("tele.jsonl");
    let mut daemon = Command::new(bin())
        .args(["--hours", "6", "--clock", "manual", "--seed", "4"])
        .arg("--telemetry")
        .arg(&telemetry)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_addr(&port_file);
    let mut session = Session::connect(&addr);
    session.request("{\"op\":\"advance\",\"slots\":2}");

    let kill = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let status = wait_exit(&mut daemon);
    assert_eq!(status.code(), Some(0), "SIGTERM is a graceful drain");
    let text = std::fs::read_to_string(&telemetry).unwrap();
    assert!(text.contains("\"event\":\"run.end\""), "{text}");
    assert!(text.contains("\"event\":\"served.stop\""), "{text}");
}
