//! Property tests for the supervision layer:
//!
//! * The restart budget's backoff schedule is a pure function of the
//!   [`RestartPolicy`] — deterministic, doubling, capped, and refused
//!   exactly when the intensity budget is blown.
//! * A seed-generated `stall:` chaos plan round-trips through the DSL and
//!   schedules the same stalls on every parse — the stall timing the
//!   supervisor sees is a function of the seed alone.
//! * A feeds-actor restart (rebuild + fast-forward, the supervisor's
//!   recovery move) reproduces the circuit breaker's half-open probe
//!   schedule bit-for-bit: probes land on the same slots with the same
//!   transitions as the incarnation that died.

use grefar_faults::splitmix64;
use grefar_ingest::{FeedHarness, FeedProfile};
use grefar_obs::json::parse_object;
use grefar_obs::JsonlSink;
use grefar_served::{ChaosPlan, RestartPolicy};
use grefar_sim::PaperScenario;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #[test]
    fn backoff_schedule_is_deterministic_doubling_and_capped(
        base in 1u64..=500,
        cap_extra in 0u64..=2000,
        max_restarts in 1u32..=8,
    ) {
        let policy = RestartPolicy {
            backoff_base_ms: base,
            backoff_cap_ms: base + cap_extra,
            max_restarts,
            window: Duration::from_secs(30),
        };
        let schedule: Vec<Option<u64>> =
            (1..=max_restarts + 3).map(|k| policy.backoff_for(k)).collect();
        let again: Vec<Option<u64>> =
            (1..=max_restarts + 3).map(|k| policy.backoff_for(k)).collect();
        prop_assert_eq!(&schedule, &again, "backoff must be a pure function");

        let mut previous = 0u64;
        for (i, entry) in schedule.iter().enumerate() {
            let in_window = i as u32 + 1;
            if in_window <= max_restarts {
                let backoff = entry.unwrap();
                let expected = base
                    .saturating_mul(1 << u32::min(in_window - 1, 20))
                    .min(base + cap_extra);
                prop_assert_eq!(backoff, expected, "restart #{}", in_window);
                prop_assert!(backoff >= previous, "backoff must not shrink");
                prop_assert!(backoff <= base + cap_extra, "backoff must respect the cap");
                previous = backoff;
            } else {
                prop_assert_eq!(*entry, None, "budget blown at restart #{}", in_window);
            }
        }
    }

    #[test]
    fn stall_chaos_schedule_is_a_function_of_the_seed(seed in 0u64..10_000) {
        let mut state = seed;
        let actors = ["state_keeper", "admission", "feeds", "telemetry"];
        let actor = actors[(splitmix64(&mut state) % 4) as usize];
        let ms = 1 + splitmix64(&mut state) % 40;
        let start = splitmix64(&mut state) % 16;
        let end = start + 1 + splitmix64(&mut state) % 4;
        let spec = format!("stall:actor={actor},ms={ms},start={start},end={end}");

        let first = ChaosPlan::parse(&spec).unwrap();
        let second = ChaosPlan::parse(&spec).unwrap();
        prop_assert_eq!(first.spec(), second.spec(), "DSL round-trip must be canonical");
        for slot in 0..24u64 {
            let stalls_a = first.stalls_starting_at(slot);
            let stalls_b = second.stalls_starting_at(slot);
            prop_assert_eq!(&stalls_a, &stalls_b, "slot {}", slot);
            if slot == start {
                prop_assert_eq!(stalls_a.len(), 1, "the stall opens exactly once");
                prop_assert_eq!(stalls_a[0].0.label(), actor);
                prop_assert_eq!(stalls_a[0].1, ms);
            } else {
                prop_assert!(stalls_a.is_empty(), "no stall opens at slot {}", slot);
            }
            prop_assert!(
                first.kills_starting_at(slot).is_empty(),
                "a stall plan must never schedule kills"
            );
        }
    }
}

/// The `feed.breaker` JSONL lines an observer captured, paired with the
/// slot each transition fired at.
fn breaker_lines(sink: JsonlSink<Vec<u8>>) -> Vec<(u64, String)> {
    let text = String::from_utf8(sink.into_inner()).expect("jsonl is utf-8");
    text.lines()
        .filter(|line| line.contains("\"event\":\"feed.breaker\""))
        .map(|line| {
            let fields = parse_object(line).expect("well-formed event");
            let t = fields
                .get("t")
                .and_then(|v| v.as_f64())
                .expect("feed.breaker carries t") as u64;
            (t, line.to_string())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn feeds_restart_reproduces_the_half_open_probe_schedule(
        seed in 0u64..512,
        restart_at in 1u64..23,
    ) {
        const HORIZON: u64 = 24;
        let mut state = seed;
        let outage_start = splitmix64(&mut state) % 6;
        let outage_end = outage_start + 4 + splitmix64(&mut state) % 8;
        let cooldown = 1 + splitmix64(&mut state) % 3;
        let spec = format!(
            "outage:feed=price,dc=0,start={outage_start},end={outage_end}; \
             policy:cooldown={cooldown}"
        );
        let scenario = PaperScenario::default().with_seed(seed);
        let num_dcs = scenario.config().num_data_centers();
        let inputs = scenario.into_inputs(HORIZON as usize);

        // The incarnation that never dies: observes every slot.
        let profile = FeedProfile::parse(&spec).unwrap();
        let mut full = FeedHarness::new(profile, num_dcs).unwrap();
        let mut full_sink = JsonlSink::new(Vec::new());
        for t in 0..HORIZON {
            full.observe(t, inputs.states(), inputs.all_arrivals(), &mut full_sink);
        }

        // The replacement after a chaos kill at `restart_at`: rebuilt from
        // the profile and fast-forwarded to the watermark, exactly as
        // `run_feeds` recovers.
        let profile = FeedProfile::parse(&spec).unwrap();
        let mut revived = FeedHarness::new(profile, num_dcs).unwrap();
        revived.fast_forward(inputs.states(), inputs.all_arrivals(), restart_at);
        let mut revived_sink = JsonlSink::new(Vec::new());
        for t in restart_at..HORIZON {
            revived.observe(t, inputs.states(), inputs.all_arrivals(), &mut revived_sink);
        }

        let full_transitions = breaker_lines(full_sink);
        prop_assert!(
            !full_transitions.is_empty(),
            "an outage of 4+ slots must trip the breaker (breaker_fails=4) — \
             an empty stream would make this test vacuous"
        );
        let full_tail: Vec<(u64, String)> = full_transitions
            .into_iter()
            .filter(|(t, _)| *t >= restart_at)
            .collect();
        let revived_tail = breaker_lines(revived_sink);
        prop_assert_eq!(
            full_tail,
            revived_tail,
            "half-open probes after a restart at {} must interleave \
             identically with the uninterrupted run",
            restart_at
        );
    }
}
