//! `grefar-served` — the scheduling daemon's command line.
//!
//! ```text
//! USAGE:
//!   grefar-served [--listen ADDR] [--clock manual|turbo|real:MS]
//!                 [--scheduler grefar|always|local-only|price-greedy]
//!                 [--v V] [--beta B] [--hours N] [--seed S] [--load-scale X]
//!                 [--admission-cap C] [--deadline-iters N] [--queue-cap N]
//!                 [--faults PLAN] [--chaos PLAN] [--feeds PROFILE]
//!                 [--checkpoint FILE] [--checkpoint-every N] [--resume]
//!                 [--telemetry FILE.jsonl] [--metrics-snapshot FILE]
//!                 [--metrics-listen ADDR] [--alerts RULES]
//!                 [--port-file FILE] [--max-restarts N] [--backoff-ms MS]
//!   grefar-served client ADDR [SCRIPT]
//! ```
//!
//! The daemon accepts line-delimited JSON requests on `--listen` (see
//! `grefar_served::protocol`): `{"op":"submit","job":J,"count":C}`,
//! `{"op":"advance","slots":N}` (manual clock), `{"op":"status"}` and
//! `{"op":"drain"}`. `--checkpoint FILE` makes the daemon crash-safe: the
//! admission journal lands in `FILE.journal`, checkpoints are cut every
//! `--checkpoint-every` slots, and after a `kill -9` the same command line
//! plus `--resume` continues bit-identically — the merged `--telemetry`
//! stream is diff-clean against an uninterrupted run.
//!
//! `--chaos PLAN` schedules deterministic actor failures (`kill:actor=…`,
//! `stall:actor=…,ms=…`, `sockdrop:…` windows keyed to slots); data faults
//! and solver squeezes stay in `--faults`. SIGTERM/SIGINT drain
//! gracefully: admission stops, the run is checkpointed and finished, the
//! telemetry and metrics snapshot are flushed, and the process exits 0.
//!
//! `client` connects to a running daemon and plays `SCRIPT` (a file of
//! request lines, `-` or absent for stdin; blank lines and `#` comments
//! skipped), printing one response line per request.

use grefar_served::engine::{EngineSpec, SchedulerSpec};
use grefar_served::state_keeper::Clock;
use grefar_served::supervisor::{run_daemon, DaemonOptions, RestartPolicy};
use grefar_served::ChaosPlan;
use grefar_sim::PaperScenario;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "grefar-served [--listen ADDR] [--clock manual|turbo|real:MS] \
                     [--scheduler grefar|always|local-only|price-greedy] [--v V] [--beta B] \
                     [--hours N] [--seed S] [--load-scale X] [--admission-cap C] \
                     [--deadline-iters N] [--queue-cap N] [--faults PLAN] [--chaos PLAN] \
                     [--feeds PROFILE] [--checkpoint FILE] [--checkpoint-every N] [--resume] \
                     [--telemetry FILE.jsonl] [--metrics-snapshot FILE] [--metrics-listen ADDR] \
                     [--alerts RULES] [--port-file FILE] [--max-restarts N] [--backoff-ms MS]\n\
                     grefar-served client ADDR [SCRIPT]";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\nusage: {USAGE}");
    std::process::exit(2);
}

/// Resolves a spec argument: if it names a readable file, the file's
/// contents are the spec; otherwise the value itself is (the same
/// convention as the experiment binaries' loaders).
fn spec_or_file(value: &str) -> String {
    std::fs::read_to_string(value)
        .map_or_else(|_| value.to_string(), |text| text.trim().to_string())
}

struct ServeOptions {
    listen: String,
    clock: String,
    scheduler: String,
    v: f64,
    beta: f64,
    hours: usize,
    seed: u64,
    load_scale: f64,
    admission_cap: Option<f64>,
    deadline_iters: Option<usize>,
    queue_cap: usize,
    faults: Option<String>,
    chaos: Option<String>,
    feeds: Option<String>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
    telemetry: Option<PathBuf>,
    metrics_snapshot: Option<PathBuf>,
    metrics_listen: Option<String>,
    alerts: Option<String>,
    port_file: Option<PathBuf>,
    max_restarts: u32,
    backoff_ms: u64,
}

fn parse_serve_args(args: &[String]) -> ServeOptions {
    let mut opts = ServeOptions {
        listen: "127.0.0.1:0".into(),
        clock: "manual".into(),
        scheduler: "grefar".into(),
        v: 7.5,
        beta: 0.0,
        hours: 24 * 30,
        seed: 2012,
        load_scale: 1.0,
        admission_cap: None,
        deadline_iters: None,
        queue_cap: 64,
        faults: None,
        chaos: None,
        feeds: None,
        checkpoint: None,
        checkpoint_every: 1,
        resume: false,
        telemetry: None,
        metrics_snapshot: None,
        metrics_listen: None,
        alerts: None,
        port_file: None,
        max_restarts: 5,
        backoff_ms: 50,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> &str {
            match args.get(i + 1) {
                Some(v) => v,
                None => usage_error(&format!("missing value after {}", args[i])),
            }
        };
        let number = |i: usize, what: &str| -> f64 {
            match value(i).parse() {
                Ok(v) => v,
                Err(_) => usage_error(&format!("{what} expects a number")),
            }
        };
        let integer = |i: usize, what: &str| -> u64 {
            match value(i).parse() {
                Ok(v) => v,
                Err(_) => usage_error(&format!("{what} expects an integer")),
            }
        };
        match args[i].as_str() {
            "--listen" => opts.listen = value(i).to_string(),
            "--clock" => opts.clock = value(i).to_string(),
            "--scheduler" => opts.scheduler = value(i).to_string(),
            "--v" => opts.v = number(i, "--v"),
            "--beta" => opts.beta = number(i, "--beta"),
            "--hours" => opts.hours = integer(i, "--hours") as usize,
            "--seed" => opts.seed = integer(i, "--seed"),
            "--load-scale" => opts.load_scale = number(i, "--load-scale"),
            "--admission-cap" => opts.admission_cap = Some(number(i, "--admission-cap")),
            "--deadline-iters" => {
                opts.deadline_iters = Some(integer(i, "--deadline-iters") as usize)
            }
            "--queue-cap" => opts.queue_cap = integer(i, "--queue-cap") as usize,
            "--faults" => opts.faults = Some(value(i).to_string()),
            "--chaos" => opts.chaos = Some(value(i).to_string()),
            "--feeds" => opts.feeds = Some(value(i).to_string()),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value(i))),
            "--checkpoint-every" => opts.checkpoint_every = integer(i, "--checkpoint-every"),
            "--resume" => {
                opts.resume = true;
                i -= 1;
            }
            "--telemetry" => opts.telemetry = Some(PathBuf::from(value(i))),
            "--metrics-snapshot" => opts.metrics_snapshot = Some(PathBuf::from(value(i))),
            "--metrics-listen" => opts.metrics_listen = Some(value(i).to_string()),
            "--alerts" => opts.alerts = Some(value(i).to_string()),
            "--port-file" => opts.port_file = Some(PathBuf::from(value(i))),
            "--max-restarts" => opts.max_restarts = integer(i, "--max-restarts") as u32,
            "--backoff-ms" => opts.backoff_ms = integer(i, "--backoff-ms"),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
        i += 2;
    }
    if opts.hours == 0 {
        usage_error("--hours must be positive");
    }
    if opts.checkpoint_every == 0 {
        usage_error("--checkpoint-every must be positive");
    }
    if opts.queue_cap == 0 {
        usage_error("--queue-cap must be positive");
    }
    if opts.resume && opts.checkpoint.is_none() {
        usage_error("--resume requires --checkpoint FILE");
    }
    opts
}

fn serve(opts: ServeOptions) -> ! {
    let clock = Clock::parse(&opts.clock).unwrap_or_else(|e| usage_error(&e));
    let scheduler = SchedulerSpec::parse(&opts.scheduler, opts.v, opts.beta)
        .unwrap_or_else(|e| usage_error(&e));
    let faults = opts.faults.as_deref().map(|spec| {
        let plan = grefar_faults::FaultPlan::parse(&spec_or_file(spec))
            .unwrap_or_else(|e| usage_error(&format!("--faults: {e}")));
        if plan.has_chaos() {
            usage_error("--faults carries chaos clauses; move kill/stall/sockdrop to --chaos");
        }
        plan
    });
    let chaos = opts.chaos.as_deref().map(|spec| {
        ChaosPlan::parse(&spec_or_file(spec))
            .unwrap_or_else(|e| usage_error(&format!("--chaos: {e}")))
    });
    let feeds = opts.feeds.as_deref().map(|spec| {
        grefar_ingest::FeedProfile::parse(&spec_or_file(spec))
            .unwrap_or_else(|e| usage_error(&format!("--feeds: {e}")))
    });
    let alerts = opts.alerts.as_deref().map_or_else(Vec::new, |spec| {
        grefar_metrics::parse_rules(&spec_or_file(spec))
            .unwrap_or_else(|e| usage_error(&format!("--alerts: {e}")))
    });

    let scenario = PaperScenario::default()
        .with_seed(opts.seed)
        .with_load_scale(opts.load_scale);
    let config = scenario.config().clone();
    let base_inputs = scenario.into_inputs(opts.hours);

    let engine = EngineSpec {
        config,
        base_inputs,
        scheduler,
        admission_cap: opts.admission_cap,
        faults,
        feeds,
        deadline_iters: opts.deadline_iters,
    };
    let options = DaemonOptions {
        listen: opts.listen,
        clock,
        engine,
        chaos,
        checkpoint: opts.checkpoint,
        checkpoint_every: opts.checkpoint_every,
        resume: opts.resume,
        telemetry: opts.telemetry,
        metrics_snapshot: opts.metrics_snapshot,
        metrics_listen: opts.metrics_listen,
        alerts,
        port_file: opts.port_file,
        queue_cap: opts.queue_cap,
        restart: RestartPolicy {
            backoff_base_ms: opts.backoff_ms,
            max_restarts: opts.max_restarts,
            ..RestartPolicy::default()
        },
    };
    match run_daemon(options) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Plays a request script against a running daemon, one reply per line.
fn client(args: &[String]) -> ! {
    let addr = match args.first() {
        Some(addr) => addr.clone(),
        None => usage_error("client needs the daemon address"),
    };
    let script: Box<dyn Read> = match args.get(1).map(String::as_str) {
        None | Some("-") => Box::new(std::io::stdin()),
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(file),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut replies = BufReader::new(stream);
    for line in BufReader::new(script).lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("error: reading script: {e}");
                std::process::exit(1);
            }
        };
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue;
        }
        if writeln!(writer, "{request}").is_err() {
            eprintln!("error: daemon closed the connection");
            std::process::exit(1);
        }
        let mut reply = String::new();
        match replies.read_line(&mut reply) {
            Ok(0) => {
                eprintln!("error: daemon closed the connection");
                std::process::exit(1);
            }
            Ok(_) => print!("{reply}"),
            Err(e) => {
                eprintln!("error: reading reply: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("client") => client(&args[1..]),
        _ => serve(parse_serve_args(&args)),
    }
}
