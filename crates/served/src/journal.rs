//! The admission journal: the daemon's write-ahead log of accepted
//! submissions.
//!
//! Checkpoints capture the *engine* state (queues, trackers, RNG-free
//! frozen inputs are rebuilt from the seed), but live submissions mutate
//! the arrival rows on top of the frozen base. The journal records every
//! accepted submission — `fsync`'d *before* the client sees its
//! acknowledgement — so a restarted daemon replays them onto the same base
//! and continues bit-identically: same inputs ⇒ same decisions ⇒ same
//! telemetry.
//!
//! Format: one flat JSON object per line, `{"seq":N,"t":T,"job":J,
//! "count":C}`, contiguous `seq`. A `kill -9` can truncate the final
//! line mid-write; [`load`] tolerates exactly that (the dangling suffix
//! is reported, earlier corruption is an error) — a submission whose
//! journal line did not survive was never acknowledged, so dropping it
//! keeps the daemon and its clients consistent.
//!
//! Growth is bounded: each checkpoint cut [`Journal::rotate`]s the file
//! down to the entries a resume still needs (slots at or past the cut,
//! plus the newest entry as the `seq` watermark), preserving original
//! sequence numbers — so a rotated journal starts at a nonzero base and
//! [`load`] only requires contiguity, not a zero origin.

use grefar_obs::json::{parse_object, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One accepted submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Acceptance sequence number (strictly increasing; starts at 0 for
    /// a fresh daemon, survives rotation via the kept suffix).
    pub seq: u64,
    /// The slot the submission was admitted into.
    pub t: u64,
    /// Job class index.
    pub job: usize,
    /// Number of jobs.
    pub count: f64,
}

impl JournalEntry {
    fn to_line(self) -> String {
        format!(
            "{{\"seq\":{},\"t\":{},\"job\":{},\"count\":{}}}",
            self.seq, self.t, self.job, self.count
        )
    }
}

/// The result of loading a journal: the surviving entries, plus the size
/// of a truncated trailing fragment (0 when the file ended cleanly).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecovery {
    /// All fully-written entries, in acceptance order.
    pub entries: Vec<JournalEntry>,
    /// Bytes of a dangling, never-acknowledged trailing fragment.
    pub dropped_bytes: u64,
}

/// An append-only journal writer. Every [`append`](Journal::append) is
/// durable (`fsync`) before it returns — the acknowledgement barrier.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal for appending.
    ///
    /// # Errors
    /// Any I/O error opening the file.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably appends one entry: write, then `fsync`. Only after this
    /// returns may the submission be acknowledged.
    ///
    /// # Errors
    /// Any I/O error; the caller must then reject the submission.
    pub fn append(&mut self, entry: JournalEntry) -> std::io::Result<()> {
        let mut line = entry.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// Atomically rewrites the journal to hold only `keep` (entries a
    /// resume still needs), bounding growth at checkpoint boundaries.
    /// Same durability dance as the checkpoint writer: serialize to
    /// `<path>.rot`, `fsync` it, rename over the journal, `fsync` the
    /// directory, then reopen the append handle on the new file. A crash
    /// at any byte leaves either the complete old journal or the complete
    /// new one — [`load`] accepts both because `keep` preserves original
    /// `seq` numbers (contiguous from a now-nonzero base).
    ///
    /// # Errors
    /// Any I/O error. Callers treat this as fatal (the state keeper
    /// panics, the supervisor restarts it): the on-disk journal is valid
    /// at every byte of the sequence, but the append handle may no longer
    /// match the live file, so continuing could silently drop the
    /// durability barrier.
    pub fn rotate(&mut self, keep: &[JournalEntry]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("rot");
        let mut text = String::new();
        for entry in keep {
            text.push_str(&entry.to_line());
            text.push('\n');
        }
        {
            let mut file = File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                File::open(parent)?.sync_all()?;
            }
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// Loads a journal, tolerating a truncated final line (see module docs).
/// A missing file is an empty journal.
///
/// # Errors
/// I/O errors, corruption anywhere except the trailing fragment, or a
/// non-monotonic `seq` sequence.
pub fn load(path: &Path) -> Result<JournalRecovery, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalRecovery {
                entries: Vec::new(),
                dropped_bytes: 0,
            })
        }
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let mut entries: Vec<JournalEntry> = Vec::new();
    let mut consumed = 0usize;
    for chunk in text.split_inclusive('\n') {
        let complete = chunk.ends_with('\n');
        let line = chunk.trim_end_matches('\n');
        if line.trim().is_empty() {
            consumed += chunk.len();
            continue;
        }
        match parse_entry(line) {
            Ok(entry) => {
                // Contiguous from the first entry's seq. The base is 0
                // for a virgin journal and the original (nonzero) seq of
                // the oldest kept entry after a rotation.
                if let Some(prev) = entries.last() {
                    let expected: u64 = prev.seq + 1;
                    if entry.seq != expected {
                        return Err(format!(
                            "journal {}: seq {} where {expected} was expected",
                            path.display(),
                            entry.seq
                        ));
                    }
                }
                if !complete {
                    // A well-formed final line that merely lost its
                    // newline: the write made it to disk, keep it.
                    entries.push(entry);
                    consumed += chunk.len();
                    break;
                }
                entries.push(entry);
                consumed += chunk.len();
            }
            Err(e) => {
                if complete && text[consumed + chunk.len()..].trim().is_empty() {
                    // Corrupt *last* record (e.g. torn write padded by the
                    // filesystem): drop it like a truncated one.
                    break;
                }
                if complete {
                    return Err(format!(
                        "journal {}: corrupt entry {:?}: {e}",
                        path.display(),
                        line
                    ));
                }
                break; // truncated trailing fragment
            }
        }
    }
    Ok(JournalRecovery {
        dropped_bytes: (text.len() - consumed) as u64,
        entries,
    })
}

fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let object = parse_object(line)?;
    let field = |key: &str| -> Result<f64, String> {
        object
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))
    };
    let seq = field("seq")?;
    let t = field("t")?;
    let job = field("job")?;
    let count = field("count")?;
    // verify: allow(float-eq): fract() != 0 is the exact JSON-integer test
    if seq < 0.0 || seq.fract() != 0.0 || t < 0.0 || t.fract() != 0.0 {
        return Err("seq/t must be non-negative integers".to_string());
    }
    // verify: allow(float-eq): fract() != 0 is the exact JSON-integer test
    if job < 0.0 || job.fract() != 0.0 {
        return Err("job must be a non-negative integer".to_string());
    }
    // Whole jobs only, mirroring the wire protocol: the job tracker follows
    // discrete jobs through the fluid queues, and a fractional replay would
    // desynchronize the two.
    // verify: allow(float-eq): fract() == 0 is the exact integrality test
    if !(count.is_finite() && count > 0.0 && count.fract() == 0.0) {
        return Err("count must be a positive whole number of jobs".to_string());
    }
    Ok(JournalEntry {
        seq: seq as u64,
        t: t as u64,
        job: job as usize,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, t: u64, job: usize, count: f64) -> JournalEntry {
        JournalEntry { seq, t, job, count }
    }

    #[test]
    fn append_then_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("grefar-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let _ = std::fs::remove_file(&path);
        let written = vec![
            entry(0, 3, 1, 2.0),
            entry(1, 3, 0, 4.0),
            entry(2, 5, 2, 3.0),
        ];
        {
            let mut journal = Journal::open(&path).unwrap();
            for e in &written {
                journal.append(*e).unwrap();
            }
        }
        let recovered = load(&path).unwrap();
        assert_eq!(recovered.entries, written);
        assert_eq!(recovered.dropped_bytes, 0);
        // Re-open and extend: still append-only.
        Journal::open(&path)
            .unwrap()
            .append(entry(3, 6, 0, 1.0))
            .unwrap();
        assert_eq!(load(&path).unwrap().entries.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let recovery = load(Path::new("/nonexistent/grefar.journal")).unwrap();
        assert!(recovery.entries.is_empty());
        assert_eq!(recovery.dropped_bytes, 0);
    }

    #[test]
    fn truncated_tail_is_dropped_at_every_offset() {
        let full = format!(
            "{}\n{}\n",
            entry(0, 1, 0, 2.0).to_line(),
            entry(1, 2, 1, 3.0).to_line()
        );
        let first_len = entry(0, 1, 0, 2.0).to_line().len() + 1;
        let dir = std::env::temp_dir().join(format!("grefar-journal-cut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.journal");
        for cut in first_len..full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let recovered = load(&path).unwrap();
            if cut == full.len() - 1 {
                // Only the final newline is missing: the entry survived.
                assert_eq!(recovered.entries.len(), 2, "cut={cut}");
                assert_eq!(recovered.dropped_bytes, 0, "cut={cut}");
            } else {
                assert_eq!(recovered.entries.len(), 1, "cut={cut}");
                assert_eq!(
                    recovered.dropped_bytes as usize,
                    cut - first_len,
                    "cut={cut}"
                );
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotation_keeps_a_suffix_with_original_seqs_and_stays_appendable() {
        let dir = std::env::temp_dir().join(format!("grefar-journal-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.journal");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path).unwrap();
        let written = vec![
            entry(0, 1, 0, 1.0),
            entry(1, 2, 1, 2.0),
            entry(2, 5, 0, 3.0),
            entry(3, 6, 1, 4.0),
        ];
        for e in &written {
            journal.append(*e).unwrap();
        }
        // Checkpoint at slot 5: entries for slots >= 5 survive.
        journal.rotate(&written[2..]).unwrap();
        let recovered = load(&path).unwrap();
        assert_eq!(recovered.entries, written[2..]);
        assert_eq!(recovered.dropped_bytes, 0);
        // The reopened handle appends to the rotated file, not a stale fd.
        journal.append(entry(4, 7, 0, 1.0)).unwrap();
        assert_eq!(load(&path).unwrap().entries.len(), 3);
        // Rotating to a single watermark entry still loads.
        journal.rotate(&[entry(4, 7, 0, 1.0)]).unwrap();
        let recovered = load(&path).unwrap();
        assert_eq!(recovered.entries, vec![entry(4, 7, 0, 1.0)]);
        // A gap after the base is still corruption.
        journal.append(entry(9, 8, 0, 1.0)).unwrap();
        assert!(load(&path).unwrap_err().contains("seq"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_rotation_leaves_a_loadable_journal_at_every_byte() {
        // A crash can strike anywhere inside rotate(): while the `.rot`
        // temp file is being written (the journal itself is untouched),
        // or after the rename (the journal is the complete new file).
        // Model both at byte granularity.
        let dir = std::env::temp_dir().join(format!("grefar-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let old = vec![
            entry(0, 1, 0, 1.0),
            entry(1, 4, 1, 2.0),
            entry(2, 6, 0, 3.0),
        ];
        let keep = &old[1..];
        let old_text: String = old.iter().map(|e| format!("{}\n", e.to_line())).collect();
        let new_text: String = keep.iter().map(|e| format!("{}\n", e.to_line())).collect();

        // Phase 1: temp-file write torn at every prefix. The journal file
        // itself must load untouched.
        let tmp = path.with_extension("rot");
        for cut in 0..=new_text.len() {
            std::fs::write(&path, &old_text).unwrap();
            std::fs::write(&tmp, &new_text.as_bytes()[..cut]).unwrap();
            let recovered = load(&path).unwrap();
            assert_eq!(recovered.entries, old, "tmp cut at {cut}");
        }
        let _ = std::fs::remove_file(&tmp);

        // Phase 2: rename landed; the new journal is complete and starts
        // at a nonzero seq base. A torn *append* after the rotation is
        // still tolerated like any torn tail.
        std::fs::write(&path, &new_text).unwrap();
        let recovered = load(&path).unwrap();
        assert_eq!(recovered.entries, keep);
        let next = entry(3, 7, 1, 1.0).to_line();
        for cut in 1..next.len() {
            std::fs::write(&path, format!("{new_text}{}", &next[..cut])).unwrap();
            let recovered = load(&path).unwrap();
            assert_eq!(recovered.entries, keep, "append cut at {cut}");
            assert_eq!(recovered.dropped_bytes as usize, cut, "append cut at {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let dir = std::env::temp_dir().join(format!("grefar-journal-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.journal");
        std::fs::write(
            &path,
            format!("garbage\n{}\n", entry(0, 1, 0, 1.0).to_line()),
        )
        .unwrap();
        assert!(load(&path).unwrap_err().contains("corrupt"));
        // Non-monotonic sequence numbers are corruption too.
        std::fs::write(
            &path,
            format!(
                "{}\n{}\n",
                entry(0, 1, 0, 1.0).to_line(),
                entry(5, 2, 0, 1.0).to_line()
            ),
        )
        .unwrap();
        assert!(load(&path).unwrap_err().contains("seq"));
        std::fs::remove_file(&path).unwrap();
    }
}
