//! `grefar-served` — a supervised, crash-safe scheduling daemon around the
//! GreFar engine.
//!
//! The experiment binaries run Algorithm 1 as a batch loop; this crate
//! runs it as a *service*: a typed actor system under a supervision tree,
//! accepting live job submissions over TCP while the slot loop advances on
//! a configurable clock.
//!
//! ## Actors
//!
//! * **admission** ([`admission`]) — the TCP front door: line-delimited
//!   JSON requests ([`protocol`]), bounded forwarding to the state keeper
//!   (backpressure surfaces as typed `queue_full` rejections), reply
//!   routing by connection id.
//! * **state keeper** ([`state_keeper`]) — sole owner of Θ(t) and the
//!   [`SteppedRun`](grefar_sim::SteppedRun) engine; drives the per-slot
//!   GreFar decision on a manual/turbo/real-time clock, journals accepted
//!   submissions *before* acking ([`journal`]), and cuts checkpoints on a
//!   slot cadence.
//! * **feeds** ([`feeds`]) — a shadow replica of the ingest layer's
//!   breakers, folded into gauges.
//! * **telemetry** ([`telemetry`]) — the single writer of the JSONL event
//!   stream, the metrics fold, and the alert engine.
//!
//! ## Crash safety
//!
//! The supervisor ([`supervisor`]) restarts a panicked actor with
//! exponential backoff under a restart-intensity budget, rebuilding it
//! from shared state: the engine is reconstructed from the frozen base
//! inputs + admission journal + last checkpoint ([`engine`]), then caught
//! up silently to the telemetry watermark, so the event stream carries
//! every slot exactly once. A `kill -9` of the whole process loses nothing
//! acknowledged: restart with `--resume` and the merged stream is
//! diff-clean against an uninterrupted run.
//!
//! Deterministic chaos ([`chaos`]) extends the `grefar_faults` DSL with
//! `kill:actor=…` / `stall:actor=…,ms=…` / `sockdrop:…` clauses keyed to
//! slots, making supervision behaviour exactly reproducible.
//!
//! The one `unsafe` in the workspace lives in [`signal`] (two libc
//! `signal(2)` registrations); everything else is `#![deny(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod engine;
pub mod feeds;
pub mod journal;
pub mod port;
pub mod protocol;
pub mod signal;
pub mod state_keeper;
pub mod supervisor;
pub mod telemetry;

pub use chaos::ChaosPlan;
pub use engine::{EngineSpec, SchedulerSpec};
pub use journal::{Journal, JournalEntry};
pub use port::Swap;
pub use state_keeper::{Clock, SkExit};
pub use supervisor::{run_daemon, DaemonOptions, RestartPolicy};
pub use telemetry::{truncate_for_resume, TruncateOutcome};
