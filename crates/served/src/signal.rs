//! Minimal async-signal-safe `SIGTERM`/`SIGINT` latching.
//!
//! The workspace is zero-dependency, so there is no `libc` or `signal-hook`
//! to lean on. This module makes the single unavoidable `unsafe` call of
//! the whole workspace — installing a C signal handler via the libc
//! `signal(2)` wrapper every Unix target links anyway — and confines it to
//! one function. The handler itself does the only thing an async-signal-
//! safe handler may do: store into process-global atomics.
//!
//! Consumers poll [`triggered`] at their natural loop boundaries (the
//! daemon's supervision tick, a simulation's per-slot telemetry) and run
//! their own orderly shutdown: flush sinks, write the final checkpoint,
//! exit. Nothing here ever terminates the process.
//!
//! On non-Unix targets [`install`] is a no-op and [`triggered`] stays
//! `false` forever: the default host behavior (immediate termination) is
//! unchanged.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// `SIGINT` on every Unix.
pub const SIGINT: i32 = 2;
/// `SIGTERM` on every Unix.
pub const SIGTERM: i32 = 15;

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// Installs the latching handler for `SIGTERM` and `SIGINT`. Idempotent;
/// a no-op on non-Unix targets. The first signal latches; a second signal
/// of the same kind falls back to the default action (immediate
/// termination), so a consumer that polls too coarsely can still be
/// killed by an impatient operator.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// The last signal number received (`0` when none). Useful for the
/// conventional `128 + signo` exit status.
pub fn last_signal() -> i32 {
    LAST_SIGNAL.load(Ordering::SeqCst)
}

/// Clears the latch — for tests, and for daemons that treat the *second*
/// signal differently from the first.
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
    LAST_SIGNAL.store(0, Ordering::SeqCst);
}

/// Latches a signal as if it had been delivered — lets tests and in-process
/// harnesses exercise the drain path without raising a real signal.
pub fn raise_for_test(signo: i32) {
    LAST_SIGNAL.store(signo, Ordering::SeqCst);
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, LAST_SIGNAL, SIGINT, SIGTERM, TRIGGERED};

    extern "C" fn on_signal(signo: i32) {
        // Async-signal-safe: two atomic stores plus `signal(2)` (itself on
        // the POSIX async-signal-safe list). Restoring the default action
        // makes a *second* signal of the same kind terminate immediately —
        // graceful on the first Ctrl-C, forceful on an impatient repeat.
        LAST_SIGNAL.store(signo, Ordering::SeqCst);
        TRIGGERED.store(true, Ordering::SeqCst);
        unsafe {
            signal(signo, 0); // SIG_DFL
        }
    }

    extern "C" {
        // The libc `signal(2)` wrapper; `sighandler_t` is a plain function
        // pointer, passed here as a word-sized integer so the declaration
        // stays libc-version-agnostic.
        fn signal(signo: i32, handler: usize) -> usize;
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // Installing a handler is infallible for these two catchable
        // signals; the returned previous handler is deliberately ignored.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_sets_and_resets() {
        install();
        reset();
        assert!(!triggered());
        assert_eq!(last_signal(), 0);
        raise_for_test(SIGTERM);
        assert!(triggered());
        assert_eq!(last_signal(), SIGTERM);
        reset();
        assert!(!triggered());
    }
}
