//! Building (and re-building) the scheduling engine.
//!
//! The supervisor holds an [`EngineSpec`] — everything needed to
//! reconstruct the exact simulation a crashed state keeper was driving:
//! the system configuration, the frozen base inputs (regenerated from the
//! seed), the scheduler recipe, and the fault/feed overlays. Rebuilding is
//! the daemon's one recovery primitive: apply the fault plan, replay the
//! admission journal onto the faulted inputs (the same order live
//! submissions took), then resume from the last checkpoint.

use crate::journal::JournalEntry;
use grefar_core::{Always, GreFar, GreFarParams, LocalOnly, PriceGreedy, Scheduler};
use grefar_faults::FaultPlan;
use grefar_ingest::FeedProfile;
use grefar_sim::{Checkpoint, Simulation, SimulationInputs, SteppedRun};
use grefar_types::SystemConfig;

/// Which scheduler the daemon drives (a buildable recipe, since
/// `Box<dyn Scheduler>` cannot be cloned across restarts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerSpec {
    /// The paper's drift-plus-penalty scheduler.
    GreFar {
        /// Cost-delay parameter `V`.
        v: f64,
        /// Fairness weight `β`.
        beta: f64,
    },
    /// Run-everything baseline.
    Always,
    /// Local-only baseline.
    LocalOnly,
    /// Cheapest-price greedy baseline.
    PriceGreedy,
}

impl SchedulerSpec {
    /// Parses the `--scheduler` value (`mpc` is deliberately absent: the
    /// lookahead planner snapshots the inputs at build time and would not
    /// see live admissions).
    pub fn parse(name: &str, v: f64, beta: f64) -> Result<Self, String> {
        match name {
            "grefar" => Ok(SchedulerSpec::GreFar { v, beta }),
            "always" => Ok(SchedulerSpec::Always),
            "local-only" => Ok(SchedulerSpec::LocalOnly),
            "price-greedy" => Ok(SchedulerSpec::PriceGreedy),
            other => Err(format!(
                "unknown scheduler {other:?} (daemon supports grefar, always, local-only, price-greedy)"
            )),
        }
    }

    /// The GreFar parameters, when this is a GreFar spec (the theory-bound
    /// certificate only speaks about GreFar runs).
    pub fn grefar_params(&self) -> Option<(f64, f64)> {
        match *self {
            SchedulerSpec::GreFar { v, beta } => Some((v, beta)),
            _ => None,
        }
    }

    fn build(&self, config: &SystemConfig) -> Result<Box<dyn Scheduler>, String> {
        Ok(match *self {
            SchedulerSpec::GreFar { v, beta } => Box::new(
                GreFar::new(config, GreFarParams::new(v, beta))
                    .map_err(|e| format!("invalid GreFar parameters: {e}"))?,
            ),
            SchedulerSpec::Always => Box::new(Always::new(config)),
            SchedulerSpec::LocalOnly => Box::new(LocalOnly::new(config)),
            SchedulerSpec::PriceGreedy => Box::new(PriceGreedy::new(config)),
        })
    }
}

/// The full recipe for one scheduling engine (see module docs).
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// The system configuration Θ(t) lives in.
    pub config: SystemConfig,
    /// Frozen pre-fault inputs (regenerated from the seed).
    pub base_inputs: SimulationInputs,
    /// The scheduler recipe.
    pub scheduler: SchedulerSpec,
    /// Per-slot admission cap forwarded to the engine.
    pub admission_cap: Option<f64>,
    /// Data-fault / solver-squeeze overlay (`--faults`; chaos clauses
    /// live in the separate `--chaos` plan).
    pub faults: Option<FaultPlan>,
    /// Unreliable-feed overlay (`--feeds`).
    pub feeds: Option<FeedProfile>,
    /// The hard per-slot deadline budget in Frank–Wolfe iterations; the
    /// engine degrades through its fallback chain instead of overrunning.
    pub deadline_iters: Option<usize>,
}

impl EngineSpec {
    /// Builds a steppable run: faults applied, `entries` replayed onto the
    /// faulted inputs, then either a fresh run or a checkpoint resume.
    ///
    /// # Errors
    /// Invalid scheduler parameters, a plan/profile that does not fit the
    /// configuration, journal entries outside the horizon or job range, or
    /// a checkpoint that disagrees with this spec.
    pub fn build(
        &self,
        entries: &[JournalEntry],
        checkpoint: Option<Checkpoint>,
    ) -> Result<SteppedRun, String> {
        let scheduler = self.scheduler.build(&self.config)?;
        let mut sim = Simulation::new(self.config.clone(), self.base_inputs.clone(), scheduler);
        if let Some(cap) = self.admission_cap {
            sim = sim.with_admission_cap(cap);
        }
        if let Some(plan) = &self.faults {
            sim = sim
                .with_fault_plan(plan.clone())
                .map_err(|e| format!("--faults: {e}"))?;
        }
        if let Some(profile) = &self.feeds {
            sim = sim
                .with_feed_profile(profile.clone())
                .map_err(|e| format!("--feeds: {e}"))?;
        }
        let horizon = self.base_inputs.horizon() as u64;
        let classes = self.config.num_job_classes();
        for entry in entries {
            if entry.t >= horizon {
                return Err(format!(
                    "journal entry seq {} targets slot {} past the horizon {horizon}",
                    entry.seq, entry.t
                ));
            }
            if entry.job >= classes {
                return Err(format!(
                    "journal entry seq {} targets job class {} of {classes}",
                    entry.seq, entry.job
                ));
            }
            sim.inject_arrivals(entry.t as usize, entry.job, entry.count);
        }
        let mut run = match checkpoint {
            Some(ck) => SteppedRun::resume(sim, ck).map_err(|e| format!("resume: {e}"))?,
            None => SteppedRun::new(sim),
        };
        run.set_deadline_budget(self.deadline_iters);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalEntry;
    use grefar_obs::NullObserver;
    use grefar_sim::PaperScenario;

    fn spec() -> EngineSpec {
        let scenario = PaperScenario::default().with_seed(11);
        let config = scenario.config().clone();
        let base_inputs = scenario.into_inputs(24);
        EngineSpec {
            config,
            base_inputs,
            scheduler: SchedulerSpec::GreFar { v: 7.5, beta: 0.0 },
            admission_cap: None,
            faults: None,
            feeds: None,
            deadline_iters: None,
        }
    }

    #[test]
    fn rebuild_with_journal_matches_live_injection() {
        let spec = spec();
        let entries = vec![
            JournalEntry {
                seq: 0,
                t: 3,
                job: 1,
                count: 2.0,
            },
            JournalEntry {
                seq: 1,
                t: 5,
                job: 0,
                count: 3.0,
            },
        ];

        // Live path: fresh run, submissions injected as they arrive.
        let mut live = spec.build(&[], None).unwrap();
        let mut null = NullObserver;
        for _ in 0..3 {
            live.step(&mut null);
        }
        live.inject_arrivals(3, 1, 2.0).unwrap();
        for _ in 3..5 {
            live.step(&mut null);
        }
        live.inject_arrivals(5, 0, 3.0).unwrap();
        while live.step(&mut null) {}

        // Replay path: everything from the journal, up front.
        let mut replayed = spec.build(&entries, None).unwrap();
        while replayed.step(&mut null) {}

        let live_report = live.finish(&mut null);
        let replay_report = replayed.finish(&mut null);
        assert_eq!(
            live_report.average_energy_cost(),
            replay_report.average_energy_cost()
        );
        assert_eq!(
            live_report.average_fairness(),
            replay_report.average_fairness()
        );
    }

    #[test]
    fn journal_entries_are_validated_against_the_spec() {
        let spec = spec();
        let past_horizon = vec![JournalEntry {
            seq: 0,
            t: 99,
            job: 0,
            count: 1.0,
        }];
        let err = spec.build(&past_horizon, None).err().expect("rejected");
        assert!(err.contains("horizon"), "{err}");
        let bad_class = vec![JournalEntry {
            seq: 0,
            t: 1,
            job: 99,
            count: 1.0,
        }];
        let err = spec.build(&bad_class, None).err().expect("rejected");
        assert!(err.contains("job class"), "{err}");
    }

    #[test]
    fn scheduler_spec_parses() {
        assert_eq!(
            SchedulerSpec::parse("grefar", 2.0, 1.0).unwrap(),
            SchedulerSpec::GreFar { v: 2.0, beta: 1.0 }
        );
        assert_eq!(
            SchedulerSpec::parse("always", 0.0, 0.0).unwrap(),
            SchedulerSpec::Always
        );
        assert!(SchedulerSpec::parse("mpc", 0.0, 0.0).is_err());
    }
}
