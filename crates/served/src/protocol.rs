//! The daemon's wire protocol: line-delimited flat JSON objects, one
//! request per line, one response line per request, in order.
//!
//! Requests (`op` selects the verb):
//!
//! ```text
//! {"op":"submit","job":0,"count":2}     admit 2 jobs of class 0
//! {"op":"advance"}                      execute one slot (manual clock)
//! {"op":"advance","slots":5}            execute five slots
//! {"op":"status"}                       current slot, queue, counters
//! {"op":"drain"}                        graceful shutdown
//! ```
//!
//! Responses always carry `"ok"`; rejections add a machine-readable
//! `"error"` reason (see [`RejectReason`]) and a human `"detail"`:
//!
//! ```text
//! {"ok":true,"op":"submit","seq":3,"slot":7,"job":0,"count":2}
//! {"ok":false,"op":"submit","error":"queue_full","detail":"..."}
//! ```
//!
//! The flat shape is deliberate: it reuses the workspace's own
//! [`grefar_obs::json`] parser (the same one the telemetry tooling trusts)
//! instead of growing a second, nested JSON dialect.

use grefar_obs::json::{parse_object, JsonValue};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit `count` jobs of class `job` into the next unexecuted slot.
    Submit {
        /// Job class index.
        job: usize,
        /// Number of jobs. Must be a whole number: the simulator's job
        /// tracker follows discrete jobs through the fluid queues, and
        /// fractional admissions would desynchronize the two.
        count: f64,
    },
    /// Execute `slots` slots now (manual clock only).
    Advance {
        /// How many slots to execute.
        slots: u64,
    },
    /// Report the daemon's current position and counters.
    Status,
    /// Stop admitting, finish the current slot, flush everything and exit.
    Drain,
}

/// Machine-readable rejection reasons (the `"error"` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The line was not a valid flat JSON object.
    Parse,
    /// The object was valid JSON but not a valid request.
    BadRequest,
    /// The admission queue is full — backpressure shed the request.
    QueueFull,
    /// The daemon is draining and no longer admits work.
    Draining,
    /// The state keeper is (re)starting; retry shortly.
    Unavailable,
    /// The submission itself is invalid (job class range, horizon, count).
    Invalid,
    /// The request line exceeded the wire-protocol length cap. The rest
    /// of the oversized line is discarded (through its terminating
    /// newline); well-framed requests after it proceed normally.
    LineTooLong,
}

impl RejectReason {
    /// The wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::Parse => "parse",
            RejectReason::BadRequest => "bad_request",
            RejectReason::QueueFull => "queue_full",
            RejectReason::Draining => "draining",
            RejectReason::Unavailable => "unavailable",
            RejectReason::Invalid => "invalid",
            RejectReason::LineTooLong => "line_too_long",
        }
    }
}

/// Parses one request line.
///
/// # Errors
/// `(reason, detail)` suitable for [`reject`] — `Parse` for malformed
/// JSON, `BadRequest` for a well-formed object that is not a request.
pub fn parse_request(line: &str) -> Result<Request, (RejectReason, String)> {
    let object =
        parse_object(line.trim()).map_err(|e| (RejectReason::Parse, format!("bad json: {e}")))?;
    let op = match object.get("op").and_then(JsonValue::as_str) {
        Some(op) => op,
        None => {
            return Err((
                RejectReason::BadRequest,
                "missing string field \"op\"".to_string(),
            ))
        }
    };
    let number = |key: &str| object.get(key).and_then(JsonValue::as_f64);
    match op {
        "submit" => {
            let job = match number("job") {
                // verify: allow(float-eq): fract() == 0 is the exact JSON-integer test
                Some(v) if v >= 0.0 && v.fract() == 0.0 => v as usize,
                Some(_) => {
                    return Err((
                        RejectReason::BadRequest,
                        "\"job\" must be a non-negative integer".to_string(),
                    ))
                }
                None => {
                    return Err((
                        RejectReason::BadRequest,
                        "submit requires a numeric \"job\"".to_string(),
                    ))
                }
            };
            let count = match number("count") {
                None => 1.0,
                // verify: allow(float-eq): fract() == 0 is the exact integrality test
                Some(v) if v.is_finite() && v > 0.0 && v.fract() == 0.0 => v,
                Some(_) => {
                    return Err((
                        RejectReason::BadRequest,
                        "\"count\" must be a positive whole number of jobs".to_string(),
                    ))
                }
            };
            Ok(Request::Submit { job, count })
        }
        "advance" => {
            let slots = match number("slots") {
                None => 1,
                // verify: allow(float-eq): fract() == 0 is the exact JSON-integer test
                Some(v) if v >= 1.0 && v.fract() == 0.0 => v as u64,
                Some(_) => {
                    return Err((
                        RejectReason::BadRequest,
                        "\"slots\" must be a positive integer".to_string(),
                    ))
                }
            };
            Ok(Request::Advance { slots })
        }
        "status" => Ok(Request::Status),
        "drain" => Ok(Request::Drain),
        other => Err((
            RejectReason::BadRequest,
            format!("unknown op {other:?} (expected submit/advance/status/drain)"),
        )),
    }
}

/// Escapes a string for embedding in a JSON response line.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The acceptance response for a submission: its journal sequence number
/// and the slot it will arrive in.
pub fn accept(seq: u64, slot: u64, job: usize, count: f64) -> String {
    format!("{{\"ok\":true,\"op\":\"submit\",\"seq\":{seq},\"slot\":{slot},\"job\":{job},\"count\":{count}}}")
}

/// A rejection response for any verb.
pub fn reject(op: &str, reason: RejectReason, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"op\":\"{}\",\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(op),
        reason.as_str(),
        escape(detail)
    )
}

/// The response to a completed `advance`.
pub fn advanced(slot: u64, done: bool) -> String {
    format!("{{\"ok\":true,\"op\":\"advance\",\"slot\":{slot},\"done\":{done}}}")
}

/// The response to `status`.
#[allow(clippy::too_many_arguments)]
pub fn status(
    slot: u64,
    horizon: u64,
    queue: f64,
    admitted: u64,
    rejected: u64,
    draining: bool,
) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"status\",\"slot\":{slot},\"horizon\":{horizon},\
         \"queue\":{queue},\"admitted\":{admitted},\"rejected\":{rejected},\
         \"draining\":{draining}}}"
    )
}

/// The acknowledgement of a `drain` request.
pub fn draining() -> String {
    "{\"ok\":true,\"op\":\"drain\",\"draining\":true}".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"job\":2,\"count\":3}"),
            Ok(Request::Submit { job: 2, count: 3.0 })
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"job\":0}"),
            Ok(Request::Submit { job: 0, count: 1.0 })
        );
        assert_eq!(
            parse_request(" {\"op\":\"advance\",\"slots\":3} "),
            Ok(Request::Advance { slots: 3 })
        );
        assert_eq!(
            parse_request("{\"op\":\"advance\"}"),
            Ok(Request::Advance { slots: 1 })
        );
        assert_eq!(parse_request("{\"op\":\"status\"}"), Ok(Request::Status));
        assert_eq!(parse_request("{\"op\":\"drain\"}"), Ok(Request::Drain));
    }

    #[test]
    fn bad_lines_yield_typed_reasons() {
        assert_eq!(
            parse_request("not json").unwrap_err().0,
            RejectReason::Parse
        );
        assert_eq!(
            parse_request("{\"verb\":\"submit\"}").unwrap_err().0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\"}").unwrap_err().0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"job\":-1}")
                .unwrap_err()
                .0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"job\":0,\"count\":0}")
                .unwrap_err()
                .0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"job\":0,\"count\":1.5}")
                .unwrap_err()
                .0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"advance\",\"slots\":0}")
                .unwrap_err()
                .0,
            RejectReason::BadRequest
        );
        assert_eq!(
            parse_request("{\"op\":\"fly\"}").unwrap_err().0,
            RejectReason::BadRequest
        );
    }

    #[test]
    fn responses_are_flat_parsable_json() {
        for line in [
            accept(3, 7, 0, 2.0),
            reject("submit", RejectReason::QueueFull, "queue at 64/64"),
            advanced(8, false),
            status(8, 72, 12.5, 3, 1, false),
            draining(),
        ] {
            let object = parse_object(&line).expect("response parses");
            assert!(object.contains_key("ok"), "{line}");
        }
    }

    #[test]
    fn reject_escapes_detail() {
        let line = reject("submit", RejectReason::Invalid, "bad \"count\"\nline");
        let object = parse_object(&line).expect("escaped response parses");
        assert_eq!(
            object.get("detail").and_then(JsonValue::as_str),
            Some("bad \"count\"\nline")
        );
    }
}
