//! The telemetry actor: the daemon's single writer of observability state.
//!
//! Every other actor forwards [`TelemetryMsg`]s through a
//! [`Swap`]-wrapped channel; this actor owns the JSONL sink, the metrics
//! fold (which powers `/metrics`, `/healthz` and `/alerts`), and the alert
//! engine — the same stack the experiment binaries compose as `ObsPlane`,
//! rebuilt here as a `Send`-able owned pipeline so it can live on (and be
//! restarted onto) its own thread.
//!
//! Crash-safety: the JSONL sink writes each event line straight to the
//! `File` (no userspace buffer), so an in-process chaos kill loses nothing
//! already recorded; a restarted incarnation reopens the file in append
//! mode and [pre-folds](grefar_metrics::MetricsLayer::prefold_jsonl) the
//! prefix so `/healthz` aggregates continue instead of restarting at zero.

use crate::port::Swap;
use grefar_metrics::{AlertRule, MetricsConfig, MetricsLayer, SharedHandle, SnapshotSink};
use grefar_obs::json::{parse_object, JsonValue};
use grefar_obs::{Event, JsonlSink, MemoryObserver, Observer};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// How long a peer waits for the supervisor to stand a dead telemetry
/// actor back up before it drops an event on the floor (and says so).
const RESEND_TIMEOUT: Duration = Duration::from_secs(5);

/// Messages understood by the telemetry actor.
pub enum TelemetryMsg {
    /// A telemetry event (the JSONL + fold path).
    Event(Event),
    /// Counter increment.
    Counter(&'static str, u64),
    /// Gauge set.
    Gauge(&'static str, f64),
    /// Histogram observation.
    Value(&'static str, f64),
    /// Refresh the metrics snapshot / `/healthz` surface now.
    Snapshot,
    /// Chaos: freeze for this many milliseconds.
    Stall(u64),
    /// Chaos: die (the supervisor restarts the actor).
    Poison,
    /// Graceful stop: final snapshot, flush, reply with the wrap-up.
    Stop(Sender<TelemetryFinal>),
}

/// The actor's wrap-up, returned through [`TelemetryMsg::Stop`].
#[derive(Debug, Clone)]
pub struct TelemetryFinal {
    /// Events recorded by this incarnation.
    pub events: u64,
    /// Final health verdict label.
    pub verdict: String,
    /// The aggregate summary table (same shape as the experiment
    /// binaries' telemetry trailer).
    pub summary: String,
}

/// Configuration for one telemetry-actor incarnation.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// JSONL event stream path (`None`: aggregate in memory only).
    pub jsonl: Option<PathBuf>,
    /// Open the stream in append mode and pre-fold its contents (resume
    /// and in-process restart).
    pub append: bool,
    /// Prometheus exposition snapshot file, atomically rewritten.
    pub snapshot: Option<PathBuf>,
    /// Alert rules evaluated against the fold each slot.
    pub rules: Vec<AlertRule>,
    /// The snapshot the HTTP listener serves from.
    pub shared: Option<SharedHandle>,
}

/// The owned bottom of the stack: JSONL file + in-memory aggregation.
struct DaemonSink {
    sink: Option<JsonlSink<File>>,
    memory: MemoryObserver,
}

impl Observer for DaemonSink {
    fn record_event(&mut self, event: Event) {
        if let Some(sink) = &mut self.sink {
            sink.record_event(event.clone());
        }
        self.memory.record_event(event);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.memory.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.memory.set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.memory.record_value(name, value);
    }
}

/// Runs one telemetry-actor incarnation until [`TelemetryMsg::Stop`] or
/// channel closure; panics on [`TelemetryMsg::Poison`] (chaos).
///
/// # Panics
/// On an unopenable JSONL file (a daemon without its event stream is
/// misconfigured, not degraded) and on chaos poison.
pub fn run_telemetry(config: TelemetryConfig, rx: Receiver<TelemetryMsg>) {
    // A bare `File` (no BufWriter): every event line hits the kernel as it
    // is recorded, so an in-process kill loses nothing already streamed.
    let sink = match &config.jsonl {
        None => None,
        Some(path) => {
            let file = if config.append {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
            } else {
                File::create(path)
            };
            let file = file
                .unwrap_or_else(|e| panic!("cannot open telemetry file {}: {e}", path.display()));
            Some(JsonlSink::new(file))
        }
    };
    let metrics_config = MetricsConfig {
        sink: match &config.snapshot {
            None => SnapshotSink::None,
            Some(path) => SnapshotSink::File(path.clone()),
        },
        rules: config.rules.clone(),
        ..MetricsConfig::default()
    };
    let mut layer = MetricsLayer::new(
        DaemonSink {
            sink,
            memory: MemoryObserver::new(),
        },
        metrics_config,
    );
    if let Some(shared) = &config.shared {
        layer = layer.with_shared(shared.clone());
    }
    if config.append {
        if let Some(path) = &config.jsonl {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    if let Err(e) = layer.prefold_jsonl(&text) {
                        eprintln!("warning: metrics prefold of {}: {e}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: cannot re-read {}: {e}", path.display()),
            }
        }
    }

    let mut stop_ack: Option<Sender<TelemetryFinal>> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            TelemetryMsg::Event(event) => layer.record_event(event),
            TelemetryMsg::Counter(name, delta) => layer.add_counter(name, delta),
            TelemetryMsg::Gauge(name, value) => layer.set_gauge(name, value),
            TelemetryMsg::Value(name, value) => layer.record_value(name, value),
            TelemetryMsg::Snapshot => layer.snapshot_now(),
            TelemetryMsg::Stall(ms) => std::thread::sleep(Duration::from_millis(ms)),
            TelemetryMsg::Poison => panic!("chaos kill: telemetry actor"),
            TelemetryMsg::Stop(ack) => {
                stop_ack = Some(ack);
                break;
            }
        }
    }
    let verdict = layer.health().verdict.label().to_string();
    let (mut sink, outcome) = layer.into_parts();
    if let Err(e) = outcome {
        eprintln!("warning: {e}");
    }
    if let Some(file_sink) = &mut sink.sink {
        if let Err(e) = file_sink.flush() {
            eprintln!("warning: telemetry flush: {e}");
        }
        if file_sink.io_errors() > 0 {
            eprintln!(
                "warning: telemetry file had {} write errors",
                file_sink.io_errors()
            );
        }
    }
    if let Some(ack) = stop_ack {
        let _ = ack.send(TelemetryFinal {
            events: sink.memory.total_events(),
            verdict,
            summary: sink.memory.summary(),
        });
    }
}

/// The peers' handle on the (restartable) telemetry actor.
pub type TelemetryPort = Swap<Sender<TelemetryMsg>>;

/// Sends a message, riding out a dead incarnation: a failed send waits for
/// the supervisor to swap in the replacement's channel and retries. After
/// [`RESEND_TIMEOUT`] the message is dropped with a warning — degraded, not
/// wedged.
pub fn send_reliable(port: &TelemetryPort, mut msg: TelemetryMsg) {
    loop {
        let (generation, tx) = port.get();
        match tx.send(msg) {
            Ok(()) => return,
            Err(failed) => {
                msg = failed.0;
                if !port.await_generation_past(generation, RESEND_TIMEOUT) {
                    eprintln!("warning: telemetry actor unavailable; dropping a message");
                    return;
                }
            }
        }
    }
}

/// An [`Observer`] facade over the telemetry port — what the state keeper
/// hands to the simulation engine.
pub struct PortObserver {
    port: TelemetryPort,
}

impl PortObserver {
    /// Wraps the port.
    pub fn new(port: TelemetryPort) -> Self {
        Self { port }
    }
}

impl Observer for PortObserver {
    fn record_event(&mut self, event: Event) {
        send_reliable(&self.port, TelemetryMsg::Event(event));
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        send_reliable(&self.port, TelemetryMsg::Counter(name, delta));
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        send_reliable(&self.port, TelemetryMsg::Gauge(name, value));
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        send_reliable(&self.port, TelemetryMsg::Value(name, value));
    }
}

/// Events the daemon itself appends to the stream (lifecycle, admission,
/// supervision) — they are *not* part of the deterministic slot stream the
/// engine re-emits after a resume, so the resume truncation keeps them.
const DAEMON_STREAM_EVENTS: &[&str] = &[
    "admission.accept",
    "admission.reject",
    "alert.fire",
    "alert.resolve",
    "checkpoint.truncated",
    "checkpoint.write",
    "health.snapshot",
    "profile.span",
    "served.restart",
    "served.start",
    "served.stop",
];

/// What [`truncate_for_resume`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncateOutcome {
    /// Complete lines kept.
    pub kept_lines: u64,
    /// Bytes cut from the tail (0 when the stream was already clean).
    pub dropped_bytes: u64,
}

/// Prepares an interrupted run's telemetry stream for appending: cuts the
/// file back to the last event *before* the engine stream re-enters at
/// `resume_slot`, so the resumed daemon's re-emitted slots extend a clean
/// prefix instead of duplicating their own telemetry. Also cuts a torn
/// trailing line (the `kill -9` case) and anything from `run.end` on (a
/// drained run being resumed).
///
/// A missing file is left missing (nothing to truncate).
///
/// # Errors
/// I/O errors reading or rewriting the file.
pub fn truncate_for_resume(path: &Path, resume_slot: u64) -> Result<TruncateOutcome, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(TruncateOutcome {
                kept_lines: 0,
                dropped_bytes: 0,
            })
        }
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut keep = 0usize;
    let mut kept_lines = 0u64;
    for chunk in text.split_inclusive('\n') {
        if !chunk.ends_with('\n') {
            break; // torn trailing line
        }
        let line = chunk.trim_end_matches('\n');
        if !line.trim().is_empty() {
            let object = match parse_object(line) {
                Ok(object) => object,
                Err(_) => break, // corrupt line: cut here
            };
            let name = object
                .get("event")
                .and_then(JsonValue::as_str)
                .unwrap_or_default();
            if name == "run.end" {
                break;
            }
            let slot = object.get("t").and_then(JsonValue::as_f64);
            if !DAEMON_STREAM_EVENTS.contains(&name) {
                if let Some(t) = slot {
                    if t >= resume_slot as f64 {
                        break;
                    }
                }
            }
        }
        keep += chunk.len();
        kept_lines += 1;
    }
    let dropped = (text.len() - keep) as u64;
    if dropped > 0 {
        std::fs::write(path, &text.as_bytes()[..keep])
            .map_err(|e| format!("cannot rewrite {}: {e}", path.display()))?;
    }
    Ok(TruncateOutcome {
        kept_lines,
        dropped_bytes: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grefar-served-tele-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn actor_streams_events_and_stops_cleanly() {
        let path = tmp("stream.jsonl");
        let _ = std::fs::remove_file(&path);
        let (tx, rx) = mpsc::channel();
        let config = TelemetryConfig {
            jsonl: Some(path.clone()),
            append: false,
            snapshot: None,
            rules: Vec::new(),
            shared: None,
        };
        let handle = std::thread::spawn(move || run_telemetry(config, rx));
        tx.send(TelemetryMsg::Event(
            Event::new("served.start")
                .field("addr", "127.0.0.1:0")
                .field("slot", 0u64)
                .field("clock", "manual"),
        ))
        .unwrap();
        tx.send(TelemetryMsg::Counter("admission.accepted", 2))
            .unwrap();
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(TelemetryMsg::Stop(ack_tx)).unwrap();
        let fin = ack_rx.recv().unwrap();
        handle.join().unwrap();
        // served.start plus the metrics layer's final health.snapshot
        // (the same trailer the batch binaries' streams carry).
        assert_eq!(fin.events, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"served.start\""), "{text}");
        assert!(text.contains("\"event\":\"health.snapshot\""), "{text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn send_reliable_rides_out_a_restart() {
        let (tx1, rx1) = mpsc::channel();
        let port: TelemetryPort = Swap::new(tx1);
        drop(rx1); // incarnation died
        let waiter = {
            let port = port.clone();
            std::thread::spawn(move || {
                send_reliable(&port, TelemetryMsg::Counter("x", 1));
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        let (tx2, rx2) = mpsc::channel();
        port.swap(tx2);
        waiter.join().unwrap();
        match rx2.recv_timeout(Duration::from_secs(1)).unwrap() {
            TelemetryMsg::Counter("x", 1) => {}
            _ => panic!("wrong message after swap"),
        }
    }

    #[test]
    fn truncation_cuts_reemitted_slots_but_keeps_daemon_events() {
        let path = tmp("resume.jsonl");
        let stream = concat!(
            "{\"event\":\"served.start\",\"addr\":\"a\",\"slot\":0,\"clock\":\"manual\"}\n",
            "{\"event\":\"run.start\",\"scheduler\":\"GreFar\",\"horizon\":10,\"data_centers\":3,\"job_classes\":4}\n",
            "{\"event\":\"slot\",\"t\":0,\"queue_central\":0}\n",
            "{\"event\":\"admission.accept\",\"t\":5,\"job\":0,\"count\":1,\"seq\":0}\n",
            "{\"event\":\"checkpoint.write\",\"t\":1}\n",
            "{\"event\":\"slot\",\"t\":1,\"queue_central\":0}\n",
            "{\"event\":\"slot\",\"t\":2,\"queue_c",
        );
        std::fs::write(&path, stream).unwrap();
        // Resume at slot 1: the admission.accept for slot 5 and the
        // checkpoint.write survive (daemon events), slot 1 onward is cut.
        let outcome = truncate_for_resume(&path, 1).unwrap();
        assert_eq!(outcome.kept_lines, 5);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.ends_with("{\"event\":\"checkpoint.write\",\"t\":1}\n"));
        // Idempotent on a clean prefix.
        let again = truncate_for_resume(&path, 1).unwrap();
        assert_eq!(again.dropped_bytes, 0);
        assert_eq!(again.kept_lines, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_cuts_run_end_for_a_drained_stream() {
        let path = tmp("drained.jsonl");
        let stream = concat!(
            "{\"event\":\"run.start\",\"scheduler\":\"GreFar\",\"horizon\":10,\"data_centers\":3,\"job_classes\":4}\n",
            "{\"event\":\"slot\",\"t\":0,\"queue_central\":0}\n",
            "{\"event\":\"run.end\",\"slots\":1,\"completed\":0,\"dropped\":0,\"wall_us\":7}\n",
            "{\"event\":\"served.stop\",\"t\":1,\"reason\":\"drain\"}\n",
        );
        std::fs::write(&path, stream).unwrap();
        let outcome = truncate_for_resume(&path, 1).unwrap();
        assert_eq!(outcome.kept_lines, 2);
        assert!(outcome.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
