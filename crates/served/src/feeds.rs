//! The feeds actor: a shadow monitor of the ingest layer.
//!
//! The engine already runs its own [`FeedHarness`] inside the slot step
//! (that one's `feed.*` events are part of the deterministic slot stream).
//! This actor runs a *replica* harness over the nominal truth, one slot
//! behind the engine, and folds what it sees into gauges — a live view of
//! breaker churn and staleness that survives engine restarts, and a chaos
//! target (`kill:actor=feeds`) that exercises supervision without touching
//! the scheduling path. Its observations go to a private
//! [`MemoryObserver`], never to the JSONL stream, so the event stream
//! stays bit-identical to a batch run's.
//!
//! On restart the supervisor rebuilds the replica and
//! [fast-forwards](FeedHarness::fast_forward) it to the watermark — the
//! same recovery move the checkpoint layer uses for the engine's own
//! harness.

use crate::telemetry::{send_reliable, TelemetryMsg, TelemetryPort};
use grefar_ingest::{FeedHarness, FeedProfile};
use grefar_obs::MemoryObserver;
use grefar_sim::SimulationInputs;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// Messages the feeds actor understands.
pub enum FeedsMsg {
    /// The state keeper finished executing slot `t`.
    SlotDone(u64),
    /// Chaos: freeze for this many milliseconds.
    Stall(u64),
    /// Chaos: die. The supervisor restarts the actor.
    Poison,
    /// Graceful stop; acked so teardown can join deterministically.
    Stop(Sender<()>),
}

/// What one feeds-actor incarnation needs.
pub struct FeedsSetup {
    /// The feed profile (None: no replica harness; the actor still runs
    /// as a supervision/chaos target).
    pub profile: Option<FeedProfile>,
    /// The nominal truth the replica observes (pre-fault inputs).
    pub inputs: SimulationInputs,
    /// Data centers in the system.
    pub num_dcs: usize,
    /// Slots already observed (fast-forward target on restart).
    pub start_upto: u64,
}

/// Runs one feeds-actor incarnation until [`FeedsMsg::Stop`] or channel
/// closure.
///
/// # Panics
/// On [`FeedsMsg::Poison`] (chaos) or a profile that does not fit the
/// system (the supervisor validated it at startup).
pub fn run_feeds(setup: FeedsSetup, tele: TelemetryPort, rx: Receiver<FeedsMsg>) {
    let horizon = setup.inputs.horizon() as u64;
    let mut harness = setup.profile.map(|profile| {
        let mut harness =
            FeedHarness::new(profile, setup.num_dcs).expect("profile validated at startup");
        harness.fast_forward(
            setup.inputs.states(),
            setup.inputs.all_arrivals(),
            setup.start_upto.min(horizon),
        );
        harness
    });
    let mut memory = MemoryObserver::new();
    let mut watermark = setup.start_upto;

    while let Ok(msg) = rx.recv() {
        match msg {
            FeedsMsg::SlotDone(t) => {
                if t < watermark || t >= horizon {
                    continue; // replayed slot after a restart, or trailer
                }
                if let Some(harness) = &mut harness {
                    // Catch up through t (slots can arrive batched).
                    for slot in watermark..=t {
                        let _ = harness.observe(
                            slot,
                            setup.inputs.states(),
                            setup.inputs.all_arrivals(),
                            &mut memory,
                        );
                    }
                    send_reliable(
                        &tele,
                        TelemetryMsg::Gauge(
                            "feeds.monitor.breaker_transitions",
                            memory.event_count("feed.breaker") as f64,
                        ),
                    );
                    send_reliable(
                        &tele,
                        TelemetryMsg::Gauge(
                            "feeds.monitor.stale_slots",
                            memory.event_count("state.stale") as f64,
                        ),
                    );
                }
                watermark = t + 1;
            }
            FeedsMsg::Stall(ms) => std::thread::sleep(Duration::from_millis(ms)),
            FeedsMsg::Poison => panic!("chaos kill: feeds actor"),
            FeedsMsg::Stop(ack) => {
                let _ = ack.send(());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Swap;
    use grefar_sim::PaperScenario;
    use std::sync::mpsc;

    #[test]
    fn monitor_exports_gauges_and_stops() {
        let scenario = PaperScenario::default().with_seed(3);
        let num_dcs = scenario.config().num_data_centers();
        let inputs = scenario.into_inputs(8);
        let profile = FeedProfile::parse("outage:feed=price,dc=0,start=0,end=4; policy:cooldown=1")
            .expect("profile");
        let (tele_tx, tele_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let setup = FeedsSetup {
            profile: Some(profile),
            inputs,
            num_dcs,
            start_upto: 0,
        };
        let handle = std::thread::spawn(move || run_feeds(setup, Swap::new(tele_tx), rx));
        for t in 0..4 {
            tx.send(FeedsMsg::SlotDone(t)).unwrap();
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(FeedsMsg::Stop(ack_tx)).unwrap();
        ack_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
        let gauges: Vec<(&'static str, f64)> = tele_rx
            .try_iter()
            .filter_map(|msg| match msg {
                TelemetryMsg::Gauge(name, value) => Some((name, value)),
                _ => None,
            })
            .collect();
        assert!(
            gauges
                .iter()
                .any(|(name, _)| *name == "feeds.monitor.breaker_transitions"),
            "{gauges:?}"
        );
    }

    #[test]
    fn without_a_profile_the_actor_still_runs() {
        let inputs = PaperScenario::default().with_seed(3).into_inputs(4);
        let (tele_tx, _tele_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let setup = FeedsSetup {
            profile: None,
            inputs,
            num_dcs: 3,
            start_upto: 0,
        };
        let handle = std::thread::spawn(move || run_feeds(setup, Swap::new(tele_tx), rx));
        tx.send(FeedsMsg::SlotDone(0)).unwrap();
        let (ack_tx, ack_rx) = mpsc::channel();
        tx.send(FeedsMsg::Stop(ack_tx)).unwrap();
        ack_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        handle.join().unwrap();
    }
}
