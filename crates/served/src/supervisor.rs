//! The supervision tree: spawn, watch, restart, drain.
//!
//! The supervisor owns every join handle, every swappable port
//! ([`crate::port::Swap`]) and the restart budget. Its loop is the only
//! place actor death is observed: a panicked actor is rebuilt from shared
//! state (journal + checkpoint + telemetry watermark) after an exponential
//! backoff, and more than [`RestartPolicy::max_restarts`] restarts of one
//! actor inside [`RestartPolicy::window`] turns the daemon off (exit 1) —
//! crash loops should page, not spin.
//!
//! Signals: SIGTERM/SIGINT latch a flag ([`crate::signal`]); the
//! supervision loop translates it into a graceful drain — stop admitting,
//! checkpoint, finish the run, flush telemetry — and exits 0.

use crate::admission::{run_admission, ActorCtl, AdmissionConfig};
use crate::chaos::ChaosPlan;
use crate::engine::EngineSpec;
use crate::feeds::{run_feeds, FeedsMsg, FeedsSetup};
use crate::journal::{self, JournalEntry};
use crate::port::Swap;
use crate::signal;
use crate::state_keeper::{run_state_keeper, Clock, SkConfig, SkExit, SkMsg, SkShared};
use crate::telemetry::{
    run_telemetry, send_reliable, truncate_for_resume, TelemetryConfig, TelemetryFinal,
    TelemetryMsg, TelemetryPort,
};
use grefar_metrics::{shared_handle, AlertRule, MetricsServer};
use grefar_obs::Event;
use grefar_sim::Checkpoint;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Restart discipline for one actor.
#[derive(Debug, Clone, Copy)]
pub struct RestartPolicy {
    /// First backoff, doubled per restart inside the window.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Restarts tolerated per actor inside `window` before giving up.
    pub max_restarts: u32,
    /// The sliding restart-intensity window.
    pub window: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            backoff_base_ms: 50,
            backoff_cap_ms: 2000,
            max_restarts: 5,
            window: Duration::from_secs(30),
        }
    }
}

impl RestartPolicy {
    /// The backoff before restart number `in_window` inside the sliding
    /// window (1-based), or `None` once the restart-intensity budget is
    /// blown. Pure: the supervision loop, the soak harness's restart
    /// oracle and the property tests all derive timing from this one
    /// function, so "deterministic per policy" is checkable by calling it
    /// twice.
    pub fn backoff_for(&self, in_window: u32) -> Option<u64> {
        if in_window > self.max_restarts {
            return None;
        }
        let doublings = u32::min(in_window.saturating_sub(1), 20);
        let backoff = self.backoff_base_ms.saturating_mul(1 << doublings);
        Some(backoff.min(self.backoff_cap_ms))
    }
}

struct RestartTracker {
    times: Vec<Instant>,
    total: u64,
    policy: RestartPolicy,
}

impl RestartTracker {
    fn new(policy: RestartPolicy) -> Self {
        Self {
            times: Vec::new(),
            total: 0,
            policy,
        }
    }

    /// Records a restart; returns the backoff to apply, or `None` when the
    /// intensity limit is blown.
    fn note(&mut self) -> Option<u64> {
        // verify: allow(determinism): restart-intensity window is wall-clock by design
        let now = Instant::now();
        let window = self.policy.window;
        self.times.retain(|t| now.duration_since(*t) < window);
        self.times.push(now);
        self.total += 1;
        let in_window = self.times.len() as u32;
        self.policy.backoff_for(in_window)
    }
}

/// Everything `main` resolves from flags before handing over.
pub struct DaemonOptions {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// The slot clock.
    pub clock: Clock,
    /// The engine recipe.
    pub engine: EngineSpec,
    /// Deterministic chaos schedule.
    pub chaos: Option<ChaosPlan>,
    /// Checkpoint journal path.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in slots.
    pub checkpoint_every: u64,
    /// Resume from the checkpoint + admission journal on disk.
    pub resume: bool,
    /// JSONL telemetry stream path.
    pub telemetry: Option<PathBuf>,
    /// Prometheus snapshot file.
    pub metrics_snapshot: Option<PathBuf>,
    /// `/metrics` + `/healthz` + `/alerts` listen address.
    pub metrics_listen: Option<String>,
    /// Alert rules for the telemetry fold.
    pub alerts: Vec<AlertRule>,
    /// File to write the bound address to (test harnesses).
    pub port_file: Option<PathBuf>,
    /// Bound depth of the admission → state-keeper queue.
    pub queue_cap: usize,
    /// Restart discipline.
    pub restart: RestartPolicy,
}

/// The admission journal's on-disk companion to a checkpoint path.
pub fn journal_path_for(checkpoint: &std::path::Path) -> PathBuf {
    let mut os = checkpoint.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Runs the daemon to completion. Returns the process exit code:
/// 0 for a graceful finish (horizon, drain, signal), 1 for a blown
/// restart budget or unrecoverable state.
///
/// # Errors
/// Startup failures (bad listen address, unreadable resume state,
/// invalid engine build) — the caller prints and exits 2.
pub fn run_daemon(options: DaemonOptions) -> Result<i32, String> {
    signal::reset();
    signal::install();

    let journal_path = options.checkpoint.as_deref().map(journal_path_for);

    // --- Resume state -------------------------------------------------
    let mut accepted: Vec<JournalEntry> = Vec::new();
    let mut disk_checkpoint: Option<Checkpoint> = None;
    let mut checkpoint_truncation: Option<(u64, u64)> = None; // kept, dropped
    if options.resume {
        let ck_path = options
            .checkpoint
            .as_ref()
            .ok_or("--resume requires --checkpoint")?;
        let recovery = Checkpoint::load_latest(ck_path)
            .map_err(|e| format!("cannot resume from {}: {e}", ck_path.display()))?;
        if recovery.was_truncated() {
            checkpoint_truncation = Some((recovery.kept_lines, recovery.dropped_bytes));
        }
        disk_checkpoint = Some(recovery.checkpoint);
        if let Some(path) = &journal_path {
            let recovered = journal::load(path)?;
            if recovered.dropped_bytes > 0 {
                eprintln!(
                    "note: dropped {} torn trailing bytes from {}",
                    recovered.dropped_bytes,
                    path.display()
                );
            }
            accepted = recovered.entries;
        }
    }
    let resume_slot = disk_checkpoint.as_ref().map_or(0, |ck| ck.slot);
    if options.resume {
        if let Some(path) = &options.telemetry {
            truncate_for_resume(path, resume_slot)?;
        }
    }

    // --- Telemetry actor ----------------------------------------------
    let shared_metrics = shared_handle();
    let tele_config = TelemetryConfig {
        jsonl: options.telemetry.clone(),
        append: options.resume,
        snapshot: options.metrics_snapshot.clone(),
        rules: options.alerts.clone(),
        shared: Some(shared_metrics.clone()),
    };
    let (tele_tx, tele_rx) = mpsc::channel();
    let tele: TelemetryPort = Swap::new(tele_tx);
    let mut tele_handle = {
        let config = tele_config.clone();
        std::thread::spawn(move || run_telemetry(config, tele_rx))
    };
    if let Some((kept_lines, dropped_bytes)) = checkpoint_truncation {
        send_reliable(
            &tele,
            TelemetryMsg::Event(
                Event::new("checkpoint.truncated")
                    .field("t", resume_slot)
                    .field("kept_lines", kept_lines)
                    .field("dropped_bytes", dropped_bytes),
            ),
        );
    }

    // --- Listener ------------------------------------------------------
    let listener = TcpListener::bind(&options.listen)
        .map_err(|e| format!("cannot bind {}: {e}", options.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("listener address: {e}"))?;
    if let Some(path) = &options.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!("grefar-served listening on {addr}");
    send_reliable(
        &tele,
        TelemetryMsg::Event(
            Event::new("served.start")
                .field("addr", addr.to_string())
                .field("slot", resume_slot)
                .field("clock", options.clock.label()),
        ),
    );

    let metrics_server = match &options.metrics_listen {
        None => None,
        Some(listen) => Some(
            MetricsServer::spawn(listen, shared_metrics.clone())
                .map_err(|e| format!("cannot bind metrics listener {listen}: {e}"))?,
        ),
    };

    // --- Engine --------------------------------------------------------
    let engine = options.engine;
    let run = engine.build(&accepted, disk_checkpoint.clone())?;

    // Theorem 1's certificate, degraded by the feed profile's admissible
    // staleness — same emission (and gating) as the batch CLI. A resumed
    // stream already carries its bounds.
    if !options.resume {
        if let Some((v, beta)) = engine.scheduler.grefar_params() {
            let faulted = match &engine.faults {
                None => engine.base_inputs.clone(),
                Some(plan) => engine
                    .base_inputs
                    .clone()
                    .with_faults(plan)
                    .map_err(|e| format!("--faults: {e}"))?,
            };
            let stale_slots = engine
                .feeds
                .as_ref()
                .map_or(0, |p| p.staleness_bound(engine.config.num_data_centers()));
            let mut obs = crate::telemetry::PortObserver::new(tele.clone());
            grefar_sim::theory_obs::emit_theory_bounds_stale(
                &engine.config,
                &faulted,
                &[(run.scheduler_name(), v, beta)],
                stale_slots,
                &mut obs,
            );
        }
    }

    // --- Shared wiring + actor spawn -----------------------------------
    let (reply_tx, reply_rx) = mpsc::channel();
    let (ctl_tx, ctl_rx) = mpsc::channel();
    let (feeds_tx, feeds_rx) = mpsc::channel();
    let shared = SkShared::new(
        tele.clone(),
        Swap::new(reply_tx),
        Swap::new(ctl_tx),
        Swap::new(feeds_tx),
    );
    shared.emitted_upto.store(resume_slot, Ordering::SeqCst);
    *shared.accepted.lock().expect("fresh lock") = accepted;

    let (sk_tx, sk_rx) = mpsc::sync_channel::<SkMsg>(options.queue_cap.max(1));
    let sk: Swap<SyncSender<SkMsg>> = Swap::new(sk_tx);

    let sk_config = || SkConfig {
        clock: options.clock,
        chaos: options.chaos.clone(),
        checkpoint: options.checkpoint.clone(),
        checkpoint_every: options.checkpoint_every,
        journal: journal_path.clone(),
        num_job_classes: engine.config.num_job_classes(),
    };
    let mut sk_handle = spawn_sk(run, sk_config(), shared.clone(), sk_rx);

    let admission_stop = Arc::new(AtomicBool::new(false));
    let mut admission_incarnation: u64 = 0;
    let mut admission_handle = spawn_admission(
        &listener,
        &sk,
        &shared,
        ctl_rx,
        reply_rx,
        admission_incarnation,
        &admission_stop,
    )?;

    let feeds_setup = || FeedsSetup {
        profile: engine.feeds.clone(),
        inputs: engine.base_inputs.clone(),
        num_dcs: engine.config.num_data_centers(),
        start_upto: shared.emitted_upto.load(Ordering::SeqCst),
    };
    let mut feeds_handle = {
        let tele = tele.clone();
        let setup = feeds_setup();
        std::thread::spawn(move || run_feeds(setup, tele, feeds_rx))
    };

    // --- Supervision loop ----------------------------------------------
    let mut trackers = [
        RestartTracker::new(options.restart), // state keeper
        RestartTracker::new(options.restart), // admission
        RestartTracker::new(options.restart), // feeds
        RestartTracker::new(options.restart), // telemetry
    ];
    let mut drain_requested = false;

    let exit = loop {
        if signal::triggered() && !drain_requested {
            shared.draining.store(true, Ordering::SeqCst);
            let (_, tx) = sk.get();
            // try_send: a wedged/dead keeper must not wedge the supervisor;
            // retried on the next tick until it lands.
            if tx.try_send(SkMsg::Drain { conn: None }).is_ok() {
                drain_requested = true;
            }
        }

        if sk_handle.is_finished() {
            match sk_handle.join() {
                Ok(SkExit::Finished { report, reason }) => break Exit::Clean { report, reason },
                Err(panic) => {
                    let detail = panic_label(panic);
                    match trackers[0].note() {
                        None => {
                            break Exit::GaveUp {
                                actor: "state_keeper",
                                detail,
                            }
                        }
                        Some(backoff_ms) => {
                            std::thread::sleep(Duration::from_millis(backoff_ms));
                            let snapshot: Vec<JournalEntry> = shared
                                .accepted
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .clone();
                            let ck = match reload_checkpoint(options.checkpoint.as_deref()) {
                                Ok(ck) => ck,
                                Err(e) => {
                                    break Exit::GaveUp {
                                        actor: "state_keeper",
                                        detail: e,
                                    }
                                }
                            };
                            let run = match engine.build(&snapshot, ck) {
                                Ok(run) => run,
                                Err(e) => {
                                    break Exit::GaveUp {
                                        actor: "state_keeper",
                                        detail: e,
                                    }
                                }
                            };
                            let (sk_tx, sk_rx) =
                                mpsc::sync_channel::<SkMsg>(options.queue_cap.max(1));
                            sk.swap(sk_tx);
                            // Emit before spawning: the replacement's own
                            // chaos plan must not be able to kill the
                            // telemetry actor ahead of this event.
                            emit_restart(&tele, &shared, "state_keeper", &trackers[0], backoff_ms);
                            sk_handle = spawn_sk(run, sk_config(), shared.clone(), sk_rx);
                            drain_requested = false; // re-deliver the drain if one was pending
                        }
                    }
                }
            }
            continue;
        }

        if admission_handle.is_finished() {
            let outcome = admission_handle.join();
            if admission_stop.load(Ordering::SeqCst) {
                // Teardown path; unreachable here, but keep the handle sane.
                admission_handle = std::thread::spawn(|| ());
                continue;
            }
            let detail = match outcome {
                Ok(()) => "admission loop exited unexpectedly".to_string(),
                Err(panic) => panic_label(panic),
            };
            match trackers[1].note() {
                None => {
                    admission_handle = std::thread::spawn(|| ());
                    break Exit::GaveUp {
                        actor: "admission",
                        detail,
                    };
                }
                Some(backoff_ms) => {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    let (ctl_tx, ctl_rx) = mpsc::channel();
                    let (reply_tx, reply_rx) = mpsc::channel();
                    shared.admission_ctl.swap(ctl_tx);
                    shared.reply.swap(reply_tx);
                    admission_incarnation += 1;
                    emit_restart(&tele, &shared, "admission", &trackers[1], backoff_ms);
                    match spawn_admission(
                        &listener,
                        &sk,
                        &shared,
                        ctl_rx,
                        reply_rx,
                        admission_incarnation,
                        &admission_stop,
                    ) {
                        Ok(handle) => admission_handle = handle,
                        Err(e) => {
                            admission_handle = std::thread::spawn(|| ());
                            break Exit::GaveUp {
                                actor: "admission",
                                detail: e,
                            };
                        }
                    }
                }
            }
            continue;
        }

        if feeds_handle.is_finished() {
            let outcome = feeds_handle.join();
            let detail = match outcome {
                Ok(()) => "feeds loop exited unexpectedly".to_string(),
                Err(panic) => panic_label(panic),
            };
            match trackers[2].note() {
                None => {
                    feeds_handle = std::thread::spawn(|| ());
                    break Exit::GaveUp {
                        actor: "feeds",
                        detail,
                    };
                }
                Some(backoff_ms) => {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    let (feeds_tx, feeds_rx) = mpsc::channel();
                    shared.feeds.swap(feeds_tx);
                    let tele_for_feeds = tele.clone();
                    let setup = feeds_setup();
                    emit_restart(&tele, &shared, "feeds", &trackers[2], backoff_ms);
                    feeds_handle =
                        std::thread::spawn(move || run_feeds(setup, tele_for_feeds, feeds_rx));
                }
            }
            continue;
        }

        if tele_handle.is_finished() {
            let outcome = tele_handle.join();
            let detail = match outcome {
                Ok(()) => "telemetry loop exited unexpectedly".to_string(),
                Err(panic) => panic_label(panic),
            };
            match trackers[3].note() {
                None => {
                    tele_handle = std::thread::spawn(|| ());
                    break Exit::GaveUp {
                        actor: "telemetry",
                        detail,
                    };
                }
                Some(backoff_ms) => {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    let (tele_tx, tele_rx) = mpsc::channel();
                    tele.swap(tele_tx);
                    // The replacement appends and pre-folds whatever the
                    // dead incarnation already wrote.
                    let config = TelemetryConfig {
                        append: tele_config.jsonl.is_some(),
                        ..tele_config.clone()
                    };
                    // Enqueue the restart event into the replacement's
                    // channel before it starts: it lands right after the
                    // pre-fold, ahead of anything the other actors send.
                    emit_restart(&tele, &shared, "telemetry", &trackers[3], backoff_ms);
                    tele_handle = std::thread::spawn(move || run_telemetry(config, tele_rx));
                }
            }
            continue;
        }

        std::thread::sleep(Duration::from_millis(2));
    };

    // --- Teardown -------------------------------------------------------
    let code = match exit {
        Exit::Clean { report, reason } => {
            let final_tele = stop_support_actors(
                &shared,
                &tele,
                &admission_stop,
                admission_handle,
                feeds_handle,
                tele_handle,
            );
            print!("{}", summary(&report, &shared));
            println!("exit             : {reason}");
            if let Some(fin) = final_tele {
                println!(
                    "telemetry        : {} events, health {}",
                    fin.events, fin.verdict
                );
            }
            0
        }
        Exit::GaveUp { actor, detail } => {
            eprintln!("error: {actor} actor failed beyond the restart budget: {detail}");
            send_reliable(
                &tele,
                TelemetryMsg::Event(
                    Event::new("served.stop")
                        .field("t", shared.emitted_upto.load(Ordering::SeqCst))
                        .field("reason", "supervision")
                        .field("admitted", shared.admitted.load(Ordering::SeqCst))
                        .field("rejected", shared.rejected.load(Ordering::SeqCst)),
                ),
            );
            let _ = stop_support_actors(
                &shared,
                &tele,
                &admission_stop,
                admission_handle,
                feeds_handle,
                tele_handle,
            );
            1
        }
    };
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    Ok(code)
}

enum Exit {
    Clean {
        report: Box<grefar_sim::SimulationReport>,
        reason: &'static str,
    },
    GaveUp {
        actor: &'static str,
        detail: String,
    },
}

fn spawn_sk(
    run: grefar_sim::SteppedRun,
    config: SkConfig,
    shared: SkShared,
    rx: Receiver<SkMsg>,
) -> JoinHandle<SkExit> {
    std::thread::spawn(move || run_state_keeper(run, config, shared, rx))
}

fn spawn_admission(
    listener: &TcpListener,
    sk: &Swap<SyncSender<SkMsg>>,
    shared: &SkShared,
    ctl: Receiver<ActorCtl>,
    replies: Receiver<(u64, String)>,
    incarnation: u64,
    stop: &Arc<AtomicBool>,
) -> Result<JoinHandle<()>, String> {
    let listener = listener
        .try_clone()
        .map_err(|e| format!("cannot clone listener: {e}"))?;
    let sk = sk.clone();
    let shared = shared.clone();
    let config = AdmissionConfig {
        conn_base: incarnation << 32,
        stop: Arc::clone(stop),
    };
    Ok(std::thread::spawn(move || {
        run_admission(listener, sk, shared, ctl, replies, config)
    }))
}

fn reload_checkpoint(path: Option<&std::path::Path>) -> Result<Option<Checkpoint>, String> {
    let Some(path) = path else { return Ok(None) };
    if !path.exists() {
        return Ok(None);
    }
    match Checkpoint::load_latest(path) {
        Ok(recovery) => Ok(Some(recovery.checkpoint)),
        Err(e) => Err(format!("cannot reload checkpoint {}: {e}", path.display())),
    }
}

fn emit_restart(
    tele: &TelemetryPort,
    shared: &SkShared,
    actor: &'static str,
    tracker: &RestartTracker,
    backoff_ms: u64,
) {
    eprintln!("note: restarted {actor} actor (restart #{})", tracker.total);
    send_reliable(
        tele,
        TelemetryMsg::Event(
            Event::new("served.restart")
                .field("t", shared.emitted_upto.load(Ordering::SeqCst))
                .field("actor", actor)
                .field("restarts", tracker.total)
                .field("backoff_ms", backoff_ms),
        ),
    );
    send_reliable(tele, TelemetryMsg::Counter("served.restarts", 1));
}

/// Stops admission, feeds and telemetry in order; the final telemetry
/// snapshot lands *after* `served.stop`/`run.end` so the stream ends with
/// the health trailer.
fn stop_support_actors(
    shared: &SkShared,
    tele: &TelemetryPort,
    admission_stop: &Arc<AtomicBool>,
    admission_handle: JoinHandle<()>,
    feeds_handle: JoinHandle<()>,
    tele_handle: JoinHandle<()>,
) -> Option<TelemetryFinal> {
    admission_stop.store(true, Ordering::SeqCst);
    let _ = admission_handle.join();
    let (ack_tx, ack_rx) = mpsc::channel();
    let (_, feeds) = shared.feeds.get();
    if feeds.send(FeedsMsg::Stop(ack_tx)).is_ok() {
        let _ = ack_rx.recv_timeout(Duration::from_secs(5));
    }
    let _ = feeds_handle.join();
    send_reliable(tele, TelemetryMsg::Snapshot);
    let (fin_tx, fin_rx) = mpsc::channel();
    send_reliable(tele, TelemetryMsg::Stop(fin_tx));
    let fin = fin_rx.recv_timeout(Duration::from_secs(10)).ok();
    let _ = tele_handle.join();
    fin
}

fn panic_label(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

/// The same header table the batch CLI prints, plus the daemon's
/// admission tallies.
fn summary(report: &grefar_sim::SimulationReport, shared: &SkShared) -> String {
    let mut out = String::new();
    out.push_str(&format!("scheduler        : {}\n", report.scheduler));
    out.push_str(&format!("hours            : {}\n", report.horizon));
    out.push_str(&format!(
        "avg energy cost  : {:.3}\n",
        report.average_energy_cost()
    ));
    out.push_str(&format!(
        "avg fairness     : {:.4}\n",
        report.average_fairness()
    ));
    out.push_str(&format!(
        "jobs completed   : {}\n",
        report.completions.completed_total
    ));
    out.push_str(&format!(
        "max queue        : {:.0}\n",
        report.max_queue_length()
    ));
    out.push_str(&format!(
        "admitted (live)  : {}\n",
        shared.admitted.load(Ordering::SeqCst)
    ));
    out.push_str(&format!(
        "rejected (live)  : {}\n",
        shared.rejected.load(Ordering::SeqCst)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_tracker_backs_off_then_gives_up() {
        let mut tracker = RestartTracker::new(RestartPolicy {
            backoff_base_ms: 10,
            backoff_cap_ms: 35,
            max_restarts: 3,
            window: Duration::from_secs(30),
        });
        assert_eq!(tracker.note(), Some(10));
        assert_eq!(tracker.note(), Some(20));
        assert_eq!(tracker.note(), Some(35)); // capped
        assert_eq!(tracker.note(), None); // budget blown
        assert_eq!(tracker.total, 4);
    }

    #[test]
    fn journal_path_rides_next_to_the_checkpoint() {
        assert_eq!(
            journal_path_for(std::path::Path::new("/tmp/run.ck")),
            PathBuf::from("/tmp/run.ck.journal")
        );
    }
}
