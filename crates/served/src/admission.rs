//! The admission actor: the daemon's TCP front door.
//!
//! One nonblocking poll loop owns the listener and every client
//! connection. Requests are line-delimited flat JSON
//! ([`crate::protocol`]); each parsed request is forwarded to the state
//! keeper over a **bounded** channel, so a state keeper that falls behind
//! surfaces as typed `queue_full` rejections at the edge — load shedding,
//! not unbounded buffering. Replies route back by connection id.
//!
//! The actor rejects locally (without bothering the state keeper) when the
//! line does not parse, when the daemon is draining, or when the state
//! keeper's current incarnation is dead (`unavailable` — the supervisor is
//! already restarting it, clients should retry).
//!
//! Chaos hooks: `kill:actor=admission` poisons the loop (connections die
//! with it; the supervisor re-arms the listener for the replacement), and
//! an active `sockdrop` window severs every connection on sight.

use crate::port::Swap;
use crate::protocol::{self, parse_request, RejectReason, Request};
use crate::state_keeper::{SkMsg, SkShared};
use crate::telemetry::{send_reliable, TelemetryMsg};
use grefar_obs::Event;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Control messages the supervisor/state keeper can route to this actor.
pub enum ActorCtl {
    /// Chaos: die. The supervisor restarts the actor.
    Poison,
    /// Chaos: freeze the poll loop for this many milliseconds.
    Stall(u64),
}

/// Per-incarnation wiring for the admission actor.
pub struct AdmissionConfig {
    /// High bits for connection ids, unique per incarnation, so replies
    /// can never route to a recycled id.
    pub conn_base: u64,
    /// Graceful-stop flag (the supervisor sets it at teardown).
    pub stop: Arc<AtomicBool>,
}

/// The largest request line the wire protocol accepts, in bytes. Real
/// requests are well under 100 bytes; the cap bounds per-connection
/// memory so a peer streaming an endless unterminated "line" cannot grow
/// `Conn::buf` without limit. An overrun gets one typed `line_too_long`
/// rejection, the rest of the oversized line is discarded through its
/// terminating newline, and the connection then resumes normal framing.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

struct Conn {
    id: u64,
    stream: TcpStream,
    buf: Vec<u8>,
    dead: bool,
    /// Set after a `line_too_long` rejection: incoming bytes are dropped
    /// (never buffered) until the oversized line's newline goes by.
    discarding: bool,
}

/// Runs one admission-actor incarnation until the stop flag is set.
///
/// # Panics
/// On [`ActorCtl::Poison`] (chaos).
pub fn run_admission(
    listener: TcpListener,
    sk: Swap<SyncSender<SkMsg>>,
    shared: SkShared,
    ctl: Receiver<ActorCtl>,
    replies: Receiver<(u64, String)>,
    config: AdmissionConfig,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn = config.conn_base;

    while !config.stop.load(Ordering::SeqCst) {
        while let Ok(msg) = ctl.try_recv() {
            match msg {
                ActorCtl::Poison => panic!("chaos kill: admission actor"),
                ActorCtl::Stall(ms) => std::thread::sleep(Duration::from_millis(ms)),
            }
        }

        if shared.sockdrop.load(Ordering::SeqCst) {
            // Chaos window: sever everything, including fresh accepts.
            conns.clear();
            while let Ok((stream, _)) = listener.accept() {
                drop(stream);
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }

        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    conns.push(Conn {
                        id: next_conn,
                        stream,
                        buf: Vec::new(),
                        dead: false,
                        discarding: false,
                    });
                    next_conn += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        for conn in &mut conns {
            pump_reads(conn, &sk, &shared);
        }

        while let Ok((conn_id, line)) = replies.try_recv() {
            if let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id) {
                if write_line(&mut conn.stream, &line).is_err() {
                    conn.dead = true;
                }
            }
        }

        conns.retain(|c| !c.dead);
        std::thread::sleep(Duration::from_millis(1));
    }

    // Teardown: the supervisor only sets `stop` after the state keeper has
    // exited, so every reply it will ever send is already queued — flush
    // them so the last client sees its final ack before the socket closes.
    while let Ok((conn_id, line)) = replies.try_recv() {
        if let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id) {
            let _ = write_line(&mut conn.stream, &line);
        }
    }
}

/// Reads whatever the connection has, forwarding each complete line.
fn pump_reads(conn: &mut Conn, sk: &Swap<SyncSender<SkMsg>>, shared: &SkShared) {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                let mut bytes = &chunk[..n];
                if conn.discarding {
                    // Mid-oversized-line: drop bytes until its newline.
                    match bytes.iter().position(|&b| b == b'\n') {
                        Some(i) => {
                            conn.discarding = false;
                            bytes = &bytes[i + 1..];
                        }
                        None => continue,
                    }
                }
                conn.buf.extend_from_slice(bytes);
                if conn.buf.len() > MAX_LINE_BYTES {
                    // Stop slurping: let line processing below drain
                    // complete lines (or shed the overrun) before the
                    // buffer grows past one cap's worth.
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        if line.len() > MAX_LINE_BYTES {
            // Terminated but oversized: reject it whole, keep framing.
            reject_line_too_long(conn, shared);
            continue;
        }
        let line = String::from_utf8_lossy(&line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        handle_line(conn, line, sk, shared);
        if conn.dead {
            return;
        }
    }
    // No newline yet: a partial line already past the cap can never
    // become a valid request, so reject once and discard the rest of the
    // flood as it streams in instead of buffering it.
    if conn.buf.len() > MAX_LINE_BYTES {
        reject_line_too_long(conn, shared);
        conn.buf.clear();
        conn.discarding = true;
    }
}

/// One typed `line_too_long` rejection at the edge.
fn reject_line_too_long(conn: &mut Conn, shared: &SkShared) {
    reject_local(
        conn,
        "request",
        RejectReason::LineTooLong,
        &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        shared,
    );
}

fn handle_line(conn: &mut Conn, line: &str, sk: &Swap<SyncSender<SkMsg>>, shared: &SkShared) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err((reason, detail)) => {
            return reject_local(conn, "request", reason, &detail, shared);
        }
    };
    let (op, msg) = match request {
        Request::Submit { job, count } => {
            if shared.draining.load(Ordering::SeqCst) {
                return reject_local(
                    conn,
                    "submit",
                    RejectReason::Draining,
                    "daemon is draining",
                    shared,
                );
            }
            (
                "submit",
                SkMsg::Submit {
                    conn: conn.id,
                    job,
                    count,
                },
            )
        }
        Request::Advance { slots } => (
            "advance",
            SkMsg::Advance {
                conn: conn.id,
                slots,
            },
        ),
        Request::Status => ("status", SkMsg::Status { conn: conn.id }),
        Request::Drain => (
            "drain",
            SkMsg::Drain {
                conn: Some(conn.id),
            },
        ),
    };
    let (_, tx) = sk.get();
    match tx.try_send(msg) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => reject_local(
            conn,
            op,
            RejectReason::QueueFull,
            "state keeper queue is full; back off and retry",
            shared,
        ),
        Err(TrySendError::Disconnected(_)) => reject_local(
            conn,
            op,
            RejectReason::Unavailable,
            "state keeper restarting; retry shortly",
            shared,
        ),
    }
}

/// An edge rejection: counted, streamed, answered — without a state-keeper
/// round trip. `t` is the telemetry watermark (the state keeper owns the
/// true slot counter).
fn reject_local(conn: &mut Conn, op: &str, reason: RejectReason, detail: &str, shared: &SkShared) {
    shared.rejected.fetch_add(1, Ordering::SeqCst);
    send_reliable(
        &shared.tele,
        TelemetryMsg::Event(
            Event::new("admission.reject")
                .field("t", shared.emitted_upto.load(Ordering::SeqCst))
                .field("reason", reason.as_str()),
        ),
    );
    send_reliable(&shared.tele, TelemetryMsg::Counter("admission.rejected", 1));
    if write_line(&mut conn.stream, &protocol::reject(op, reason, detail)).is_err() {
        conn.dead = true;
    }
}

/// Writes `line\n` to a nonblocking stream, briefly riding out a full
/// socket buffer (replies are tiny; ~100ms of patience is plenty).
fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let mut written = 0;
    let mut patience = 100;
    while written < bytes.len() {
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                patience -= 1;
                if patience == 0 {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalEntry;
    use std::collections::BTreeSet;
    use std::io::{BufRead, BufReader};
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc::{self, sync_channel};
    use std::sync::Mutex;

    fn shared_for_test() -> (SkShared, mpsc::Receiver<TelemetryMsg>) {
        let (tele_tx, tele_rx) = mpsc::channel();
        let (reply_tx, _reply_rx) = mpsc::channel();
        let (ctl_tx, _ctl_rx) = mpsc::channel();
        let (feeds_tx, _feeds_rx) = mpsc::channel();
        // The receivers for reply/ctl/feeds are dropped: these paths are
        // not under test and sends to them are allowed to fail.
        let shared = SkShared {
            tele: Swap::new(tele_tx),
            reply: Swap::new(reply_tx),
            admission_ctl: Swap::new(ctl_tx),
            feeds: Swap::new(feeds_tx),
            draining: Arc::new(AtomicBool::new(false)),
            sockdrop: Arc::new(AtomicBool::new(false)),
            emitted_upto: Arc::new(AtomicU64::new(0)),
            admitted: Arc::new(AtomicU64::new(0)),
            rejected: Arc::new(AtomicU64::new(0)),
            accepted: Arc::new(Mutex::new(Vec::<JournalEntry>::new())),
            fired_chaos: Arc::new(Mutex::new(BTreeSet::new())),
        };
        (shared, tele_rx)
    }

    #[test]
    fn forwards_requests_and_routes_replies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (sk_tx, sk_rx) = sync_channel::<SkMsg>(8);
        let sk = Swap::new(sk_tx);
        let (shared, _tele_rx) = shared_for_test();
        let (reply_tx, reply_rx) = mpsc::channel();
        let (_ctl_tx, ctl_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let sk = sk.clone();
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                run_admission(
                    listener,
                    sk,
                    shared,
                    ctl_rx,
                    reply_rx,
                    AdmissionConfig { conn_base: 0, stop },
                )
            })
        };

        let mut client = TcpStream::connect(addr).unwrap();
        writeln!(client, "{{\"op\":\"submit\",\"job\":1,\"count\":2}}").unwrap();
        let (conn, job) = match sk_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            SkMsg::Submit { conn, job, count } => {
                assert_eq!(count, 2.0);
                (conn, job)
            }
            _ => panic!("expected submit"),
        };
        assert_eq!(job, 1);
        reply_tx
            .send((conn, protocol::accept(0, 0, job, 2.0)))
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"seq\":0"), "{line}");

        // Garbage rejects locally without a state-keeper round trip.
        writeln!(client, "not json").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\":\"parse\""), "{line}");
        assert_eq!(shared.rejected.load(Ordering::SeqCst), 1);

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn multi_megabyte_line_is_rejected_typed_and_framing_resyncs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (sk_tx, _sk_rx) = sync_channel::<SkMsg>(8);
        let sk = Swap::new(sk_tx);
        let (shared, _tele_rx) = shared_for_test();
        let (_reply_tx, reply_rx) = mpsc::channel();
        let (_ctl_tx, ctl_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let sk = sk.clone();
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                run_admission(
                    listener,
                    sk,
                    shared,
                    ctl_rx,
                    reply_rx,
                    AdmissionConfig { conn_base: 0, stop },
                )
            })
        };

        // A 4 MiB "line": exactly one typed rejection as soon as the cap
        // trips, however many poll cycles the flood spans — the actor
        // discards the rest instead of buffering it.
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut flood = vec![b'x'; 4 * 1024 * 1024];
        flood.push(b'\n');
        client.write_all(&flood).unwrap();
        client.flush().unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\":\"line_too_long\""), "{line}");
        assert_eq!(shared.rejected.load(Ordering::SeqCst), 1);

        // Framing resynced at the flood's newline: the next (short,
        // malformed) line gets its own typed answer, not silence.
        writeln!(client, "not json").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\":\"parse\""), "{line}");
        assert_eq!(shared.rejected.load(Ordering::SeqCst), 2);

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn backpressure_and_dead_keeper_reject_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (sk_tx, sk_rx) = sync_channel::<SkMsg>(1);
        let sk = Swap::new(sk_tx);
        let (shared, _tele_rx) = shared_for_test();
        let (_reply_tx, reply_rx) = mpsc::channel();
        let (_ctl_tx, ctl_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let sk = sk.clone();
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                run_admission(
                    listener,
                    sk,
                    shared,
                    ctl_rx,
                    reply_rx,
                    AdmissionConfig {
                        conn_base: 1 << 32,
                        stop,
                    },
                )
            })
        };

        let mut client = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();

        // Fill the (capacity 1) queue, then overflow it.
        writeln!(client, "{{\"op\":\"submit\",\"job\":0}}").unwrap();
        writeln!(client, "{{\"op\":\"submit\",\"job\":0}}").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\":\"queue_full\""), "{line}");

        // Kill the keeper's receiving end: typed `unavailable`.
        drop(sk_rx);
        writeln!(client, "{{\"op\":\"status\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\":\"unavailable\""), "{line}");

        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
