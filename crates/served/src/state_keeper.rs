//! The state-keeper actor: sole owner of the scheduling engine.
//!
//! All daemon state that matters — Θ(t), the admission journal, the
//! checkpoint cadence — is owned by this one actor, so there is exactly one
//! writer and restarts have a single, well-defined recovery story: the
//! supervisor rebuilds the engine from the [`EngineSpec`](crate::engine::EngineSpec)
//! (base inputs + replayed journal + last checkpoint) and the replacement
//! *silently catches up* to the telemetry watermark with a null observer,
//! so the event stream carries every slot exactly once.
//!
//! The submit path is journal-before-ack: a submission is fsync'd to the
//! admission journal **before** it is injected into the engine and before
//! the client sees `accepted`, so a `kill -9` can never acknowledge a job
//! it would later forget.
//!
//! Clock discipline ([`Clock`]): `manual` executes slots only on client
//! `advance` requests (deterministic tests), `turbo` free-runs to the
//! horizon, `real:MS` pins each slot to a wall-clock deadline and serves
//! admissions in the gaps.

use crate::admission::ActorCtl;
use crate::chaos::{chaos_inject_event, ChaosPlan};
use crate::feeds::FeedsMsg;
use crate::journal::{Journal, JournalEntry};
use crate::port::Swap;
use crate::protocol::{self, RejectReason};
use crate::telemetry::{send_reliable, PortObserver, TelemetryMsg, TelemetryPort};
use grefar_faults::ActorTarget;
use grefar_obs::{Event, NullObserver};
use grefar_sim::{SimulationReport, SteppedRun};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the state keeper waits for a replacement telemetry actor
/// after poisoning it (chaos) before streaming further events.
const TELEMETRY_RESTART_WAIT: Duration = Duration::from_secs(5);

/// The slot clock the state keeper runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Slots execute only on client `advance` requests.
    Manual,
    /// Slots execute back to back until the horizon.
    Turbo,
    /// One slot per wall-clock period; admissions are served in the gaps.
    Real(Duration),
}

impl Clock {
    /// Parses `manual`, `turbo` or `real:MS`.
    ///
    /// # Errors
    /// An unknown clock name or a non-positive period.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "manual" => Ok(Clock::Manual),
            "turbo" => Ok(Clock::Turbo),
            _ => match spec.strip_prefix("real:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(Clock::Real(Duration::from_millis(ms))),
                    _ => Err(format!("bad real-time clock period {ms:?} (want real:MS)")),
                },
                None => Err(format!(
                    "unknown clock {spec:?} (want manual, turbo or real:MS)"
                )),
            },
        }
    }

    /// The canonical label (`manual` / `turbo` / `real:MS`).
    pub fn label(&self) -> String {
        match self {
            Clock::Manual => "manual".to_string(),
            Clock::Turbo => "turbo".to_string(),
            Clock::Real(period) => format!("real:{}", period.as_millis()),
        }
    }
}

/// Messages the state keeper understands. Connection-scoped requests carry
/// the admission actor's connection id so the reply routes back.
pub enum SkMsg {
    /// A parsed, pre-validated-shape job submission.
    Submit {
        /// Originating connection.
        conn: u64,
        /// Job class.
        job: usize,
        /// Job count (positive, finite — checked at parse).
        count: f64,
    },
    /// Execute `slots` slots now (manual clock only).
    Advance {
        /// Originating connection.
        conn: u64,
        /// Slots to execute.
        slots: u64,
    },
    /// Report daemon status.
    Status {
        /// Originating connection.
        conn: u64,
    },
    /// Graceful drain: stop admitting, checkpoint, finish the run.
    /// `conn` is present when a client asked (it gets an ack), absent when
    /// the supervisor translates SIGTERM/SIGINT.
    Drain {
        /// Originating connection, if any.
        conn: Option<u64>,
    },
    /// Chaos: die. The supervisor restarts the actor.
    Poison,
    /// Chaos: freeze for this many milliseconds mid-loop.
    Stall(u64),
}

/// Why (and with what) the state keeper exited cleanly.
pub enum SkExit {
    /// The run finished — horizon exhausted, drained, or every peer gone.
    Finished {
        /// The folded simulation report (same shape as a batch run's).
        report: Box<SimulationReport>,
        /// `"horizon"`, `"drain"` or `"disconnected"`.
        reason: &'static str,
    },
}

/// State shared between the state keeper, its peers and the supervisor —
/// everything that must survive an actor restart lives here, not in the
/// actor.
#[derive(Clone)]
pub struct SkShared {
    /// The telemetry actor's swappable inbox.
    pub tele: TelemetryPort,
    /// Reply lines routed back to the admission actor as `(conn, line)`.
    pub reply: Swap<Sender<(u64, String)>>,
    /// The admission actor's control inbox (chaos routing).
    pub admission_ctl: Swap<Sender<ActorCtl>>,
    /// The feeds actor's inbox.
    pub feeds: Swap<Sender<FeedsMsg>>,
    /// Set once draining begins; the admission actor rejects locally too.
    pub draining: Arc<AtomicBool>,
    /// Chaos socket-drop window currently active.
    pub sockdrop: Arc<AtomicBool>,
    /// Telemetry watermark: slots whose events have been streamed. A
    /// replacement state keeper catches up to here silently.
    pub emitted_upto: Arc<AtomicU64>,
    /// Jobs admitted over the daemon's lifetime.
    pub admitted: Arc<AtomicU64>,
    /// Requests rejected over the daemon's lifetime.
    pub rejected: Arc<AtomicU64>,
    /// Every accepted submission, in order — the in-memory journal the
    /// supervisor replays into a replacement engine.
    pub accepted: Arc<Mutex<Vec<JournalEntry>>>,
    /// Chaos windows (by spec) that already fired, so a restarted state
    /// keeper replaying past slots does not re-kill anyone.
    pub fired_chaos: Arc<Mutex<BTreeSet<String>>>,
}

impl SkShared {
    /// Fresh shared state for a new daemon (all counters zero).
    pub fn new(
        tele: TelemetryPort,
        reply: Swap<Sender<(u64, String)>>,
        admission_ctl: Swap<Sender<ActorCtl>>,
        feeds: Swap<Sender<FeedsMsg>>,
    ) -> Self {
        Self {
            tele,
            reply,
            admission_ctl,
            feeds,
            draining: Arc::new(AtomicBool::new(false)),
            sockdrop: Arc::new(AtomicBool::new(false)),
            emitted_upto: Arc::new(AtomicU64::new(0)),
            admitted: Arc::new(AtomicU64::new(0)),
            rejected: Arc::new(AtomicU64::new(0)),
            accepted: Arc::new(Mutex::new(Vec::new())),
            fired_chaos: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    fn lock_accepted(&self) -> std::sync::MutexGuard<'_, Vec<JournalEntry>> {
        // A poisoned lock means some incarnation panicked mid-push; the
        // data is a Vec of Copy-able rows, always structurally sound.
        self.accepted.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-incarnation configuration.
pub struct SkConfig {
    /// The slot clock.
    pub clock: Clock,
    /// The chaos schedule, if any.
    pub chaos: Option<ChaosPlan>,
    /// Checkpoint journal path (None: no persistence).
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint every N slots (and always at drain/horizon).
    pub checkpoint_every: u64,
    /// Admission journal path (None: in-memory journal only).
    pub journal: Option<PathBuf>,
    /// Job classes in the system (submit validation).
    pub num_job_classes: usize,
}

/// Runs one state-keeper incarnation to completion.
///
/// `run` is the engine the supervisor built (fresh, resumed from disk, or
/// rebuilt after a crash); if the telemetry watermark is ahead of the
/// engine, the gap is stepped silently first.
///
/// # Panics
/// On chaos poison ([`SkMsg::Poison`] or a `kill:actor=state_keeper`
/// window), and on journal/checkpoint write failures — an un-acked,
/// un-persisted daemon must escalate to its supervisor, not limp on.
pub fn run_state_keeper(
    run: SteppedRun,
    config: SkConfig,
    shared: SkShared,
    rx: Receiver<SkMsg>,
) -> SkExit {
    let journal = config.journal.as_ref().map(|path| {
        Journal::open(path)
            .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display()))
    });
    let mut keeper = StateKeeper {
        run,
        journal,
        checkpoint_path: config.checkpoint,
        checkpoint_every: config.checkpoint_every.max(1),
        last_checkpoint_slot: None,
        clock: config.clock,
        chaos: config.chaos,
        classes: config.num_job_classes,
        shared,
    };

    // Silent catch-up: replay slots the previous incarnation already
    // streamed, without re-emitting their telemetry.
    let silent_until = keeper.shared.emitted_upto.load(Ordering::SeqCst);
    while keeper.run.next_slot() < silent_until {
        keeper.execute_slot(true);
    }

    match keeper.clock {
        Clock::Manual => loop {
            match rx.recv() {
                Ok(msg) => match keeper.handle(msg) {
                    Flow::Continue => {}
                    Flow::Finish(reason) => return keeper.finish(reason),
                },
                Err(_) => return keeper.finish("disconnected"),
            }
        },
        Clock::Turbo => loop {
            loop {
                match rx.try_recv() {
                    Ok(msg) => match keeper.handle(msg) {
                        Flow::Continue => {}
                        Flow::Finish(reason) => return keeper.finish(reason),
                    },
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return keeper.finish("disconnected"),
                }
            }
            if keeper.run.is_done() {
                return keeper.finish("horizon");
            }
            keeper.execute_slot(false);
        },
        Clock::Real(period) => {
            // The wall clock only *paces* slot execution; every scheduling
            // decision inside `execute_slot` stays clock-free and replays
            // identically under the manual and turbo clocks.
            // verify: allow(determinism): real-time pacing, not a scheduling decision
            let mut deadline = Instant::now() + period;
            loop {
                // verify: allow(determinism): real-time pacing, not a scheduling decision
                let now = Instant::now();
                if now >= deadline {
                    if keeper.run.is_done() {
                        return keeper.finish("horizon");
                    }
                    keeper.execute_slot(false);
                    deadline += period;
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(msg) => match keeper.handle(msg) {
                        Flow::Continue => {}
                        Flow::Finish(reason) => return keeper.finish(reason),
                    },
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return keeper.finish("disconnected"),
                }
            }
        }
    }
}

enum Flow {
    Continue,
    Finish(&'static str),
}

struct StateKeeper {
    run: SteppedRun,
    journal: Option<Journal>,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
    last_checkpoint_slot: Option<u64>,
    clock: Clock,
    chaos: Option<ChaosPlan>,
    classes: usize,
    shared: SkShared,
}

impl StateKeeper {
    fn handle(&mut self, msg: SkMsg) -> Flow {
        match msg {
            SkMsg::Submit { conn, job, count } => {
                self.handle_submit(conn, job, count);
                Flow::Continue
            }
            SkMsg::Advance { conn, slots } => self.handle_advance(conn, slots),
            SkMsg::Status { conn } => {
                self.reply(
                    conn,
                    protocol::status(
                        self.run.next_slot(),
                        self.run.horizon(),
                        self.run.queue_total(),
                        self.shared.admitted.load(Ordering::SeqCst),
                        self.shared.rejected.load(Ordering::SeqCst),
                        self.shared.draining.load(Ordering::SeqCst),
                    ),
                );
                Flow::Continue
            }
            SkMsg::Drain { conn } => {
                self.shared.draining.store(true, Ordering::SeqCst);
                if let Some(conn) = conn {
                    self.reply(conn, protocol::draining());
                }
                Flow::Finish("drain")
            }
            SkMsg::Poison => panic!("chaos kill: state_keeper"),
            SkMsg::Stall(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                Flow::Continue
            }
        }
    }

    fn handle_submit(&mut self, conn: u64, job: usize, count: f64) {
        if self.shared.draining.load(Ordering::SeqCst) {
            return self.reject(
                conn,
                "submit",
                RejectReason::Draining,
                "daemon is draining",
                None,
            );
        }
        if self.run.is_done() {
            return self.reject(
                conn,
                "submit",
                RejectReason::Invalid,
                "horizon exhausted",
                Some((job, count)),
            );
        }
        if job >= self.classes {
            let detail = format!("job class {job} out of range ({} classes)", self.classes);
            return self.reject(
                conn,
                "submit",
                RejectReason::Invalid,
                &detail,
                Some((job, count)),
            );
        }
        let t = self.run.next_slot();
        // Next seq continues from the newest accepted entry — `len()`
        // would repeat seqs after a journal rotation trims the prefix.
        let seq = self
            .shared
            .lock_accepted()
            .last()
            .map_or(0, |prev| prev.seq + 1);
        let entry = JournalEntry { seq, t, job, count };
        if let Some(journal) = &mut self.journal {
            journal
                .append(entry)
                .unwrap_or_else(|e| panic!("journal append failed: {e}"));
        }
        self.run
            .inject_arrivals(t, job, count)
            .expect("submit validated against the engine");
        self.shared.lock_accepted().push(entry);
        self.shared.admitted.fetch_add(1, Ordering::SeqCst);
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Event(
                Event::new("admission.accept")
                    .field("t", t)
                    .field("job", job as u64)
                    .field("count", count)
                    .field("seq", seq),
            ),
        );
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Counter("admission.accepted", 1),
        );
        self.reply(conn, protocol::accept(seq, t, job, count));
    }

    fn handle_advance(&mut self, conn: u64, slots: u64) -> Flow {
        if self.clock != Clock::Manual {
            self.reject(
                conn,
                "advance",
                RejectReason::BadRequest,
                "advance requires --clock manual",
                None,
            );
            return Flow::Continue;
        }
        for _ in 0..slots {
            if self.run.is_done() {
                break;
            }
            self.execute_slot(false);
        }
        self.reply(
            conn,
            protocol::advanced(self.run.next_slot(), self.run.is_done()),
        );
        if self.run.is_done() {
            Flow::Finish("horizon")
        } else {
            Flow::Continue
        }
    }

    /// Executes the next slot: chaos first (a kill window must strike
    /// before the slot's work), then the engine step, watermark, and
    /// checkpoint cadence.
    fn execute_slot(&mut self, silent: bool) {
        let t = self.run.next_slot();
        self.apply_chaos(t, silent);
        if silent {
            let mut null = NullObserver;
            self.run.step(&mut null);
        } else {
            let mut obs = PortObserver::new(self.shared.tele.clone());
            self.run.step(&mut obs);
        }
        self.shared
            .emitted_upto
            .store(self.run.next_slot(), Ordering::SeqCst);
        if !silent {
            self.maybe_checkpoint(false);
        }
        let (_, feeds) = self.shared.feeds.get();
        let _ = feeds.send(FeedsMsg::SlotDone(t));
    }

    /// Applies the chaos windows opening at slot `t`. Each window fires at
    /// most once across all incarnations (tracked in
    /// [`SkShared::fired_chaos`]); actions are collected under the lock and
    /// executed after it is released, so a self-kill cannot poison it.
    fn apply_chaos(&mut self, t: u64, silent: bool) {
        let Some(chaos) = &self.chaos else { return };
        self.shared
            .sockdrop
            .store(chaos.sockdrop_active(t), Ordering::SeqCst);
        let starting = chaos.starting(t);
        if starting.is_empty() {
            return;
        }
        let mut to_fire = Vec::new();
        {
            let mut fired = self
                .shared
                .fired_chaos
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for fault in &starting {
                if fired.insert(fault.spec()) {
                    to_fire.push(*fault);
                }
            }
        }
        for fault in to_fire {
            if !silent {
                send_reliable(
                    &self.shared.tele,
                    TelemetryMsg::Event(chaos_inject_event(&fault, t)),
                );
            }
            let ms = fault.magnitude().unwrap_or(0.0).max(0.0) as u64;
            match (fault.label(), fault.actor()) {
                ("kill", Some(ActorTarget::StateKeeper)) => {
                    panic!("chaos kill: state_keeper")
                }
                ("kill", Some(ActorTarget::Admission)) => {
                    let (_, ctl) = self.shared.admission_ctl.get();
                    let _ = ctl.send(ActorCtl::Poison);
                }
                ("kill", Some(ActorTarget::Feeds)) => {
                    let (_, feeds) = self.shared.feeds.get();
                    let _ = feeds.send(FeedsMsg::Poison);
                }
                ("kill", Some(ActorTarget::Telemetry)) => {
                    let (generation, tx) = self.shared.tele.get();
                    if tx.send(TelemetryMsg::Poison).is_ok() {
                        // Hold further events until the replacement is in.
                        self.shared
                            .tele
                            .await_generation_past(generation, TELEMETRY_RESTART_WAIT);
                    }
                }
                ("stall", Some(ActorTarget::StateKeeper)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                ("stall", Some(ActorTarget::Admission)) => {
                    let (_, ctl) = self.shared.admission_ctl.get();
                    let _ = ctl.send(ActorCtl::Stall(ms));
                }
                ("stall", Some(ActorTarget::Feeds)) => {
                    let (_, feeds) = self.shared.feeds.get();
                    let _ = feeds.send(FeedsMsg::Stall(ms));
                }
                ("stall", Some(ActorTarget::Telemetry)) => {
                    send_reliable(&self.shared.tele, TelemetryMsg::Stall(ms));
                }
                _ => {} // sockdrop: window flag handled above
            }
        }
    }

    /// Appends a checkpoint cut when the cadence (or `force`) says so.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(path) = &self.checkpoint_path else {
            return;
        };
        let slot = self.run.next_slot();
        if self.last_checkpoint_slot == Some(slot) {
            return;
        }
        let due = force || self.run.is_done() || slot % self.checkpoint_every == 0;
        if !due {
            return;
        }
        let checkpoint = self.run.checkpoint();
        checkpoint
            .append(path)
            .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"));
        self.last_checkpoint_slot = Some(slot);
        if let Some(journal) = &mut self.journal {
            // The cut is durable: entries for executed slots are baked
            // into it, so the journal only needs the suffix a resume
            // would replay (plus the newest entry as the seq watermark).
            let accepted = self.shared.lock_accepted();
            let from = accepted
                .iter()
                .position(|e| e.t >= slot)
                .unwrap_or_else(|| accepted.len().saturating_sub(1));
            let keep = &accepted[from..];
            journal
                .rotate(keep)
                .unwrap_or_else(|e| panic!("journal rotate failed: {e}"));
        }
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Event(Event::new("checkpoint.write").field("t", slot)),
        );
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Counter("checkpoint.writes", 1),
        );
    }

    fn reject(
        &mut self,
        conn: u64,
        op: &str,
        reason: RejectReason,
        detail: &str,
        submit: Option<(usize, f64)>,
    ) {
        let mut event = Event::new("admission.reject")
            .field("t", self.run.next_slot())
            .field("reason", reason.as_str());
        if let Some((job, count)) = submit {
            event = event.field("job", job as u64).field("count", count);
        }
        send_reliable(&self.shared.tele, TelemetryMsg::Event(event));
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Counter("admission.rejected", 1),
        );
        self.shared.rejected.fetch_add(1, Ordering::SeqCst);
        self.reply(conn, protocol::reject(op, reason, detail));
    }

    fn reply(&self, conn: u64, line: String) {
        // A failed send means the admission incarnation died; its
        // connections died with it, so the reply has nowhere to go.
        let (_, tx) = self.shared.reply.get();
        let _ = tx.send((conn, line));
    }

    /// Final cut, `run.end`, `served.stop` — in that order, so the stream
    /// ends exactly like a batch run's plus the daemon trailer.
    fn finish(mut self, reason: &'static str) -> SkExit {
        self.maybe_checkpoint(true);
        let watermark = self.run.next_slot();
        let mut obs = PortObserver::new(self.shared.tele.clone());
        let report = self.run.finish(&mut obs);
        send_reliable(
            &self.shared.tele,
            TelemetryMsg::Event(
                Event::new("served.stop")
                    .field("t", watermark)
                    .field("reason", reason)
                    .field("admitted", self.shared.admitted.load(Ordering::SeqCst))
                    .field("rejected", self.shared.rejected.load(Ordering::SeqCst)),
            ),
        );
        SkExit::Finished {
            report: Box::new(report),
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineSpec, SchedulerSpec};
    use grefar_obs::json::{parse_object, JsonValue};
    use grefar_sim::PaperScenario;
    use std::sync::mpsc;

    fn spec(hours: usize) -> EngineSpec {
        let scenario = PaperScenario::default().with_seed(5);
        let config = scenario.config().clone();
        let base_inputs = scenario.into_inputs(hours);
        EngineSpec {
            config,
            base_inputs,
            scheduler: SchedulerSpec::GreFar { v: 5.0, beta: 0.0 },
            admission_cap: None,
            faults: None,
            feeds: None,
            deadline_iters: None,
        }
    }

    struct Rig {
        sk: mpsc::Sender<SkMsg>,
        replies: mpsc::Receiver<(u64, String)>,
        _tele_rx: mpsc::Receiver<TelemetryMsg>,
        _feeds_rx: mpsc::Receiver<FeedsMsg>,
        _ctl_rx: mpsc::Receiver<ActorCtl>,
        handle: std::thread::JoinHandle<SkExit>,
    }

    fn rig(hours: usize, clock: Clock) -> Rig {
        let engine = spec(hours);
        let classes = engine.config.num_job_classes();
        let run = engine.build(&[], None).unwrap();
        let (tele_tx, tele_rx) = mpsc::channel();
        let (reply_tx, replies) = mpsc::channel();
        let (ctl_tx, ctl_rx) = mpsc::channel();
        let (feeds_tx, feeds_rx) = mpsc::channel();
        let shared = SkShared::new(
            Swap::new(tele_tx),
            Swap::new(reply_tx),
            Swap::new(ctl_tx),
            Swap::new(feeds_tx),
        );
        let (sk_tx, sk_rx) = mpsc::channel();
        let config = SkConfig {
            clock,
            chaos: None,
            checkpoint: None,
            checkpoint_every: 1,
            journal: None,
            num_job_classes: classes,
        };
        let handle = std::thread::spawn(move || run_state_keeper(run, config, shared, sk_rx));
        Rig {
            sk: sk_tx,
            replies,
            _tele_rx: tele_rx,
            _feeds_rx: feeds_rx,
            _ctl_rx: ctl_rx,
            handle,
        }
    }

    fn reply_of(rig: &Rig, conn: u64) -> std::collections::BTreeMap<String, JsonValue> {
        let (got_conn, line) = rig
            .replies
            .recv_timeout(Duration::from_secs(5))
            .expect("reply");
        assert_eq!(got_conn, conn);
        parse_object(&line).expect("flat json reply")
    }

    #[test]
    fn manual_clock_submit_advance_status_drain() {
        let rig = rig(6, Clock::Manual);
        rig.sk
            .send(SkMsg::Submit {
                conn: 1,
                job: 0,
                count: 2.0,
            })
            .unwrap();
        let accept = reply_of(&rig, 1);
        assert_eq!(accept.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(accept.get("op").and_then(JsonValue::as_str), Some("submit"));
        assert_eq!(accept.get("seq").and_then(JsonValue::as_f64), Some(0.0));

        rig.sk.send(SkMsg::Advance { conn: 2, slots: 2 }).unwrap();
        let advanced = reply_of(&rig, 2);
        assert_eq!(advanced.get("slot").and_then(JsonValue::as_f64), Some(2.0));

        rig.sk.send(SkMsg::Status { conn: 3 }).unwrap();
        let status = reply_of(&rig, 3);
        assert_eq!(
            status.get("admitted").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(status.get("horizon").and_then(JsonValue::as_f64), Some(6.0));

        // Draining rejects new submissions and finishes the run.
        rig.sk.send(SkMsg::Drain { conn: Some(4) }).unwrap();
        let drain = reply_of(&rig, 4);
        assert_eq!(drain.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            drain.get("draining").and_then(JsonValue::as_bool),
            Some(true)
        );
        match rig.handle.join().unwrap() {
            SkExit::Finished { reason, .. } => assert_eq!(reason, "drain"),
        }
    }

    #[test]
    fn bad_submissions_get_typed_rejections() {
        let rig = rig(4, Clock::Manual);
        rig.sk
            .send(SkMsg::Submit {
                conn: 9,
                job: 99,
                count: 1.0,
            })
            .unwrap();
        let reject = reply_of(&rig, 9);
        assert_eq!(reject.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            reject.get("error").and_then(JsonValue::as_str),
            Some("invalid")
        );
        rig.sk.send(SkMsg::Drain { conn: None }).unwrap();
        rig.handle.join().unwrap();
    }

    #[test]
    fn advancing_past_the_horizon_finishes_the_run() {
        let rig = rig(3, Clock::Manual);
        rig.sk.send(SkMsg::Advance { conn: 1, slots: 10 }).unwrap();
        let advanced = reply_of(&rig, 1);
        assert_eq!(advanced.get("slot").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            advanced.get("done").and_then(JsonValue::as_bool),
            Some(true)
        );
        match rig.handle.join().unwrap() {
            SkExit::Finished { reason, report } => {
                assert_eq!(reason, "horizon");
                assert!(report.average_energy_cost().is_finite());
            }
        }
    }

    #[test]
    fn checkpoints_rotate_the_journal_and_seqs_survive() {
        let dir = std::env::temp_dir().join(format!("grefar-sk-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck_path = dir.join("run.ckpt.jsonl");
        let jn_path = dir.join("run.ckpt.jsonl.journal");
        let _ = std::fs::remove_file(&ck_path);
        let _ = std::fs::remove_file(&jn_path);

        let engine = spec(8);
        let classes = engine.config.num_job_classes();
        let run = engine.build(&[], None).unwrap();
        let (tele_tx, _tele_rx) = mpsc::channel();
        let (reply_tx, replies) = mpsc::channel();
        let (ctl_tx, _ctl_rx) = mpsc::channel();
        let (feeds_tx, _feeds_rx) = mpsc::channel();
        let shared = SkShared::new(
            Swap::new(tele_tx),
            Swap::new(reply_tx),
            Swap::new(ctl_tx),
            Swap::new(feeds_tx),
        );
        let (sk_tx, sk_rx) = mpsc::channel();
        let config = SkConfig {
            clock: Clock::Manual,
            chaos: None,
            checkpoint: Some(ck_path.clone()),
            checkpoint_every: 1,
            journal: Some(jn_path.clone()),
            num_job_classes: classes,
        };
        let handle = std::thread::spawn(move || run_state_keeper(run, config, shared, sk_rx));
        let rig = Rig {
            sk: sk_tx,
            replies,
            _tele_rx,
            _feeds_rx,
            _ctl_rx,
            handle,
        };

        for conn in 0..3u64 {
            rig.sk
                .send(SkMsg::Submit {
                    conn,
                    job: 0,
                    count: 1.0,
                })
                .unwrap();
            let accept = reply_of(&rig, conn);
            assert_eq!(
                accept.get("seq").and_then(JsonValue::as_f64),
                Some(conn as f64)
            );
            rig.sk
                .send(SkMsg::Advance {
                    conn: 100 + conn,
                    slots: 1,
                })
                .unwrap();
            reply_of(&rig, 100 + conn);
        }

        // Three slots executed, a checkpoint after each: the journal has
        // been rotated down to the seq watermark (every admitted slot is
        // behind the cut), not grown to all three entries.
        let recovered = crate::journal::load(&jn_path).unwrap();
        assert_eq!(recovered.entries.len(), 1, "{:?}", recovered.entries);
        assert_eq!(recovered.entries[0].seq, 2);

        // A fresh submission continues the seq sequence from the
        // watermark — exactly what a resumed daemon would do.
        rig.sk
            .send(SkMsg::Submit {
                conn: 7,
                job: 0,
                count: 2.0,
            })
            .unwrap();
        let accept = reply_of(&rig, 7);
        assert_eq!(accept.get("seq").and_then(JsonValue::as_f64), Some(3.0));

        rig.sk.send(SkMsg::Drain { conn: None }).unwrap();
        rig.handle.join().unwrap();

        // The rotated journal plus the newest checkpoint still rebuild a
        // runnable engine (the resume path's exact inputs).
        let recovered = crate::journal::load(&jn_path).unwrap();
        let ck = grefar_sim::Checkpoint::load_latest(&ck_path)
            .unwrap()
            .checkpoint;
        let resumed = spec(8).build(&recovered.entries, Some(ck));
        assert!(resumed.is_ok(), "{:?}", resumed.err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn turbo_clock_free_runs_to_the_horizon() {
        let rig = rig(5, Clock::Turbo);
        match rig.handle.join().unwrap() {
            SkExit::Finished { reason, .. } => assert_eq!(reason, "horizon"),
        }
    }

    #[test]
    fn clock_parses() {
        assert_eq!(Clock::parse("manual").unwrap(), Clock::Manual);
        assert_eq!(Clock::parse("turbo").unwrap(), Clock::Turbo);
        assert_eq!(
            Clock::parse("real:25").unwrap(),
            Clock::Real(Duration::from_millis(25))
        );
        assert!(Clock::parse("real:0").is_err());
        assert!(Clock::parse("warp").is_err());
        assert_eq!(Clock::Real(Duration::from_millis(25)).label(), "real:25");
    }
}
