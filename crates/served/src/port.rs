//! Swappable channel endpoints for supervised actors.
//!
//! When the supervisor restarts a crashed actor, the actor's old inbox
//! (its `mpsc` receiver) died with it. Peers therefore never hold a bare
//! `Sender`; they hold a [`Swap`] — a generation-counted slot the
//! supervisor repoints at the replacement's fresh channel. A failed send
//! plus an observed generation bump tells a peer exactly when the
//! replacement is live.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared, swappable sender slot (see module docs). `S` is any cloneable
/// sender (`mpsc::Sender`, `mpsc::SyncSender`).
#[derive(Debug)]
pub struct Swap<S> {
    inner: Arc<Mutex<(u64, S)>>,
}

impl<S> Clone for Swap<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: Clone> Swap<S> {
    /// Wraps the first incarnation's sender (generation 0).
    pub fn new(sender: S) -> Self {
        Self {
            inner: Arc::new(Mutex::new((0, sender))),
        }
    }

    /// The current `(generation, sender)` pair.
    pub fn get(&self) -> (u64, S) {
        let guard = self.inner.lock().expect("port lock");
        (guard.0, guard.1.clone())
    }

    /// The current generation (bumped on every [`swap`](Swap::swap)).
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("port lock").0
    }

    /// Repoints the slot at a replacement's sender; returns the new
    /// generation. Supervisor-only.
    pub fn swap(&self, sender: S) -> u64 {
        let mut guard = self.inner.lock().expect("port lock");
        guard.0 += 1;
        guard.1 = sender;
        guard.0
    }

    /// Blocks until the generation exceeds `seen` (a replacement is live)
    /// or `timeout` passes; returns whether the bump was observed.
    pub fn await_generation_past(&self, seen: u64, timeout: Duration) -> bool {
        // verify: allow(determinism): supervision timeout, not a scheduling decision
        let deadline = Instant::now() + timeout;
        while self.generation() <= seen {
            // verify: allow(determinism): supervision timeout, not a scheduling decision
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn swap_bumps_generation_and_repoints() {
        let (tx1, rx1) = mpsc::channel::<u32>();
        let port = Swap::new(tx1);
        let (gen, tx) = port.get();
        assert_eq!(gen, 0);
        tx.send(1).unwrap();
        assert_eq!(rx1.recv().unwrap(), 1);

        let (tx2, rx2) = mpsc::channel::<u32>();
        drop(rx1);
        assert_eq!(port.swap(tx2), 1);
        let (gen, tx) = port.get();
        assert_eq!(gen, 1);
        tx.send(2).unwrap();
        assert_eq!(rx2.recv().unwrap(), 2);
        assert!(port.await_generation_past(0, Duration::from_millis(10)));
        assert!(!port.await_generation_past(1, Duration::from_millis(5)));
    }
}
