//! The daemon's deterministic chaos schedule.
//!
//! `--chaos PLAN` reuses the `grefar_faults` DSL with the runtime-only
//! clauses (`kill:actor=…`, `stall:actor=…,ms=…`, `sockdrop:…`). Chaos
//! clauses never touch the simulation data path — they act on the *actor
//! system*: a kill panics the target actor at the window's first slot (the
//! supervisor must bring it back), a stall freezes it for a fixed wall
//! time, and a socket drop severs every admission connection for the
//! window. Because windows are keyed to slots, a chaos run is exactly
//! reproducible.

use grefar_faults::{ActorTarget, Fault, FaultPlan};
use grefar_obs::Event;

/// A validated, chaos-only fault plan.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    plan: FaultPlan,
}

impl ChaosPlan {
    /// Wraps a parsed plan, requiring every clause to be a chaos clause
    /// (data faults and solver squeezes belong in `--faults`).
    ///
    /// # Errors
    /// The first non-chaos clause's spec.
    pub fn from_plan(plan: FaultPlan) -> Result<Self, String> {
        if let Some(fault) = plan.faults().iter().find(|f| !f.is_chaos()) {
            return Err(format!(
                "--chaos only takes kill/stall/sockdrop clauses; move {:?} to --faults",
                fault.spec()
            ));
        }
        Ok(Self { plan })
    }

    /// Parses a chaos-only DSL spec.
    ///
    /// # Errors
    /// Parse errors, or a non-chaos clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let plan = FaultPlan::parse(spec).map_err(|e| e.to_string())?;
        Self::from_plan(plan)
    }

    /// The canonical spec (for logs).
    pub fn spec(&self) -> String {
        self.plan.spec()
    }

    /// Actors to kill right before slot `slot` executes (windows opening
    /// at that slot).
    pub fn kills_starting_at(&self, slot: u64) -> Vec<ActorTarget> {
        self.plan
            .starting_at(slot)
            .filter_map(|f| match f.actor() {
                Some(actor) if f.label() == "kill" => Some(actor),
                _ => None,
            })
            .collect()
    }

    /// `(actor, milliseconds)` stalls opening at `slot`.
    pub fn stalls_starting_at(&self, slot: u64) -> Vec<(ActorTarget, u64)> {
        self.plan
            .starting_at(slot)
            .filter_map(|f| match (f.actor(), f.magnitude()) {
                (Some(actor), Some(ms)) if f.label() == "stall" => Some((actor, ms as u64)),
                _ => None,
            })
            .collect()
    }

    /// Whether a socket-drop window covers `slot`.
    pub fn sockdrop_active(&self, slot: u64) -> bool {
        self.plan.active_at(slot).any(|f| f.label() == "sockdrop")
    }

    /// `fault.inject` telemetry events for every chaos window opening at
    /// `slot` — same shape as the engine's data-fault events, plus the
    /// `actor` field.
    pub fn inject_events(&self, slot: u64) -> Vec<Event> {
        self.plan
            .starting_at(slot)
            .map(|fault| chaos_inject_event(fault, slot))
            .collect()
    }

    /// The chaos windows opening at `slot` (faults are `Copy`).
    pub fn starting(&self, slot: u64) -> Vec<Fault> {
        self.plan.starting_at(slot).copied().collect()
    }

    /// The last slot any window covers (to size turbo-mode runs in tests).
    pub fn last_slot(&self) -> Option<u64> {
        self.plan.last_slot()
    }
}

/// The `fault.inject` event for one chaos window opening at slot `t`.
pub fn chaos_inject_event(fault: &Fault, t: u64) -> Event {
    let mut event = Event::new("fault.inject")
        .field("t", t)
        .field("kind", fault.label())
        .field("start", fault.start)
        .field("end", fault.end);
    if let Some(actor) = fault.actor() {
        event = event.field("actor", actor.label());
    }
    if let Some(magnitude) = fault.magnitude() {
        event = event.field("magnitude", magnitude);
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_schedules_chaos_windows() {
        let chaos = ChaosPlan::parse(
            "kill:actor=admission,start=3,end=4; stall:actor=telemetry,ms=20,start=5,end=6; \
             sockdrop:start=8,end=11",
        )
        .unwrap();
        assert_eq!(chaos.kills_starting_at(3), vec![ActorTarget::Admission]);
        assert!(chaos.kills_starting_at(4).is_empty());
        assert_eq!(
            chaos.stalls_starting_at(5),
            vec![(ActorTarget::Telemetry, 20)]
        );
        assert!(!chaos.sockdrop_active(7));
        assert!(chaos.sockdrop_active(8));
        assert!(chaos.sockdrop_active(10));
        assert!(!chaos.sockdrop_active(11));
        assert_eq!(chaos.last_slot(), Some(10));
    }

    #[test]
    fn rejects_data_clauses() {
        let err = ChaosPlan::parse("outage:dc=0,start=1,end=2").unwrap_err();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn inject_events_carry_the_actor() {
        let chaos = ChaosPlan::parse("kill:actor=state_keeper,start=2,end=3").unwrap();
        let events = chaos.inject_events(2);
        assert_eq!(events.len(), 1);
        let line = events[0].to_json();
        assert!(line.contains("\"actor\":\"state_keeper\""), "{line}");
        assert!(line.contains("\"kind\":\"kill\""), "{line}");
    }
}
