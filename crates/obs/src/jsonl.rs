//! Line-delimited JSON export of the event stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::Event;
use crate::observer::Observer;

/// Streams each recorded [`Event`] as one JSON object per line.
///
/// Every line carries a leading `"schema":N` field (the current
/// [`SCHEMA_VERSION`](crate::SCHEMA_VERSION)), so offline consumers such as
/// `grefar-report` can reject streams written by an incompatible future
/// format. Self-describing lines (rather than a single header) survive
/// concatenation, truncation and grep.
///
/// Counters / gauges / histogram samples are aggregation concerns and are
/// not written; pair with a [`MemoryObserver`](crate::MemoryObserver) via
/// [`Tee`](crate::Tee) when both views are wanted.
///
/// I/O errors are counted (see [`io_errors`](JsonlSink::io_errors)) rather
/// than panicking mid-simulation.
pub struct JsonlSink<W: Write> {
    writer: W,
    io_errors: usize,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`, buffered.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Opens a JSONL file at `path` for appending (creating it when
    /// absent), buffered. Used by checkpoint/resume to continue a partial
    /// telemetry stream rather than truncate it.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            io_errors: 0,
        }
    }

    /// Number of writes that failed.
    pub fn io_errors(&self) -> usize {
        self.io_errors
    }

    /// Flushes buffered output.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn record_event(&mut self, event: Event) {
        let mut line = event.to_json_with_schema(crate::SCHEMA_VERSION);
        line.push('\n');
        if self.writer.write_all(line.as_bytes()).is_err() {
            self.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_event(Event::new("slot").field("t", 0_u64));
        sink.record_event(Event::new("slot").field("t", 1_u64));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"{"schema":1,"event":"slot","t":0}"#,
                r#"{"schema":1,"event":"slot","t":1}"#
            ]
        );
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn append_continues_an_existing_stream() {
        let dir = std::env::temp_dir().join(format!("grefar-jsonl-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut first = JsonlSink::create(&path).unwrap();
        first.record_event(Event::new("slot").field("t", 0_u64));
        first.flush().unwrap();
        drop(first);
        let mut second = JsonlSink::append(&path).unwrap();
        second.record_event(Event::new("slot").field("t", 1_u64));
        second.flush().unwrap();
        drop(second);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("\"t\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_errors_are_counted_not_fatal() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record_event(Event::new("slot"));
        assert_eq!(sink.io_errors(), 1);
    }
}
