//! Structured events and their hand-rolled JSON serialization.

use core::fmt::Write as _;

/// A typed field value.
///
/// Floats serialize through Rust's shortest-roundtrip `Display`; NaN and
/// infinities (not valid JSON numbers) serialize as `null`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (slot numbers, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (costs, queue lengths, gaps).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (scheduler / solver names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A named, flat record of typed fields — one telemetry observation.
///
/// Field keys are `&'static str` so event construction allocates only the
/// field vector (and any string values).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event with the given name.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The event name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serializes to a single-line JSON object:
    /// `{"event":"<name>","k":v,...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * self.fields.len());
        out.push_str("{\"event\":");
        self.write_fields(&mut out);
        out
    }

    /// Serializes like [`to_json`](Event::to_json) but with a leading
    /// `"schema":<version>` field, marking the line's wire-format version
    /// (see [`SCHEMA_VERSION`](crate::SCHEMA_VERSION)). Consumers reject
    /// versions newer than the one they were built against.
    pub fn to_json_with_schema(&self, version: u32) -> String {
        let mut out = String::with_capacity(44 + 16 * self.fields.len());
        let _ = write!(out, "{{\"schema\":{version},\"event\":");
        self.write_fields(&mut out);
        out
    }

    fn write_fields(&self, out: &mut String) {
        write_json_string(out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_string(out, key);
            out.push(':');
            write_json_value(out, value);
        }
        out.push('}');
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // Display for f64 is shortest-roundtrip; ensure the token
                // stays a JSON number (it never produces exponents without
                // digits or bare dots).
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => write_json_string(out, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let e = Event::new("slot").field("t", 3_u64).field("energy", 1.5);
        assert_eq!(e.name(), "slot");
        assert_eq!(e.get("t"), Some(&Value::U64(3)));
        assert_eq!(e.get("energy"), Some(&Value::F64(1.5)));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn json_shape() {
        let e = Event::new("slot")
            .field("t", 3_u64)
            .field("neg", -2_i64)
            .field("ok", true)
            .field("who", "GreFar(V=7.5)");
        assert_eq!(
            e.to_json(),
            r#"{"event":"slot","t":3,"neg":-2,"ok":true,"who":"GreFar(V=7.5)"}"#
        );
    }

    #[test]
    fn schema_field_leads_the_line() {
        let e = Event::new("slot").field("t", 3_u64);
        assert_eq!(
            e.to_json_with_schema(1),
            r#"{"schema":1,"event":"slot","t":3}"#
        );
        // The unversioned form is unchanged.
        assert_eq!(e.to_json(), r#"{"event":"slot","t":3}"#);
    }

    #[test]
    fn floats_roundtrip_and_nonfinite_is_null() {
        let e = Event::new("x")
            .field("v", 0.1)
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        assert_eq!(
            e.to_json(),
            r#"{"event":"x","v":0.1,"nan":null,"inf":null}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x").field("s", "a\"b\\c\nd\te\u{1}");
        assert_eq!(
            e.to_json(),
            "{\"event\":\"x\",\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}"
        );
    }
}
