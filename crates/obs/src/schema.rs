//! The telemetry event registry: the single declared contract between
//! every emitter in the workspace and every consumer of the stream.
//!
//! Three layers depend on the exact set of event names and fields —
//! the live metrics fold (`grefar-metrics`), the offline report rebuild
//! (`grefar-report`), and the checkpoint reader (`grefar-sim`). Before
//! this registry existed the contract lived in a hand-maintained doc
//! table (which drifted: it said `degraded_slots` where the code emits
//! `degraded_events`). Now it is data:
//!
//! * [`EVENTS`] declares every event, its [`Channel`], and its
//!   required/optional [`FieldSpec`]s;
//! * `grefar-verify`'s `event-schema` static pass checks every
//!   `Event::new("…")` construction site against it, and checks that the
//!   fold/stream `match` arms cover it (see DESIGN.md, "Correctness
//!   tooling");
//! * [`synthesize`] builds a placeholder event straight from a schema so
//!   consumers can fixture-test that their parsers accept exactly what
//!   the registry declares.
//!
//! Keep entries sorted by name within each channel; the registry's own
//! unit tests enforce the structural invariants (unique sorted names,
//! disjoint field sets).

use crate::event::{Event, Value};

/// Which stream an event travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// The run telemetry stream (`--telemetry` JSONL, live observers).
    Telemetry,
    /// The checkpoint file format (`ckpt.*` lines; see
    /// `grefar_sim::checkpoint`).
    Checkpoint,
}

/// The wire type of one event field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Unsigned integer (slots, counts).
    U64,
    /// Signed integer.
    I64,
    /// Floating point (costs, queue lengths, bounds).
    F64,
    /// Boolean flag.
    Bool,
    /// Short string label.
    Str,
}

/// One declared field: name plus wire type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The field key as it appears on the wire.
    pub name: &'static str,
    /// The wire type.
    pub kind: FieldKind,
}

const fn u(name: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        kind: FieldKind::U64,
    }
}

const fn f(name: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        kind: FieldKind::F64,
    }
}

const fn s(name: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        kind: FieldKind::Str,
    }
}

/// One registered event: name, channel, and field contract.
///
/// `required` fields appear on every instance; `optional` fields may be
/// present (conditional emission) but no undeclared field ever is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSchema {
    /// The event name (`"event"` key on the wire).
    pub name: &'static str,
    /// Which stream it travels on.
    pub channel: Channel,
    /// One-line description for docs and findings.
    pub doc: &'static str,
    /// Fields present on every instance.
    pub required: &'static [FieldSpec],
    /// Fields present only under some conditions.
    pub optional: &'static [FieldSpec],
}

/// Every event the workspace emits, sorted by name within channel
/// (telemetry first, then checkpoint).
pub const EVENTS: &[EventSchema] = &[
    EventSchema {
        name: "admission.accept",
        channel: Channel::Telemetry,
        doc: "The daemon admitted a job submission into a slot's arrivals.",
        required: &[u("t"), u("job"), f("count"), u("seq")],
        optional: &[],
    },
    EventSchema {
        name: "admission.reject",
        channel: Channel::Telemetry,
        doc: "The daemon rejected a submission (shedding, draining, or malformed).",
        required: &[u("t"), s("reason")],
        optional: &[u("job"), f("count")],
    },
    EventSchema {
        name: "alert.fire",
        channel: Channel::Telemetry,
        doc: "An alert rule's condition held for its full hold window.",
        required: &[u("t"), s("rule"), s("signal"), f("value"), f("threshold")],
        optional: &[u("for_slots")],
    },
    EventSchema {
        name: "alert.resolve",
        channel: Channel::Telemetry,
        doc: "A previously fired alert rule's condition cleared.",
        required: &[u("t"), s("rule"), f("value"), u("fired_at")],
        optional: &[],
    },
    EventSchema {
        name: "checkpoint.truncated",
        channel: Channel::Telemetry,
        doc: "A checkpoint load recovered past a truncated/corrupt trailing record.",
        required: &[u("t"), u("kept_lines"), u("dropped_bytes")],
        optional: &[],
    },
    EventSchema {
        name: "checkpoint.write",
        channel: Channel::Telemetry,
        doc: "A checkpoint was cut at slot t.",
        required: &[u("t")],
        optional: &[],
    },
    EventSchema {
        name: "decision.explain",
        channel: Channel::Telemetry,
        doc: "Per-DC provenance of one drift-plus-penalty decision (eq. 14).",
        required: &[
            u("t"),
            u("dc"),
            f("drift"),
            f("energy"),
            f("routed"),
            f("processed"),
            f("backlog"),
            f("busy"),
            f("capacity"),
        ],
        optional: &[f("fairness"), s("deficits"), s("reason")],
    },
    EventSchema {
        name: "degraded.mode",
        channel: Channel::Telemetry,
        doc: "The scheduler served a slot through a degradation fallback.",
        required: &[u("t"), s("reason")],
        optional: &[u("dc"), u("fw_iterations"), f("fw_gap"), s("violation")],
    },
    EventSchema {
        name: "fault.inject",
        channel: Channel::Telemetry,
        doc: "A fault window opened (emitted once, at its first slot).",
        required: &[u("t"), s("kind"), u("start"), u("end")],
        optional: &[u("dc"), u("job"), f("magnitude"), s("actor")],
    },
    EventSchema {
        name: "feed.breaker",
        channel: Channel::Telemetry,
        doc: "A feed circuit-breaker state transition.",
        required: &[u("t"), s("feed"), s("from"), s("to")],
        optional: &[u("dc")],
    },
    EventSchema {
        name: "feed.fetch",
        channel: Channel::Telemetry,
        doc: "A feed poll that failed or needed retries (clean fetches stay silent).",
        required: &[u("t"), s("feed"), s("outcome"), u("attempts")],
        optional: &[u("dc"), s("reason")],
    },
    EventSchema {
        name: "feed.quarantine",
        channel: Channel::Telemetry,
        doc: "A feed payload rejected by validation.",
        required: &[u("t"), s("feed"), s("reason")],
        optional: &[u("dc")],
    },
    EventSchema {
        name: "grefar.decide",
        channel: Channel::Telemetry,
        doc: "One drift-plus-penalty decision (paper eq. 14).",
        required: &[
            u("t"),
            f("v"),
            f("beta"),
            f("objective"),
            f("drift"),
            f("penalty"),
            f("routed"),
            f("processed"),
            s("solver"),
            u("fw_iterations"),
            f("fw_gap"),
            u("wall_us"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "health.snapshot",
        channel: Channel::Telemetry,
        doc: "The metrics layer's health verdict at snapshot time.",
        required: &[
            u("t"),
            s("verdict"),
            f("queue_peak"),
            u("invariant_violations"),
            u("degraded_events"),
            u("stale_events"),
            u("open_breakers"),
        ],
        optional: &[
            f("queue_bound"),
            f("occupancy_pct"),
            u("checkpoint_age_slots"),
            u("active_alerts"),
        ],
    },
    EventSchema {
        name: "invariant.violation",
        channel: Channel::Telemetry,
        doc: "A paper invariant failed at runtime (strict-invariants builds).",
        required: &[u("t"), s("kind"), s("detail")],
        optional: &[],
    },
    EventSchema {
        name: "lp.solve",
        channel: Channel::Telemetry,
        doc: "One simplex solve by the MPC baseline.",
        required: &[
            u("t"),
            u("vars"),
            u("rows"),
            u("pivots_phase1"),
            u("pivots_phase2"),
            u("degenerate_pivots"),
            u("bound_flips"),
            u("wall_us"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "profile.span",
        channel: Channel::Telemetry,
        doc: "One folded span-profiler stack (post-run trailer).",
        required: &[s("stack"), s("clock"), u("count")],
        optional: &[
            u("total_ticks"),
            u("self_ticks"),
            u("total_us"),
            u("self_us"),
            u("span_id"),
            u("parent_id"),
        ],
    },
    EventSchema {
        name: "run.end",
        channel: Channel::Telemetry,
        doc: "A simulation run finished.",
        required: &[u("slots"), u("completed"), f("dropped"), u("wall_us")],
        optional: &[],
    },
    EventSchema {
        name: "run.start",
        channel: Channel::Telemetry,
        doc: "A simulation run began.",
        required: &[
            s("scheduler"),
            u("horizon"),
            u("data_centers"),
            u("job_classes"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "served.restart",
        channel: Channel::Telemetry,
        doc: "The supervisor restarted a crashed or stalled actor.",
        required: &[u("t"), s("actor"), u("restarts"), u("backoff_ms")],
        optional: &[],
    },
    EventSchema {
        name: "served.start",
        channel: Channel::Telemetry,
        doc: "The scheduling daemon came up and began serving slots.",
        required: &[s("addr"), u("slot"), s("clock")],
        optional: &[],
    },
    EventSchema {
        name: "served.stop",
        channel: Channel::Telemetry,
        doc: "The scheduling daemon stopped (drain, horizon, or fatal supervision).",
        required: &[u("t"), s("reason")],
        optional: &[u("admitted"), u("rejected")],
    },
    EventSchema {
        name: "slot",
        channel: Channel::Telemetry,
        doc: "One executed slot: queues, costs, arrivals.",
        required: &[
            u("t"),
            f("queue_central"),
            f("queue_local"),
            f("queue_max"),
            f("energy"),
            f("fairness"),
            f("arrivals"),
            f("dropped"),
            u("wall_us"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "soak.ledger",
        channel: Channel::Telemetry,
        doc: "Per-slot job-conservation ledger: cumulative offered/served \
              accounting and the balance against the live queue total.",
        required: &[
            u("t"),
            f("offered"),
            f("admitted"),
            f("dropped"),
            f("served"),
            f("route_excess"),
            f("queued"),
            f("balance"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "state.stale",
        channel: Channel::Telemetry,
        doc: "A slot decided on a not-fully-fresh feed estimate.",
        required: &[u("t"), u("stale_fields"), u("max_age"), f("price_mae")],
        optional: &[],
    },
    EventSchema {
        name: "sweep.run",
        channel: Channel::Telemetry,
        doc: "Marks the start of one labeled run in a sweep.",
        required: &[s("label")],
        optional: &[],
    },
    EventSchema {
        name: "theory.bounds",
        channel: Channel::Telemetry,
        doc: "Theorem 1 certificates for one labeled run.",
        required: &[
            s("label"),
            f("v"),
            f("beta"),
            f("delta"),
            f("price_max"),
            f("queue_bound"),
            f("cost_gap_bound"),
            u("frame"),
        ],
        optional: &[u("stale_slots"), f("stale_queue_bound")],
    },
    // -- checkpoint channel ------------------------------------------------
    EventSchema {
        name: "ckpt.central_jobs",
        channel: Channel::Checkpoint,
        doc: "Per-job-class central FIFO arrival slots.",
        required: &[u("job"), s("arrivals")],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.end",
        channel: Channel::Checkpoint,
        doc: "Checkpoint trailer: total line count for truncation detection.",
        required: &[u("lines")],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.header",
        channel: Channel::Checkpoint,
        doc: "Checkpoint header: schema version, cut slot, run shape.",
        required: &[
            u("v"),
            u("slot"),
            u("horizon"),
            s("scheduler"),
            s("faults"),
            s("feeds"),
            f("dropped"),
            u("data_centers"),
            u("job_classes"),
            u("accounts"),
            u("completed_total"),
            s("sojourn_sum"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.ledger",
        channel: Channel::Checkpoint,
        doc: "Cumulative job-conservation ledger counters at the cut.",
        required: &[
            f("offered"),
            f("admitted"),
            f("dropped"),
            f("served"),
            f("route_excess"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.local_jobs",
        channel: Channel::Checkpoint,
        doc: "Per-(dc, job-class) local FIFO contents.",
        required: &[
            u("dc"),
            u("job"),
            s("arrivals"),
            s("serviceable"),
            s("remaining"),
        ],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.local_queues",
        channel: Channel::Checkpoint,
        doc: "One data center's local queue lengths.",
        required: &[u("dc"), s("values")],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.queues",
        channel: Channel::Checkpoint,
        doc: "Central queue lengths at the cut.",
        required: &[s("central")],
        optional: &[],
    },
    EventSchema {
        name: "ckpt.series",
        channel: Channel::Checkpoint,
        doc: "One recorded time series (scalar or indexed family).",
        required: &[s("name"), s("values")],
        optional: &[u("index")],
    },
    EventSchema {
        name: "ckpt.tracker_dc",
        channel: Channel::Checkpoint,
        doc: "Per-DC completion and delay tracker state.",
        required: &[u("dc"), u("completed"), s("delay_sum"), s("delay_samples")],
        optional: &[],
    },
];

/// Looks up an event schema by name.
pub fn lookup(name: &str) -> Option<&'static EventSchema> {
    EVENTS.iter().find(|schema| schema.name == name)
}

/// The registered names on one channel, in registry order.
pub fn names(channel: Channel) -> impl Iterator<Item = &'static str> {
    EVENTS
        .iter()
        .filter(move |schema| schema.channel == channel)
        .map(|schema| schema.name)
}

fn placeholder(field: &FieldSpec) -> Value {
    match field.kind {
        FieldKind::U64 => Value::U64(1),
        FieldKind::I64 => Value::I64(-1),
        FieldKind::F64 => Value::F64(1.5),
        FieldKind::Bool => Value::Bool(true),
        FieldKind::Str => Value::Str(format!("synth_{}", field.name)),
    }
}

/// Builds a placeholder [`Event`] straight from a schema: every required
/// field (and, when `include_optional`, every optional field) set to a
/// deterministic dummy value of the declared kind.
///
/// Consumers use this to prove, in fixture tests, that their parsers
/// accept exactly what the registry declares — see
/// `grefar-metrics`' and `grefar-report`'s registry-sync tests.
pub fn synthesize(schema: &EventSchema, include_optional: bool) -> Event {
    let mut event = Event::new(schema.name);
    for field in schema.required {
        event = event.field(field.name, placeholder(field));
    }
    if include_optional {
        for field in schema.optional {
            event = event.field(field.name, placeholder(field));
        }
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique_and_sorted_within_channel() {
        for channel in [Channel::Telemetry, Channel::Checkpoint] {
            let names: Vec<&str> = names(channel).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(names, sorted, "{channel:?} names must be unique and sorted");
            assert!(!names.is_empty());
        }
    }

    #[test]
    fn checkpoint_prefix_matches_channel() {
        for schema in EVENTS {
            assert_eq!(
                schema.name.starts_with("ckpt."),
                schema.channel == Channel::Checkpoint,
                "{} channel / prefix mismatch",
                schema.name
            );
        }
    }

    #[test]
    fn field_sets_are_disjoint_and_unique() {
        for schema in EVENTS {
            let mut seen: Vec<&str> = Vec::new();
            for field in schema.required.iter().chain(schema.optional) {
                assert!(
                    !seen.contains(&field.name),
                    "{}: duplicate field {}",
                    schema.name,
                    field.name
                );
                seen.push(field.name);
            }
            assert!(!schema.doc.is_empty(), "{}: missing doc", schema.name);
        }
    }

    #[test]
    fn lookup_finds_every_event() {
        for schema in EVENTS {
            assert_eq!(lookup(schema.name).map(|s| s.name), Some(schema.name));
        }
        assert!(lookup("no.such.event").is_none());
    }

    #[test]
    fn synthesized_events_carry_declared_fields() {
        let schema = lookup("slot").unwrap();
        let event = synthesize(schema, false);
        assert_eq!(event.name(), "slot");
        assert_eq!(event.fields().len(), schema.required.len());
        for field in schema.required {
            assert!(event.get(field.name).is_some(), "missing {}", field.name);
        }
        let full = synthesize(lookup("theory.bounds").unwrap(), true);
        assert!(full.get("stale_slots").is_some());
        assert!(full.get("stale_queue_bound").is_some());
    }
}
