//! Hierarchical span profiling with flamegraph export.
//!
//! [`SpanProfiler`] is an [`Observer`] that consumes the `span_enter` /
//! `span_exit` / `span_leaf` hooks and attributes time to the full call
//! path (`slot;decide;fw.iter`, `;`-joined). Two clocks are supported:
//!
//! * [`SpanClock::Logical`] — a counter that advances by one on every
//!   span transition (and by `count` on [`span_leaf`](Observer::span_leaf)).
//!   Fully deterministic: identical runs produce byte-identical profiles,
//!   which the CI folded-stack determinism check relies on.
//! * [`SpanClock::Wall`] — microseconds of monotonic wall time, for real
//!   profiling runs.
//!
//! The profiler stays silent during the run (`enabled()` is `false`, so it
//! never forces event construction on hot paths); after the run,
//! [`emit_into`](SpanProfiler::emit_into) flushes one `profile.span` event
//! per distinct path, and [`folded`](SpanProfiler::folded) renders the
//! standard folded-stack format (`path self_value` lines) consumable by
//! inferno / speedscope / `flamegraph.pl`.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::event::Event;
use crate::observer::Observer;

/// The clock a [`SpanProfiler`] attributes spans against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanClock {
    /// Deterministic: one tick per span transition. Values are reported in
    /// `total_ticks` / `self_ticks` fields and survive the determinism
    /// diff unchanged.
    Logical,
    /// Monotonic wall time in microseconds, reported in `total_us` /
    /// `self_us` fields (ignored by the determinism diff like every other
    /// `_us` field).
    Wall,
}

impl SpanClock {
    /// Parses the CLI spelling (`"logical"` / `"wall"`).
    pub fn parse(text: &str) -> Option<SpanClock> {
        match text {
            "logical" => Some(SpanClock::Logical),
            "wall" => Some(SpanClock::Wall),
            _ => None,
        }
    }

    /// The CLI / event-field spelling.
    pub fn label(&self) -> &'static str {
        match self {
            SpanClock::Logical => "logical",
            SpanClock::Wall => "wall",
        }
    }
}

/// Accumulated attribution for one distinct span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Times the path was entered (or leaf invocations).
    pub count: u64,
    /// Inclusive time: everything between enter and exit.
    pub total: u64,
    /// Exclusive time: `total` minus the children's inclusive time.
    pub self_time: u64,
}

struct Frame {
    path: String,
    start: u64,
    child_time: u64,
}

/// An [`Observer`] that builds a hierarchical span profile; see the
/// [module docs](self).
pub struct SpanProfiler {
    clock: SpanClock,
    base: Instant,
    ticks: u64,
    stack: Vec<Frame>,
    stats: BTreeMap<String, SpanStat>,
    unbalanced_exits: u64,
}

impl SpanProfiler {
    /// A fresh profiler on the given clock.
    pub fn new(clock: SpanClock) -> Self {
        SpanProfiler {
            clock,
            base: Instant::now(),
            ticks: 0,
            stack: Vec::new(),
            stats: BTreeMap::new(),
            unbalanced_exits: 0,
        }
    }

    /// The clock this profiler runs on.
    pub fn clock(&self) -> SpanClock {
        self.clock
    }

    fn now(&mut self) -> u64 {
        match self.clock {
            SpanClock::Logical => {
                self.ticks += 1;
                self.ticks
            }
            SpanClock::Wall => self.base.elapsed().as_micros() as u64,
        }
    }

    /// The accumulated per-path statistics, in path order. Open frames are
    /// not included until their `span_exit`.
    pub fn stats(&self) -> &BTreeMap<String, SpanStat> {
        &self.stats
    }

    /// Renders the standard folded-stack flamegraph format: one
    /// `path self_value` line per path with non-zero self time (plus
    /// count-only leaves), in deterministic path order.
    pub fn folded(&self) -> String {
        folded_from(
            self.stats
                .iter()
                .map(|(path, stat)| (path.as_str(), stat.self_time)),
        )
    }

    /// Flushes one `profile.span` event per distinct path into `obs`, in
    /// deterministic path order. Call after the run, with the profiler
    /// detached from the live observer stack. Any still-open frames are
    /// force-closed first so their time is not lost.
    pub fn emit_into(&mut self, obs: &mut dyn Observer) {
        // Leak protection: close whatever instrumentation left open so its
        // time is attributed rather than lost (exit_frame pops by position,
        // the name is advisory).
        while !self.stack.is_empty() {
            self.exit_frame("");
        }
        if !obs.enabled() {
            return;
        }
        for (path, stat) in &self.stats {
            let mut event = Event::new("profile.span")
                .field("stack", path.clone())
                .field("clock", self.clock.label())
                .field("count", stat.count)
                .field("span_id", span_id(path));
            if let Some(parent) = span_parent(path) {
                event = event.field("parent_id", span_id(parent));
            }
            event = match self.clock {
                SpanClock::Logical => event
                    .field("total_ticks", stat.total)
                    .field("self_ticks", stat.self_time),
                SpanClock::Wall => event
                    .field("total_us", stat.total)
                    .field("self_us", stat.self_time),
            };
            obs.record_event(event);
        }
        if self.unbalanced_exits > 0 {
            obs.record_event(
                Event::new("profile.span")
                    .field("stack", "<unbalanced>")
                    .field("clock", self.clock.label())
                    .field("count", self.unbalanced_exits),
            );
        }
    }

    fn exit_frame(&mut self, _name: &str) {
        let now = self.now();
        let Some(frame) = self.stack.pop() else {
            self.unbalanced_exits += 1;
            return;
        };
        let total = now.saturating_sub(frame.start);
        let stat = self.stats.entry(frame.path).or_default();
        stat.count += 1;
        stat.total += total;
        stat.self_time += total.saturating_sub(frame.child_time);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_time += total;
        }
    }
}

/// A stable, deterministic identifier for a span path: FNV-1a over the
/// `;`-joined path string. The same path hashes to the same id in every
/// run and process, which is what makes exported traces byte-reproducible
/// and lets offline tooling correlate `profile.span` events with the
/// Perfetto export without any shared state.
pub fn span_id(path: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // Reserve 0 so consumers can use it as "no parent".
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// The parent prefix of a `;`-joined span path, if any.
pub fn span_parent(path: &str) -> Option<&str> {
    path.rsplit_once(';').map(|(parent, _)| parent)
}

/// Renders folded-stack lines from `(path, self_value)` pairs.
pub fn folded_from<'a>(stats: impl Iterator<Item = (&'a str, u64)>) -> String {
    let mut out = String::new();
    for (path, self_value) in stats {
        out.push_str(path);
        out.push(' ');
        out.push_str(&self_value.to_string());
        out.push('\n');
    }
    out
}

impl Observer for SpanProfiler {
    /// `false`: the profiler wants spans, not events, so event-guarded hot
    /// paths stay untouched when only a profiler is attached.
    fn enabled(&self) -> bool {
        false
    }

    fn record_event(&mut self, _event: Event) {}

    fn profiling(&self) -> bool {
        true
    }

    fn span_enter(&mut self, name: &'static str) {
        let start = self.now();
        let path = match self.stack.last() {
            Some(parent) => {
                let mut p = String::with_capacity(parent.path.len() + 1 + name.len());
                p.push_str(&parent.path);
                p.push(';');
                p.push_str(name);
                p
            }
            None => name.to_string(),
        };
        self.stack.push(Frame {
            path,
            start,
            child_time: 0,
        });
    }

    fn span_exit(&mut self, name: &'static str) {
        self.exit_frame(name);
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        if count == 0 {
            return;
        }
        if self.clock == SpanClock::Logical {
            self.ticks += count;
        }
        let path = match self.stack.last() {
            Some(parent) => format!("{};{name}", parent.path),
            None => name.to_string(),
        };
        let ticks = match self.clock {
            SpanClock::Logical => count,
            SpanClock::Wall => 0,
        };
        let stat = self.stats.entry(path).or_default();
        stat.count += count;
        stat.total += ticks;
        stat.self_time += ticks;
        if self.clock == SpanClock::Logical {
            if let Some(parent) = self.stack.last_mut() {
                parent.child_time += ticks;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonlSink;

    fn drive(p: &mut SpanProfiler) {
        for _ in 0..3 {
            p.span_enter("slot");
            p.span_enter("decide");
            p.span_leaf("fw.iter", 5);
            p.span_exit("decide");
            p.span_enter("queue.update");
            p.span_exit("queue.update");
            p.span_exit("slot");
        }
    }

    #[test]
    fn logical_clock_attribution() {
        let mut p = SpanProfiler::new(SpanClock::Logical);
        drive(&mut p);
        let stats = p.stats();
        let decide = stats["slot;decide"];
        assert_eq!(decide.count, 3);
        // Per visit: enter at tick e, leaf advances 5, exit observes e+6 —
        // total 6, of which 5 belong to the leaf child, so self = 1.
        assert_eq!(decide.total, 18);
        assert_eq!(decide.self_time, 3);
        let fw = stats["slot;decide;fw.iter"];
        assert_eq!(fw.count, 15);
        assert_eq!(fw.total, 15);
        let slot = stats["slot"];
        assert_eq!(slot.count, 3);
        assert!(slot.self_time < slot.total);
    }

    #[test]
    fn folded_output_is_deterministic() {
        let mut a = SpanProfiler::new(SpanClock::Logical);
        let mut b = SpanProfiler::new(SpanClock::Logical);
        drive(&mut a);
        drive(&mut b);
        assert_eq!(a.folded(), b.folded());
        assert!(a.folded().contains("slot;decide;fw.iter 15\n"));
    }

    #[test]
    fn emit_into_writes_profile_span_events() {
        let mut p = SpanProfiler::new(SpanClock::Logical);
        drive(&mut p);
        let mut sink = JsonlSink::new(Vec::new());
        p.emit_into(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = crate::json::parse_lines(&text).unwrap();
        assert_eq!(events.len(), 4); // slot, decide, fw.iter, queue.update
        assert!(events
            .iter()
            .all(|e| e["event"].as_str() == Some("profile.span")));
        assert!(events
            .iter()
            .all(|e| e["clock"].as_str() == Some("logical")));
        assert!(events.iter().all(|e| e["total_ticks"].as_f64().is_some()));
    }

    #[test]
    fn wall_clock_reports_us_fields() {
        let mut p = SpanProfiler::new(SpanClock::Wall);
        p.span_enter("slot");
        p.span_exit("slot");
        let mut sink = JsonlSink::new(Vec::new());
        p.emit_into(&mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = crate::json::parse_lines(&text).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0]["total_us"].as_f64().is_some());
        assert!(events[0].get("total_ticks").is_none());
    }

    #[test]
    fn span_ids_are_stable_and_parent_linked() {
        assert_eq!(span_id("slot;decide"), span_id("slot;decide"));
        assert_ne!(span_id("slot"), span_id("slot;decide"));
        assert_eq!(span_parent("slot;decide;fw.iter"), Some("slot;decide"));
        assert_eq!(span_parent("slot"), None);

        // Both clocks must attach the trace-ID fields, and a child's
        // parent_id must equal its parent's span_id.
        for clock in [SpanClock::Logical, SpanClock::Wall] {
            let mut p = SpanProfiler::new(clock);
            drive(&mut p);
            let mut sink = JsonlSink::new(Vec::new());
            p.emit_into(&mut sink);
            let text = String::from_utf8(sink.into_inner()).unwrap();
            let events = crate::json::parse_lines(&text).unwrap();
            assert!(events.iter().all(|e| e["span_id"].as_f64().is_some()));
            let decide = events
                .iter()
                .find(|e| e["stack"].as_str() == Some("slot;decide"))
                .unwrap();
            assert_eq!(decide["parent_id"].as_f64(), Some(span_id("slot") as f64));
            let root = events
                .iter()
                .find(|e| e["stack"].as_str() == Some("slot"))
                .unwrap();
            assert!(root.get("parent_id").is_none());
        }
    }

    #[test]
    fn open_frames_are_closed_on_emit() {
        let mut p = SpanProfiler::new(SpanClock::Logical);
        p.span_enter("slot");
        p.span_enter("decide");
        let mut sink = JsonlSink::new(Vec::new());
        p.emit_into(&mut sink);
        assert_eq!(p.stats().len(), 2);
    }

    #[test]
    fn unbalanced_exit_is_counted_not_fatal() {
        let mut p = SpanProfiler::new(SpanClock::Logical);
        p.span_exit("ghost");
        p.span_enter("slot");
        p.span_exit("slot");
        assert_eq!(p.unbalanced_exits, 1);
        assert_eq!(p.stats()["slot"].count, 1);
    }
}
