//! `grefar-obs` — structured telemetry for the GreFar workspace.
//!
//! The paper's argument is a set of per-slot time series (energy `e(t)`,
//! fairness `f(t)`, `O(V)` queue bounds), yet a simulation run used to be
//! observable only through its final [`SimulationReport`]. This crate adds
//! a first-class instrumentation seam with **zero external dependencies**:
//!
//! * [`Event`] — a named, flat record of typed fields ([`Value`]), with a
//!   hand-rolled JSON serializer (no serde);
//! * [`Observer`] — the sink trait: structured events plus
//!   counter / gauge / histogram primitives and duration recording;
//! * [`NullObserver`] — the default sink; reports `enabled() == false` so
//!   instrumented hot paths can skip event construction entirely;
//! * [`MemoryObserver`] — in-memory aggregation: event counts, counters,
//!   gauges and [`Histogram`]s with [`Quantiles`], plus a rendered
//!   end-of-run [summary table](MemoryObserver::summary);
//! * [`JsonlSink`] — line-delimited JSON export of the event stream;
//! * [`Tee`] — fan-out to two sinks (e.g. memory aggregation + JSONL);
//! * [`Timer`] — monotonic wall-clock spans for per-solve / per-slot
//!   timing histograms;
//! * [`SpanProfiler`] — hierarchical span attribution over the
//!   `span_enter` / `span_exit` / `span_leaf` observer hooks, with a
//!   deterministic logical clock ([`SpanClock`]) and folded-stack
//!   flamegraph export;
//! * [`json`] — a minimal parser for the emitted JSONL (round-trip tests,
//!   offline tooling).
//!
//! # Event schema used by the workspace
//!
//! The instrumented layers emit (see DESIGN.md "Observability"):
//!
//! | event | emitted by | fields |
//! |---|---|---|
//! | `run.start` | `Simulation::run_with_observer` | `scheduler`, `horizon`, `data_centers`, `job_classes` |
//! | `slot` | `Simulation::run_with_observer` | `t`, `queue_central`, `queue_local`, `queue_max`, `energy`, `fairness`, `arrivals`, `dropped`, `wall_us` |
//! | `grefar.decide` | `GreFar::decide_observed` | `t`, `v`, `beta`, `objective`, `drift`, `penalty`, `routed`, `processed`, `solver`, `fw_iterations`, `fw_gap`, `wall_us` |
//! | `lp.solve` | `MpcScheduler::decide_observed` | `t`, `vars`, `rows`, `pivots_phase1`, `pivots_phase2`, `degenerate_pivots`, `bound_flips`, `wall_us` |
//! | `run.end` | `Simulation::run_with_observer` | `slots`, `completed`, `dropped`, `wall_us` |
//! | `sweep.run` | `sweep::run_all_observed` | `label` (marks the start of one labeled run) |
//! | `checkpoint.write` | `Simulation::drive` | `t` (slot the checkpoint cut at) |
//! | `profile.span` | [`SpanProfiler::emit_into`] | `stack`, `clock`, `count`, then `total_ticks`/`self_ticks` (logical) or `total_us`/`self_us` (wall) |
//! | `health.snapshot` | `grefar_metrics::MetricsLayer` | `t`, `verdict`, `queue_peak`, `queue_bound`, `occupancy_pct`, `degraded_slots`, `stale_events`, `open_breakers`, `invariant_violations`, `checkpoint_age_slots` |
//!
//! Timing fields are suffixed `_us` (microseconds); everything else is
//! deterministic for a fixed seed, which the determinism suite asserts by
//! comparing two runs' streams with `_us` fields stripped.
//!
//! Every JSONL line additionally leads with `"schema":N` — the wire-format
//! version ([`SCHEMA_VERSION`]) that offline consumers (`grefar-report`)
//! check before interpreting a stream.
//!
//! # Example
//!
//! ```
//! use grefar_obs::{Event, JsonlSink, MemoryObserver, Observer, Tee, Timer};
//!
//! let mut memory = MemoryObserver::new();
//! let mut sink = JsonlSink::new(Vec::new());
//! {
//!     let mut obs = Tee::new(&mut memory, &mut sink);
//!     let timer = Timer::start();
//!     obs.record_event(Event::new("slot").field("t", 0_u64).field("energy", 1.5));
//!     obs.record_duration("slot.wall_us", timer.elapsed());
//!     obs.add_counter("slots", 1);
//! }
//! assert_eq!(memory.event_count("slot"), 1);
//! assert_eq!(memory.counter("slots"), 1);
//! let line = String::from_utf8(sink.into_inner()).unwrap();
//! assert!(line.starts_with("{\"schema\":1,\"event\":\"slot\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod histogram;
pub mod json;
mod jsonl;
mod memory;
mod observer;
mod span;
mod timer;

pub use event::{Event, Value};

/// The JSONL wire-format version stamped onto every line written by
/// [`JsonlSink`]. Bump when an emitted event's meaning changes
/// incompatibly; consumers must reject streams with a larger version.
pub const SCHEMA_VERSION: u32 = 1;
pub use histogram::{Histogram, Quantiles};
pub use jsonl::JsonlSink;
pub use memory::MemoryObserver;
pub use observer::{NullObserver, Observer, Tee};
pub use span::{folded_from, SpanClock, SpanProfiler, SpanStat};
pub use timer::Timer;
