//! `grefar-obs` — structured telemetry for the GreFar workspace.
//!
//! The paper's argument is a set of per-slot time series (energy `e(t)`,
//! fairness `f(t)`, `O(V)` queue bounds), yet a simulation run used to be
//! observable only through its final [`SimulationReport`]. This crate adds
//! a first-class instrumentation seam with **zero external dependencies**:
//!
//! * [`Event`] — a named, flat record of typed fields ([`Value`]), with a
//!   hand-rolled JSON serializer (no serde);
//! * [`Observer`] — the sink trait: structured events plus
//!   counter / gauge / histogram primitives and duration recording;
//! * [`NullObserver`] — the default sink; reports `enabled() == false` so
//!   instrumented hot paths can skip event construction entirely;
//! * [`MemoryObserver`] — in-memory aggregation: event counts, counters,
//!   gauges and [`Histogram`]s with [`Quantiles`], plus a rendered
//!   end-of-run [summary table](MemoryObserver::summary);
//! * [`JsonlSink`] — line-delimited JSON export of the event stream;
//! * [`Tee`] — fan-out to two sinks (e.g. memory aggregation + JSONL);
//! * [`Timer`] — monotonic wall-clock spans for per-solve / per-slot
//!   timing histograms;
//! * [`SpanProfiler`] — hierarchical span attribution over the
//!   `span_enter` / `span_exit` / `span_leaf` observer hooks, with a
//!   deterministic logical clock ([`SpanClock`]) and folded-stack
//!   flamegraph export;
//! * [`json`] — a minimal parser for the emitted JSONL (round-trip tests,
//!   offline tooling).
//!
//! # Event schema used by the workspace
//!
//! The full event contract — every name, its channel, and its
//! required/optional fields — is declared as data in [`schema::EVENTS`].
//! This file used to carry a hand-maintained table of the same facts; it
//! drifted (it claimed a `degraded_slots` field the code never emitted),
//! so the registry is now the single source of truth. `grefar-verify`'s
//! `event-schema` pass statically checks every construction site and
//! every consumer `match` against it (see DESIGN.md, "Correctness
//! tooling"), and [`schema::synthesize`] lets consumers fixture-test
//! their parsers against the declared contract.
//!
//! Timing fields are suffixed `_us` (microseconds); everything else is
//! deterministic for a fixed seed, which the determinism suite asserts by
//! comparing two runs' streams with `_us` fields stripped.
//!
//! Every JSONL line additionally leads with `"schema":N` — the wire-format
//! version ([`SCHEMA_VERSION`]) that offline consumers (`grefar-report`)
//! check before interpreting a stream.
//!
//! # Example
//!
//! ```
//! use grefar_obs::{Event, JsonlSink, MemoryObserver, Observer, Tee, Timer};
//!
//! let mut memory = MemoryObserver::new();
//! let mut sink = JsonlSink::new(Vec::new());
//! {
//!     let mut obs = Tee::new(&mut memory, &mut sink);
//!     let timer = Timer::start();
//!     obs.record_event(Event::new("slot").field("t", 0_u64).field("energy", 1.5));
//!     obs.record_duration("slot.wall_us", timer.elapsed());
//!     obs.add_counter("slots", 1);
//! }
//! assert_eq!(memory.event_count("slot"), 1);
//! assert_eq!(memory.counter("slots"), 1);
//! let line = String::from_utf8(sink.into_inner()).unwrap();
//! assert!(line.starts_with("{\"schema\":1,\"event\":\"slot\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod histogram;
pub mod json;
mod jsonl;
mod memory;
mod observer;
pub mod schema;
mod span;
mod timer;

pub use event::{Event, Value};

/// The JSONL wire-format version stamped onto every line written by
/// [`JsonlSink`]. Bump when an emitted event's meaning changes
/// incompatibly; consumers must reject streams with a larger version.
pub const SCHEMA_VERSION: u32 = 1;
pub use histogram::{Histogram, Quantiles};
pub use jsonl::JsonlSink;
pub use memory::MemoryObserver;
pub use observer::{NullObserver, Observer, Tee};
pub use span::{folded_from, span_id, span_parent, SpanClock, SpanProfiler, SpanStat};
pub use timer::Timer;
