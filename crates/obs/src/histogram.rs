//! Sample-holding histograms with empirical quantiles.

/// Summary quantiles of an empirical distribution.
///
/// Field-for-field compatible with `grefar_sim::stats::Quantiles` (the
/// "type 7" linear-interpolation estimator); the cross-crate parity test
/// lives in the workspace-level test suite.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Number of samples summarized.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// A histogram that keeps its raw samples (simulation-scale cardinalities:
/// one sample per slot or per solve, so memory stays small) and summarizes
/// them on demand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sum: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample; silently ignores non-finite values.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sum += value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    /// The raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The `q`-quantile (type 7 estimator).
    ///
    /// Edge cases are defined, not accidental: an **empty** histogram has
    /// no order statistics, so every quantile is `NaN` (check
    /// [`count`](Self::count) first; `NaN` cannot be mistaken for a real
    /// sample, which a silent `0.0` could). A **single-sample** histogram
    /// answers every quantile — including `p0` and `p100` — with that
    /// sample.
    ///
    /// # Panics
    /// Panics if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        quantile_sorted(&sorted, q)
    }

    /// The full quantile summary. When empty, returns
    /// [`Quantiles::default()`] — `count == 0` marks the summary as
    /// vacuous and its quantile fields as placeholders (kept at `0.0`, not
    /// `NaN`, so summaries stay comparable with `==`); single-sample
    /// summaries report that sample for every quantile and the max.
    pub fn quantiles(&self) -> Quantiles {
        if self.samples.is_empty() {
            return Quantiles::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Quantiles {
            count: sorted.len(),
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// The `q`-quantile of an ascending-sorted non-empty slice, interpolating
/// linearly between order statistics.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let position = q * (n - 1) as f64;
    let lo = position.floor() as usize;
    let hi = position.ceil() as usize;
    let frac = position - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let q = h.quantiles();
        assert_eq!(q.count, 100);
        assert!((q.p50 - 50.5).abs() < 1e-12);
        assert!((q.p90 - 90.1).abs() < 1e-9);
        assert!((q.p99 - 99.01).abs() < 1e-9);
        assert_eq!(q.max, 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_quantile_is_nan_and_summary_is_vacuous() {
        let h = Histogram::new();
        // No samples: every quantile is NaN — defined, and impossible to
        // confuse with a real observation.
        assert!(h.quantile(0.5).is_nan());
        assert!(h.quantile(0.95).is_nan());
        assert!(h.quantile(0.99).is_nan());
        assert!(h.quantile(0.0).is_nan());
        // The summary stays `==`-comparable: count 0 marks it vacuous.
        assert_eq!(h.quantiles(), Quantiles::default());
        assert_eq!(h.quantiles().count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_answers_every_quantile_with_the_sample() {
        let mut h = Histogram::new();
        h.record(7.25);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.25, "q = {q}");
        }
        let s = h.quantiles();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 7.25);
        assert_eq!(s.p95, 7.25);
        assert_eq!(s.p99, 7.25);
        assert_eq!(s.max, 7.25);
    }

    #[test]
    fn two_samples_interpolate_linearly() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(20.0);
        // Type 7: position = q·(n−1), so p50 is the midpoint and the tails
        // interpolate toward the max.
        assert_eq!(h.quantile(0.5), 15.0);
        let s = h.quantiles();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, 15.0);
        assert!((s.p95 - 19.5).abs() < 1e-12);
        assert!((s.p99 - 19.9).abs() < 1e-12);
        assert_eq!(s.max, 20.0);
    }

    #[test]
    fn nonfinite_samples_are_dropped() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1.0);
    }

    #[test]
    fn unsorted_input() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantiles().max, 5.0);
    }
}
