//! Monotonic wall-clock spans.

use std::time::{Duration, Instant};

/// A started monotonic timer; pairs with
/// [`Observer::record_duration`](crate::Observer::record_duration).
///
/// ```
/// use grefar_obs::Timer;
///
/// let timer = Timer::start();
/// let elapsed = timer.elapsed();
/// assert!(elapsed >= std::time::Duration::ZERO);
/// assert!(timer.elapsed_micros() as u128 >= elapsed.as_micros());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`start`](Timer::start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole microseconds (saturating at `u64::MAX`).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let timer = Timer::start();
        let a = timer.elapsed();
        let b = timer.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn micros_tracks_duration() {
        let timer = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(timer.elapsed_micros() >= 1_000);
    }
}
