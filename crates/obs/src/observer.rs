//! The `Observer` sink trait, the no-op default, and the `Tee` combinator.

use std::time::Duration;

use crate::event::Event;

/// A telemetry sink.
///
/// Instrumented code talks to `&mut dyn Observer`. All methods have no-op
/// defaults except [`record_event`](Observer::record_event), so simple
/// sinks (like a pure JSONL writer) only implement what they care about.
///
/// Hot paths should guard event *construction* behind
/// [`enabled`](Observer::enabled):
///
/// ```
/// use grefar_obs::{Event, Observer};
///
/// fn per_slot(obs: &mut dyn Observer, t: u64, energy: f64) {
///     if obs.enabled() {
///         obs.record_event(Event::new("slot").field("t", t).field("energy", energy));
///     }
/// }
/// ```
pub trait Observer {
    /// Whether this sink wants events at all. [`NullObserver`] returns
    /// `false`; callers use this to skip building [`Event`]s (and taking
    /// timestamps) on hot paths.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one structured event.
    fn record_event(&mut self, event: Event);

    /// Adds `delta` to the named monotonic counter.
    fn add_counter(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets the named gauge to its latest value.
    fn set_gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records one sample into the named histogram.
    fn record_value(&mut self, _name: &'static str, _value: f64) {}

    /// Records a wall-clock duration into the named histogram, in
    /// microseconds (by convention the name ends in `_us`).
    fn record_duration(&mut self, name: &'static str, duration: Duration) {
        self.record_value(name, duration.as_secs_f64() * 1e6);
    }

    /// Whether this sink attributes hierarchical span timings
    /// ([`SpanProfiler`](crate::SpanProfiler) opts in). Off by default, so
    /// instrumented code can skip building span arguments entirely; the
    /// `span_*` calls themselves are no-ops on every other sink.
    fn profiling(&self) -> bool {
        false
    }

    /// Opens a named span nested under the innermost open span.
    fn span_enter(&mut self, _name: &'static str) {}

    /// Closes the innermost open span (named `name`, by convention).
    fn span_exit(&mut self, _name: &'static str) {}

    /// Records `count` un-timed leaf invocations under the innermost open
    /// span — for work reported in bulk after the fact (e.g. simplex
    /// pivots), where per-invocation enter/exit would be too hot.
    fn span_leaf(&mut self, _name: &'static str, _count: u64) {}
}

/// Forwarding impl so combinators generic over an *owned* sink
/// (e.g. `grefar_metrics::MetricsLayer<I>`) also accept `&mut sink`.
impl<T: Observer + ?Sized> Observer for &mut T {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record_event(&mut self, event: Event) {
        (**self).record_event(event);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        (**self).add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        (**self).set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        (**self).record_value(name, value);
    }

    fn record_duration(&mut self, name: &'static str, duration: Duration) {
        (**self).record_duration(name, duration);
    }

    fn profiling(&self) -> bool {
        (**self).profiling()
    }

    fn span_enter(&mut self, name: &'static str) {
        (**self).span_enter(name);
    }

    fn span_exit(&mut self, name: &'static str) {
        (**self).span_exit(name);
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        (**self).span_leaf(name, count);
    }
}

/// The default sink: drops everything and reports `enabled() == false`,
/// so guarded instrumentation costs one virtual call per site.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn record_event(&mut self, _event: Event) {}
}

/// Fans every call out to two sinks (events are cloned for the first).
///
/// Typical use: aggregate in a [`MemoryObserver`](crate::MemoryObserver)
/// for the end-of-run summary while streaming the same events to a
/// [`JsonlSink`](crate::JsonlSink).
pub struct Tee<'a> {
    first: &'a mut dyn Observer,
    second: &'a mut dyn Observer,
}

impl<'a> Tee<'a> {
    /// Combines two sinks.
    pub fn new(first: &'a mut dyn Observer, second: &'a mut dyn Observer) -> Self {
        Tee { first, second }
    }
}

impl Observer for Tee<'_> {
    fn enabled(&self) -> bool {
        self.first.enabled() || self.second.enabled()
    }

    fn record_event(&mut self, event: Event) {
        self.first.record_event(event.clone());
        self.second.record_event(event);
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.first.add_counter(name, delta);
        self.second.add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.first.set_gauge(name, value);
        self.second.set_gauge(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.first.record_value(name, value);
        self.second.record_value(name, value);
    }

    fn profiling(&self) -> bool {
        self.first.profiling() || self.second.profiling()
    }

    fn span_enter(&mut self, name: &'static str) {
        self.first.span_enter(name);
        self.second.span_enter(name);
    }

    fn span_exit(&mut self, name: &'static str) {
        self.first.span_exit(name);
        self.second.span_exit(name);
    }

    fn span_leaf(&mut self, name: &'static str, count: u64) {
        self.first.span_leaf(name, count);
        self.second.span_leaf(name, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryObserver;

    #[test]
    fn null_observer_is_disabled() {
        let obs = NullObserver;
        assert!(!obs.enabled());
    }

    #[test]
    fn tee_reaches_both_sinks() {
        let mut a = MemoryObserver::new();
        let mut b = MemoryObserver::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            assert!(tee.enabled());
            tee.record_event(Event::new("slot"));
            tee.add_counter("slots", 2);
            tee.set_gauge("queue", 4.0);
            tee.record_value("wall_us", 10.0);
        }
        for obs in [&a, &b] {
            assert_eq!(obs.event_count("slot"), 1);
            assert_eq!(obs.counter("slots"), 2);
            assert_eq!(obs.gauge("queue"), Some(4.0));
            assert_eq!(obs.histogram("wall_us").unwrap().count(), 1);
        }
    }

    #[test]
    fn tee_with_null_side_still_enabled() {
        let mut null = NullObserver;
        let mut mem = MemoryObserver::new();
        let tee = Tee::new(&mut null, &mut mem);
        assert!(tee.enabled());
    }
}
