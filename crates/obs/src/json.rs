//! A minimal parser for the JSONL this crate emits.
//!
//! Scope: flat objects whose values are numbers, strings, booleans or
//! `null` — exactly what [`Event::to_json`](crate::Event::to_json)
//! produces. Used by round-trip tests and offline tooling; not a general
//! JSON parser (no nesting, no arrays).

use std::collections::BTreeMap;

/// A parsed flat JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line into an ordered key → value map.
///
/// Returns `Err` with a position-tagged message on malformed input,
/// including duplicate keys (which would silently lose data).
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut parser = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.expect(b'{')?;
    let mut map = BTreeMap::new();
    parser.skip_ws();
    if parser.peek() == Some(b'}') {
        parser.pos += 1;
    } else {
        loop {
            parser.skip_ws();
            let key = parser.parse_string()?;
            parser.skip_ws();
            parser.expect(b':')?;
            parser.skip_ws();
            let value = parser.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?} at byte {}", parser.pos));
            }
            parser.skip_ws();
            match parser.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        parser.pos,
                        other.map(char::from)
                    ))
                }
            }
        }
    }
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(map)
}

/// Parses a full JSONL document (one object per non-empty line).
pub fn parse_lines(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_object(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                char::from(want),
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "unexpected value start at byte {}: {:?}",
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs never appear in our output
                        // (events are valid UTF-8); map lone surrogates
                        // to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "invalid escape at byte {}: {:?}",
                            self.pos,
                            other.map(char::from)
                        ))
                    }
                },
                Some(b) if b < 0x80 => out.push(char::from(b)),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy its continuation bytes.
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        if self.bytes.len() < start + 4 {
            return Err(format!("truncated \\u escape at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| format!("invalid \\u escape at byte {start}"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape {text:?} at byte {start}"))?;
        self.pos += 4;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    #[test]
    fn parses_event_output() {
        let e = Event::new("grefar.decide")
            .field("t", 42_u64)
            .field("v", 7.5)
            .field("solver", "greedy")
            .field("fw_gap", f64::NAN)
            .field("ok", true);
        let map = parse_object(&e.to_json()).unwrap();
        assert_eq!(map["event"].as_str(), Some("grefar.decide"));
        assert_eq!(map["t"].as_f64(), Some(42.0));
        assert_eq!(map["v"].as_f64(), Some(7.5));
        assert_eq!(map["solver"].as_str(), Some("greedy"));
        assert_eq!(map["fw_gap"], JsonValue::Null);
        assert_eq!(map["ok"], JsonValue::Bool(true));
    }

    #[test]
    fn escape_roundtrip() {
        let e = Event::new("x").field("s", "a\"b\\c\nd\te\u{1}é");
        let map = parse_object(&e.to_json()).unwrap();
        assert_eq!(map["s"].as_str(), Some("a\"b\\c\nd\te\u{1}é"));
    }

    #[test]
    fn parses_lines_skipping_blanks() {
        let text = "{\"event\":\"a\"}\n\n{\"event\":\"b\",\"n\":-1.5e2}\n";
        let objects = parse_lines(text).unwrap();
        assert_eq!(objects.len(), 2);
        assert_eq!(objects[1]["n"].as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_object("{\"a\":}").is_err());
        assert!(parse_object("{\"a\":1").is_err());
        assert!(parse_object("{\"a\":1}x").is_err());
        assert!(parse_object("[1]").is_err());
        assert!(parse_lines("{\"a\":1}\nnot json\n").is_err());
    }

    #[test]
    fn empty_object() {
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_truncated_lines() {
        // Every prefix of a valid line must fail cleanly, never panic.
        let full = Event::new("slot")
            .field("t", 3_u64)
            .field("s", "a\\nb")
            .to_json();
        for cut in 1..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            assert!(
                parse_object(&full[..cut]).is_err(),
                "prefix {:?} unexpectedly parsed",
                &full[..cut]
            );
        }
        assert!(parse_object("{\"a\":tru").is_err());
        assert!(parse_object("{\"a\":\"x").is_err());
        assert!(parse_object("{\"a\":\"x\\").is_err());
    }

    #[test]
    fn rejects_non_object_lines() {
        for line in ["not json", "42", "\"string\"", "null", "[{\"a\":1}]", ""] {
            assert!(parse_object(line).is_err(), "{line:?} unexpectedly parsed");
        }
        assert!(parse_lines("{\"a\":1}\n[1,2]\n").is_err());
        assert!(parse_lines("{\"a\":1}\n{\"b\":}\n").is_err());
        // Blank lines stay permitted between objects.
        assert_eq!(parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap().len(), 2);
    }

    #[test]
    fn rejects_invalid_unicode_escapes() {
        assert!(parse_object("{\"s\":\"\\uZZZZ\"}").is_err());
        assert!(parse_object("{\"s\":\"\\u12\"}").is_err());
        assert!(parse_object("{\"s\":\"\\u\"}").is_err());
        assert!(parse_object("{\"s\":\"\\x41\"}").is_err());
        // A valid escape still round-trips.
        assert_eq!(
            parse_object("{\"s\":\"\\u0041\"}").unwrap()["s"].as_str(),
            Some("A")
        );
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse_object("{\"a\":1,\"a\":2}").unwrap_err();
        assert!(err.contains("duplicate key"), "unexpected error: {err}");
        assert!(parse_lines("{\"a\":1}\n{\"b\":1,\"b\":1}\n").is_err());
        // Distinct keys are of course fine.
        assert_eq!(parse_object("{\"a\":1,\"b\":2}").unwrap().len(), 2);
    }
}
