//! In-memory aggregation sink with a rendered end-of-run summary.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::histogram::Histogram;
use crate::observer::Observer;

/// Aggregates telemetry in memory: per-name event counts, monotonic
/// counters, last-value gauges, and sample [`Histogram`]s.
///
/// `BTreeMap`s keep iteration (and thus [`summary`](MemoryObserver::summary)
/// output) deterministically ordered.
#[derive(Debug, Default)]
pub struct MemoryObserver {
    event_counts: BTreeMap<&'static str, u64>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MemoryObserver {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many events with this name were recorded.
    pub fn event_count(&self, name: &str) -> u64 {
        self.event_counts.get(name).copied().unwrap_or(0)
    }

    /// Total events recorded across all names.
    pub fn total_events(&self) -> u64 {
        self.event_counts.values().sum()
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Renders a plain-text summary table: event counts, counters, gauges,
    /// then one quantile row per histogram. Empty string when nothing was
    /// recorded.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if !self.event_counts.is_empty() {
            out.push_str("events\n");
            for (name, count) in &self.event_counts {
                out.push_str(&format!("  {name:<28} {count:>10}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<28} {value:>10}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<28} {value:>10.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            out.push_str(&format!(
                "  {:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "", "count", "mean", "p50", "p95", "p99", "max"
            ));
            for (name, hist) in &self.histograms {
                let q = hist.quantiles();
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                    name,
                    q.count,
                    hist.mean(),
                    q.p50,
                    q.p95,
                    q.p99,
                    q.max
                ));
            }
        }
        out
    }
}

impl Observer for MemoryObserver {
    fn record_event(&mut self, event: Event) {
        *self.event_counts.entry(event.name()).or_insert(0) += 1;
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    fn record_value(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_all_primitives() {
        let mut obs = MemoryObserver::new();
        obs.record_event(Event::new("slot").field("t", 0_u64));
        obs.record_event(Event::new("slot").field("t", 1_u64));
        obs.record_event(Event::new("run.end"));
        obs.add_counter("arrivals", 5);
        obs.add_counter("arrivals", 3);
        obs.set_gauge("queue_max", 2.0);
        obs.set_gauge("queue_max", 7.0);
        obs.record_value("slot.wall_us", 10.0);
        obs.record_value("slot.wall_us", 30.0);

        assert_eq!(obs.event_count("slot"), 2);
        assert_eq!(obs.event_count("run.end"), 1);
        assert_eq!(obs.total_events(), 3);
        assert_eq!(obs.counter("arrivals"), 8);
        assert_eq!(obs.gauge("queue_max"), Some(7.0));
        let hist = obs.histogram("slot.wall_us").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.mean(), 20.0);
    }

    #[test]
    fn summary_lists_every_section() {
        let mut obs = MemoryObserver::new();
        assert_eq!(obs.summary(), "");
        obs.record_event(Event::new("slot"));
        obs.add_counter("slots", 1);
        obs.set_gauge("queue_max", 3.5);
        obs.record_value("slot.wall_us", 12.0);
        let summary = obs.summary();
        for needle in ["events", "counters", "gauges", "histogram", "slot.wall_us"] {
            assert!(
                summary.contains(needle),
                "missing {needle:?} in:\n{summary}"
            );
        }
    }
}
