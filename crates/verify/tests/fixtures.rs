//! End-to-end scanner tests on fixture source: each rule must fire on a
//! seeded violation and stay quiet on the clean counterpart. This is the
//! gate's proof that `grefar-verify` actually detects what it claims to.

use grefar_verify::{
    check_source, RULE_DETERMINISM, RULE_DIRECTIVE, RULE_ERRORS_DOC, RULE_FLOAT_EQ, RULE_NO_PANIC,
};

const ALL: &[&str] = &[
    RULE_DETERMINISM,
    RULE_FLOAT_EQ,
    RULE_NO_PANIC,
    RULE_ERRORS_DOC,
];

fn rules_fired(source: &str) -> Vec<&'static str> {
    let mut fired: Vec<&'static str> = check_source(source, ALL).iter().map(|v| v.rule).collect();
    fired.sort_unstable();
    fired.dedup();
    fired
}

#[test]
fn seeded_violations_all_fire() {
    // One violation per rule, in realistic-looking code.
    let source = r#"
use std::collections::HashMap;

/// Pick the cheaper of two rates.
pub fn cheaper(a: f64, b: f64) -> f64 {
    if a == 1.0 { return b; }
    a.min(b)
}

/// Read the first price.
pub fn first(prices: &HashMap<u32, f64>) -> f64 {
    *prices.get(&0).unwrap()
}
"#;
    let fired = rules_fired(source);
    assert!(fired.contains(&RULE_DETERMINISM), "HashMap not flagged");
    assert!(fired.contains(&RULE_FLOAT_EQ), "float == not flagged");
    assert!(fired.contains(&RULE_NO_PANIC), "unwrap() not flagged");
}

#[test]
fn clean_source_is_clean() {
    let source = r#"
use std::collections::BTreeMap;

/// Pick the cheaper of two rates.
pub fn cheaper(a: f64, b: f64) -> f64 {
    if grefar_types::approx_eq(a, 1.0, 1e-12) { return b; }
    a.min(b)
}

/// Read the first price.
///
/// # Errors
/// Returns `None`... wait, this returns Option; no section needed.
pub fn first(prices: &BTreeMap<u32, f64>) -> Option<f64> {
    prices.get(&0).copied()
}
"#;
    assert_eq!(check_source(source, ALL), vec![]);
}

#[test]
fn violation_lines_are_accurate() {
    let source = "fn a() {}\nfn b() { x.unwrap(); }\n";
    let v = check_source(source, &[RULE_NO_PANIC]);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].line, 2);
}

#[test]
fn test_code_is_exempt() {
    let source = r#"
fn helper() -> f64 { 0.0 }

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing() {
        let t = Instant::now();
        assert!(helper() == 0.0);
        let _ = t.elapsed();
        let v: Vec<f64> = vec![1.0];
        assert_eq!(v[0], super::helper().max(1.0));
    }
}
"#;
    assert_eq!(check_source(source, ALL), vec![]);
}

#[test]
fn allow_directive_suppresses_and_requires_justification() {
    // Justified: suppressed.
    let justified = "fn f(a: f64) -> bool {\n    \
        // verify: allow(float-eq): exact sentinel comparison is intended\n    \
        a == 0.0\n}\n";
    assert_eq!(check_source(justified, &[RULE_FLOAT_EQ]), vec![]);

    // Unjustified: the directive itself is a violation AND the rule fires.
    let bare = "fn f(a: f64) -> bool {\n    \
        // verify: allow(float-eq)\n    \
        a == 0.0\n}\n";
    let fired = check_source(bare, &[RULE_FLOAT_EQ]);
    assert!(fired.iter().any(|v| v.rule == RULE_DIRECTIVE));
    assert!(fired.iter().any(|v| v.rule == RULE_FLOAT_EQ));
}

#[test]
fn errors_doc_fires_on_undocumented_result() {
    let source = r#"
/// Parse a rate.
pub fn parse_rate(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| String::from("bad"))
}
"#;
    let fired = rules_fired(source);
    assert_eq!(fired, vec![RULE_ERRORS_DOC]);

    let documented = r#"
/// Parse a rate.
///
/// # Errors
/// Returns a message when `s` is not a number.
pub fn parse_rate(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| String::from("bad"))
}
"#;
    assert_eq!(check_source(documented, ALL), vec![]);
}

#[test]
fn json_output_round_trips_through_lint_diff() {
    // The machine-readable contract: whatever `--format json` renders,
    // `grefar-report lint-diff` must read back verbatim. Seed findings
    // with every escape-worthy character class.
    use grefar_verify::{render_json, sort_findings, Finding, Severity};

    let mut findings = vec![
        Finding {
            file: "crates/lp/src/problem.rs".to_string(),
            line: 66,
            rule: "hot-path-alloc",
            severity: Severity::Error,
            message: "`Vec::new()` allocates in the per-slot call tree".to_string(),
        },
        Finding {
            file: "crates/sim/src/simulation.rs".to_string(),
            line: 0,
            rule: "event-schema",
            severity: Severity::Warning,
            message: "tricky \"quotes\\\", braces {}[], and\nnewline\ttab".to_string(),
        },
    ];
    sort_findings(&mut findings);
    let doc = render_json(&findings);

    let parsed = grefar_report::parse_findings(&doc).expect("lint-diff must parse our output");
    assert_eq!(parsed.len(), findings.len());
    for (ours, theirs) in findings.iter().zip(&parsed) {
        assert_eq!(theirs.file, ours.file);
        assert_eq!(theirs.line, ours.line as u64);
        assert_eq!(theirs.rule, ours.rule);
        assert_eq!(theirs.severity, ours.severity.label());
        assert_eq!(theirs.message, ours.message);
        // Both tools render the same classic text line.
        assert_eq!(theirs.render(), ours.render_text());
    }

    // And the empty document — the healthy-repo baseline — too.
    assert_eq!(
        grefar_report::parse_findings(&render_json(&[])).unwrap(),
        vec![]
    );
}

#[test]
fn strings_and_comments_do_not_trip_rules() {
    let source = r#"
/// Explains that "x.unwrap()" and HashMap appear in prose. Also == here.
pub fn doc_only() -> &'static str {
    // A comment mentioning panic!("nope") and Instant::now().
    "contains x.unwrap() and a == b and HashMap"
}
"#;
    assert_eq!(check_source(source, ALL), vec![]);
}
