//! Findings: severities, file attribution, and machine-readable output.
//!
//! A [`Finding`] is a [`Violation`](crate::rules::Violation) pinned to a
//! workspace-relative file. The driver renders findings either as the
//! classic `file:line: [rule] message` text or — with `--format json` —
//! as one JSON document (schema below) that `grefar-report lint-diff`
//! consumes to diff lint baselines:
//!
//! ```json
//! {
//!   "version": 1,
//!   "tool": "grefar-verify",
//!   "errors": 2,
//!   "warnings": 1,
//!   "findings": [
//!     {"file": "crates/lp/src/problem.rs", "line": 66,
//!      "rule": "hot-path-alloc", "severity": "error",
//!      "message": "`Vec::new()` allocates in the per-slot call tree ..."}
//!   ]
//! }
//! ```
//!
//! Findings are sorted by `(file, line, rule)`; the document is a single
//! flat object so `grefar_obs::json` can parse it back.

/// How bad a finding is. Errors always fail the run; warnings fail only
/// under `--deny-warnings` (which `scripts/check.sh` passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but sometimes legitimate (e.g. a `collect`
    /// whose size hint preallocates in practice).
    Warning,
    /// A contract violation: unregistered event, missing field, heap
    /// allocation in the per-slot tree, panic path in a no-panic scope.
    Error,
}

impl Severity {
    /// The wire label (`"error"` / `"warning"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, attributed to a workspace-relative file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// What was found.
    pub message: String,
}

impl Finding {
    /// The classic one-line text rendering.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}{}] {}",
            self.file,
            self.line,
            self.rule,
            match self.severity {
                Severity::Error => "",
                Severity::Warning => "/warn",
            },
            self.message
        )
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Sorts findings into canonical `(file, line, rule)` order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders the machine-readable findings document (see [module
/// docs](self) for the schema). Input order is preserved — call
/// [`sort_findings`] first for canonical output.
pub fn render_json(findings: &[Finding]) -> String {
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;
    let mut out = String::with_capacity(128 + findings.len() * 128);
    out.push_str(&format!(
        "{{\"version\":1,\"tool\":\"grefar-verify\",\"errors\":{errors},\
         \"warnings\":{warnings},\"findings\":["
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"file\":\"");
        escape_json(&f.file, &mut out);
        out.push_str(&format!("\",\"line\":{},\"rule\":\"", f.line));
        escape_json(f.rule, &mut out);
        out.push_str("\",\"severity\":\"");
        out.push_str(f.severity.label());
        out.push_str("\",\"message\":\"");
        escape_json(&f.message, &mut out);
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/lp/src/problem.rs".to_string(),
                line: 66,
                rule: "hot-path-alloc",
                severity: Severity::Error,
                message: "`Vec::new()` in the per-slot tree".to_string(),
            },
            Finding {
                file: "crates/core/src/solver/greedy.rs".to_string(),
                line: 71,
                rule: "hot-path-alloc",
                severity: Severity::Warning,
                message: "a \"collect\" with\nnewline".to_string(),
            },
        ]
    }

    #[test]
    fn json_document_counts_and_escapes() {
        let mut findings = sample();
        sort_findings(&mut findings);
        let doc = render_json(&findings);
        assert!(doc
            .starts_with("{\"version\":1,\"tool\":\"grefar-verify\",\"errors\":1,\"warnings\":1,"));
        assert!(doc.contains("\\\"collect\\\" with\\nnewline"), "{doc}");
        // Sorted: greedy.rs before problem.rs.
        let greedy = doc.find("greedy.rs").unwrap();
        let problem = doc.find("problem.rs").unwrap();
        assert!(greedy < problem);
    }

    #[test]
    fn empty_document_is_valid() {
        let doc = render_json(&[]);
        assert_eq!(
            doc,
            "{\"version\":1,\"tool\":\"grefar-verify\",\"errors\":0,\"warnings\":0,\"findings\":[]}\n"
        );
    }

    #[test]
    fn text_rendering_marks_warnings() {
        let findings = sample();
        assert!(findings[0].render_text().contains("[hot-path-alloc]"));
        assert!(findings[1].render_text().contains("[hot-path-alloc/warn]"));
    }
}
