//! Lexical preprocessing for the lint rules.
//!
//! Rust's grammar is too rich for substring matching: `panic!` inside a
//! doc comment, `HashMap` inside a string literal, or `==` inside a
//! `#[cfg(test)]` module must not trip a rule. [`clean`] produces a
//! blanked copy of the source — comments, string/char literals replaced by
//! spaces, newlines preserved — plus per-line metadata:
//!
//! * which lines sit inside `#[cfg(test)]` items (rules skip them),
//! * which `verify: allow(<rule>): <justification>` directives are in
//!   scope for each line (a directive suppresses its rule on the
//!   directive's own line and the line immediately below, so it works both
//!   as a trailing comment and as a standalone comment above the site),
//! * malformed directives (missing rule or justification), which the
//!   driver reports as violations so the allowlist cannot silently rot.

/// One suppression directive parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// 1-based line of the directive comment.
    pub line: usize,
}

/// One `verify: match-events(<channel>[, partial])` annotation: the next
/// `match` below it claims to cover the named registry channel. The
/// `event-schema` pass checks the claim (unknown arms are always errors;
/// completeness is waived per-file only when every annotation is
/// `partial`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEvents {
    /// Registry channel name (`telemetry` / `checkpoint`).
    pub channel: String,
    /// The annotated match covers only a subset on purpose.
    pub partial: bool,
    /// 1-based line of the directive comment.
    pub line: usize,
}

/// The result of lexically cleaning one source file.
#[derive(Debug, Clone)]
pub struct CleanedSource {
    /// The source with comments and string/char-literal contents replaced
    /// by spaces. Byte-for-byte the same line structure as the input.
    pub code: String,
    /// `is_test_line[l]` (0-based) — line `l + 1` is inside a
    /// `#[cfg(test)]` item.
    pub is_test_line: Vec<bool>,
    /// Per 0-based line: the allow directives that cover it.
    pub allows: Vec<Vec<Allow>>,
    /// `match-events` annotations, in source order.
    pub match_events: Vec<MatchEvents>,
    /// 1-based lines holding a `verify:` directive that failed to parse.
    pub bad_directives: Vec<usize>,
}

impl CleanedSource {
    /// Whether `rule` is suppressed on 1-based line `line`.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .get(line.saturating_sub(1))
            .map(|list| list.iter().any(|a| a.rule == rule || a.rule == "all"))
            .unwrap_or(false)
    }

    /// Whether 1-based line `line` is inside a `#[cfg(test)]` item.
    pub fn is_test(&self, line: usize) -> bool {
        self.is_test_line
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Cleans one file. Never fails: unterminated constructs blank to EOF.
pub fn clean(source: &str) -> CleanedSource {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let num_lines = source.lines().count().max(1);
    let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); num_lines + 1];
    let mut match_events = Vec::new();
    let mut bad_directives = Vec::new();

    let mut line = 1usize; // current 1-based line
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                // Line comment: scan to end of line, parse directives.
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                parse_directives(
                    &text,
                    line,
                    &mut allows,
                    &mut match_events,
                    &mut bad_directives,
                );
                for _ in start..i {
                    out.push(' ');
                }
            }
            '/' if next == Some('*') => {
                // Block comment, nesting allowed.
                let mut depth = 1usize;
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        push_blanked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                }
                continue;
            }
            '"' => {
                // Plain string literal (possibly preceded by b, handled as
                // ordinary chars). Blank the contents, honor escapes.
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        out.push_str("  ");
                        if chars[i + 1] == '\n' {
                            out.pop();
                            out.pop();
                            out.push(' ');
                            out.push('\n');
                            line += 1;
                        }
                        i += 2;
                    } else if chars[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        push_blanked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                }
                continue;
            }
            'r' if is_raw_string_start(&chars, i) => {
                // r"..." or r#"..."# (any number of #).
                i = blank_raw_string(&chars, i, &mut out, &mut line);
                continue;
            }
            'b' if is_byte_raw_string_start(&chars, i) => {
                // br"..." / br#"..."#: raw semantics — backslashes are NOT
                // escapes, so the plain-string logic must not see them
                // (it would blank past the terminator to EOF).
                out.push(' '); // the `b`
                i = blank_raw_string(&chars, i + 1, &mut out, &mut line);
                continue;
            }
            '\'' => {
                // Char literal vs lifetime. A literal is 'x' or '\..'; a
                // lifetime is ' followed by an identifier with no closing '.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: blank to the closing quote.
                    out.push(' ');
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        push_blanked(&mut out, chars[i], &mut line);
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push(' ');
                        i += 1;
                    }
                    continue;
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    out.push_str("   ");
                    i += 3;
                    continue;
                } else {
                    out.push('\''); // lifetime marker, keep
                    i += 1;
                    continue;
                }
            }
            _ => {
                if c == '\n' {
                    line += 1;
                }
                out.push(c);
                i += 1;
            }
        }
        if i < chars.len() && chars[i] == '\n' {
            // Line comments stop *at* the newline; emit it here.
            out.push('\n');
            line += 1;
            i += 1;
        }
    }

    let is_test_line = mark_test_lines(&out);
    let line_count = out.lines().count().max(1);
    allows.truncate(line_count.max(num_lines));
    CleanedSource {
        code: out,
        is_test_line,
        allows,
        match_events,
        bad_directives,
    }
}

/// `r` starts a raw string only when followed by `#`* `"` and not part of
/// an identifier (e.g. `for`, `var_r`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// `b` starts a raw byte string when the next char is an `r` that opens a
/// raw string and `b` itself is not part of an identifier.
fn is_byte_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    if chars.get(i + 1) != Some(&'r') {
        return false;
    }
    let mut j = i + 2;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Blanks a raw string whose `r` sits at `i`; returns the index one past
/// the closing delimiter.
fn blank_raw_string(chars: &[char], i: usize, out: &mut String, line: &mut usize) -> usize {
    let mut j = i + 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // The `r`, hashes, and opening quote.
    for _ in i..=j {
        out.push(' ');
    }
    let mut k = j + 1;
    while k < chars.len() {
        if chars[k] == '"' {
            let mut h = 0usize;
            while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                h += 1;
            }
            if h == hashes {
                for _ in 0..=hashes {
                    out.push(' ');
                }
                return k + 1 + hashes;
            }
        }
        push_blanked(out, chars[k], line);
        k += 1;
    }
    k
}

fn push_blanked(out: &mut String, c: char, line: &mut usize) {
    if c == '\n' {
        out.push('\n');
        *line += 1;
    } else {
        out.push(' ');
    }
}

/// Parses `verify:` directives from one comment's text:
///
/// * `verify: allow(<rule>): <justification>` — suppression;
/// * `verify: match-events(<channel>[, partial])` — coverage annotation
///   for the next `match` below (see [`MatchEvents`]).
///
/// A directive that fails to parse (empty rule, missing justification,
/// unknown form) is recorded in `bad` instead.
fn parse_directives(
    comment: &str,
    line: usize,
    allows: &mut [Vec<Allow>],
    match_events: &mut Vec<MatchEvents>,
    bad: &mut Vec<usize>,
) {
    let Some(pos) = comment.find("verify:") else {
        return;
    };
    let rest = comment[pos + "verify:".len()..].trim_start();
    if let Some(args) = rest.strip_prefix("match-events(") {
        let Some(close) = args.find(')') else {
            bad.push(line);
            return;
        };
        let mut parts = args[..close].split(',').map(str::trim);
        let channel = parts.next().unwrap_or("").to_string();
        let qualifier = parts.next();
        let partial = qualifier == Some("partial");
        let extra = parts.next();
        if channel.is_empty() || extra.is_some() || (qualifier.is_some() && !partial) {
            bad.push(line);
            return;
        }
        match_events.push(MatchEvents {
            channel,
            partial,
            line,
        });
        return;
    }
    let Some(args) = rest.strip_prefix("allow(") else {
        bad.push(line);
        return;
    };
    let Some(close) = args.find(')') else {
        bad.push(line);
        return;
    };
    let rule = args[..close].trim();
    let justification = args[close + 1..].trim_start_matches(':').trim();
    if rule.is_empty() || justification.is_empty() {
        bad.push(line);
        return;
    }
    // Covers the directive's own line and the one below it.
    for l in [line, line + 1] {
        if let Some(slot) = allows.get_mut(l.saturating_sub(1)) {
            slot.push(Allow {
                rule: rule.to_string(),
                line,
            });
        }
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item (usually the
/// `mod tests { ... }` block) by brace-matching on the blanked source.
fn mark_test_lines(code: &str) -> Vec<bool> {
    let bytes = code.as_bytes();
    let num_lines = code.lines().count().max(1);
    let mut marks = vec![false; num_lines];
    // Byte offset -> 0-based line.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut l = 0usize;
    for &b in bytes {
        line_of.push(l);
        if b == b'\n' {
            l += 1;
        }
    }
    line_of.push(l);

    let mut search_from = 0usize;
    while let Some(rel) = code[search_from..].find("cfg(test") {
        let at = search_from + rel;
        search_from = at + 1;
        // Must be inside an attribute: look back for `#[` or `#![` with no
        // closing `]` in between (cheap scan over the current line region).
        let mut window_start = at.saturating_sub(160);
        while !code.is_char_boundary(window_start) {
            window_start -= 1;
        }
        let window = &code[window_start..at];
        if !window.contains("#[") && !window.contains("#![") {
            continue;
        }
        // Extent: from the attribute to the end of the annotated item —
        // the matching `}` of its first block, or the first `;` for a
        // block-less item.
        let mut depth = 0usize;
        let mut started = false;
        let mut end = bytes.len();
        for (off, &b) in bytes.iter().enumerate().skip(at) {
            match b {
                b'{' => {
                    depth += 1;
                    started = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        end = off;
                        break;
                    }
                }
                b';' if !started => {
                    end = off;
                    break;
                }
                _ => {}
            }
        }
        let (start_line, end_line) = (line_of[at], line_of[end.min(bytes.len())]);
        for m in marks.iter_mut().take(end_line + 1).skip(start_line) {
            *m = true;
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;\n";
        let c = clean(src);
        assert!(!c.code.contains("HashMap"));
        assert!(c.code.contains("let y = 1;"));
        // Line structure preserved.
        assert_eq!(c.code.lines().count(), src.lines().count());
    }

    #[test]
    fn blanks_raw_strings_and_chars() {
        let src = "let s = r#\"panic!\"#; let c = 'x'; let l: &'static str = s;\n";
        let c = clean(src);
        assert!(!c.code.contains("panic!"));
        assert!(!c.code.contains('x'));
        assert!(c.code.contains("'static"));
    }

    #[test]
    fn marks_cfg_test_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let c = clean(src);
        assert!(!c.is_test(1));
        assert!(c.is_test(2));
        assert!(c.is_test(4));
        assert!(c.is_test(5));
        assert!(!c.is_test(6));
    }

    #[test]
    fn parses_allow_directives() {
        let src =
            "let a = 1; // verify: allow(float-eq): exact zero skip\nlet b = 2;\nlet c = 3;\n";
        let c = clean(src);
        assert!(c.is_allowed("float-eq", 1));
        assert!(c.is_allowed("float-eq", 2)); // line below the directive
        assert!(!c.is_allowed("float-eq", 3));
        assert!(!c.is_allowed("no-panic", 1));
        assert!(c.bad_directives.is_empty());
    }

    #[test]
    fn rejects_directive_without_justification() {
        let src = "// verify: allow(no-panic)\nlet a = 1;\n";
        let c = clean(src);
        assert_eq!(c.bad_directives, vec![1]);
        assert!(!c.is_allowed("no-panic", 2));
    }

    #[test]
    fn multiline_block_comment_keeps_lines() {
        let src = "/* a\n b HashMap\n c */\nlet x = 0;\n";
        let c = clean(src);
        assert!(!c.code.contains("HashMap"));
        assert_eq!(c.code.lines().count(), 4);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner panic! */ still comment */ let a = 1;\nx.unwrap();\n";
        let c = clean(src);
        assert!(!c.code.contains("panic"));
        assert!(c.code.contains("let a = 1;"));
        assert!(c.code.contains("x.unwrap();"));
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        let src = "let s = r##\"has \"# inside HashMap\"##; let t = 1;\n";
        let c = clean(src);
        assert!(!c.code.contains("HashMap"));
        assert!(c.code.contains("let t = 1;"));
    }

    #[test]
    fn raw_identifiers_survive_cleaning() {
        // `r#type` is an identifier, not a raw string: it must stay in the
        // cleaned code, and the rest of the line must not be swallowed.
        let src = "let r#type = 3; let after = r#type + 1;\n";
        let c = clean(src);
        assert!(c.code.contains("r#type"), "{:?}", c.code);
        assert!(c.code.contains("let after"));
    }

    #[test]
    fn byte_and_raw_byte_strings_blank_without_escapes() {
        // `br#"..."#` has no escape processing: a trailing backslash before
        // the terminator must not swallow the rest of the file.
        let src = "let a = br#\"raw\\\"#; let b = b\"esc\\\"q\"; panic!();\n";
        let c = clean(src);
        assert!(!c.code.contains("raw"));
        assert!(!c.code.contains("esc"));
        // The code after both literals is still visible to rules.
        assert!(c.code.contains("panic!"), "{:?}", c.code);
        assert_eq!(c.code.lines().count(), src.lines().count());
    }

    #[test]
    fn multiline_string_containing_comment_markers() {
        // A `//` inside a multi-line string is string content, not a
        // comment: the string must still terminate on the later quote and
        // the directive-looking text inside must be inert.
        let src = "let s = \"line one // verify: allow(no-panic): fake\nline two\";\nx.unwrap();\n";
        let c = clean(src);
        assert!(!c.is_allowed("no-panic", 1));
        assert!(!c.is_allowed("no-panic", 3));
        assert!(c.code.contains("x.unwrap();"));
        assert_eq!(c.code.lines().count(), src.lines().count());
    }

    #[test]
    fn parses_match_events_directives() {
        let src = "// verify: match-events(telemetry)\nmatch name {}\n\
                   // verify: match-events(checkpoint, partial)\nmatch n {}\n\
                   // verify: match-events()\n// verify: match-events(a, b, c)\n";
        let c = clean(src);
        assert_eq!(c.match_events.len(), 2);
        assert_eq!(c.match_events[0].channel, "telemetry");
        assert!(!c.match_events[0].partial);
        assert_eq!(c.match_events[0].line, 1);
        assert_eq!(c.match_events[1].channel, "checkpoint");
        assert!(c.match_events[1].partial);
        assert_eq!(c.bad_directives, vec![5, 6]);
    }
}
