//! The repo-specific lint rules.
//!
//! Each rule takes a [`CleanedSource`] (and, where doc comments matter,
//! the raw source) and returns [`Violation`]s. Rules skip `#[cfg(test)]`
//! lines and honor `verify: allow(<rule>): <justification>` directives;
//! which *files* a rule applies to is the driver's decision (see
//! `main.rs` — the scopes mirror DESIGN.md §"Correctness tooling").
//!
//! * [`RULE_DETERMINISM`] — decision-path crates must stay bit-
//!   deterministic: no `HashMap`/`HashSet` (iteration order), no raw
//!   `Instant::now`/`SystemTime` (wall-clock reads belong in `grefar-obs`
//!   behind `Observer::enabled`).
//! * [`RULE_FLOAT_EQ`] — no `==`/`!=` against float literals; route
//!   tolerance comparisons through `grefar_types::approx_eq`.
//! * [`RULE_NO_PANIC`] — hot paths must not `unwrap`/`expect`/`panic!`
//!   or index slices by integer literals.
//! * [`RULE_ERRORS_DOC`] — `pub fn`s returning `Result` document
//!   `# Errors`; `pub fn`s that assert document `# Panics`.

use crate::findings::Severity;
use crate::scanner::CleanedSource;

/// Rule name: determinism of decision-path crates.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule name: float equality outside the tolerance helper.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Rule name: panic-free hot paths.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule name: `# Errors` / `# Panics` doc sections on `pub fn`s.
pub const RULE_ERRORS_DOC: &str = "errors-doc";
/// Rule name: telemetry emission sites and consumer matches agree with
/// the `grefar_obs::schema` registry (see `passes::event_schema`).
pub const RULE_EVENT_SCHEMA: &str = "event-schema";
/// Rule name: no heap allocation in the per-slot call tree (see
/// `passes::hot_path_alloc`).
pub const RULE_HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule name: dependency hygiene (see `passes::deps_audit`).
pub const RULE_DEPS_AUDIT: &str = "deps-audit";
/// Pseudo-rule for malformed `verify:` directives.
pub const RULE_DIRECTIVE: &str = "directive";

/// One finding: file-relative line plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Error or warning (every lexical rule reports errors; the pass
    /// rules grade advisory findings as warnings).
    pub severity: Severity,
    /// What was found.
    pub message: String,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds `needle` in `line` at identifier boundaries (so `HashMap` does
/// not match `MyHashMapLike`). Path-segment needles (`Instant::now`)
/// bound-check their outer identifiers.
fn find_word(line: &str, needle: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Determinism: forbidden identifiers in decision-path code.
pub fn check_determinism(src: &CleanedSource) -> Vec<Violation> {
    const FORBIDDEN: &[(&str, &str)] = &[
        (
            "HashMap",
            "iteration order is not deterministic; use Vec/BTreeMap",
        ),
        (
            "HashSet",
            "iteration order is not deterministic; use Vec/BTreeSet",
        ),
        (
            "Instant::now",
            "raw wall-clock read; use grefar_obs::Timer behind Observer::enabled",
        ),
        (
            "SystemTime",
            "raw wall-clock read; decision paths must be replayable",
        ),
    ];
    let mut out = Vec::new();
    for (idx, line) in src.code.lines().enumerate() {
        let lineno = idx + 1;
        if src.is_test(lineno) {
            continue;
        }
        for (needle, why) in FORBIDDEN {
            if find_word(line, needle).is_some() && !src.is_allowed(RULE_DETERMINISM, lineno) {
                out.push(Violation {
                    line: lineno,
                    rule: RULE_DETERMINISM,
                    severity: Severity::Error,
                    message: format!("`{needle}` in decision-path code: {why}"),
                });
            }
        }
    }
    out
}

/// Does `text` contain a float literal (`1.0`, `.5`, `1e-9`, `f64::NAN`,
/// an `f64`/`f32` suffix)?
fn has_float_literal(text: &str) -> bool {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
        {
            return true;
        }
        // Exponent form without a dot: 1e9, 2E-6 — but not hex (0x1e9).
        if (b == b'e' || b == b'E')
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes
                .get(i + 1)
                .is_some_and(|&c| c.is_ascii_digit() || c == b'-' || c == b'+')
        {
            let mut s = i;
            while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                s -= 1;
            }
            if !text[s..i].starts_with("0x") && !text[s..i].starts_with("0X") {
                return true;
            }
        }
    }
    ["f64::", "f32::", "_f64", "_f32"]
        .iter()
        .any(|t| text.contains(t))
}

/// Float equality: `==` / `!=` where an operand is a float literal.
pub fn check_float_eq(src: &CleanedSource) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in src.code.lines().enumerate() {
        let lineno = idx + 1;
        if src.is_test(lineno) {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0usize;
        while i + 1 < bytes.len() {
            let two = &bytes[i..i + 2];
            let is_eq = two == b"==";
            let is_ne = two == b"!=";
            if !(is_eq || is_ne) {
                i += 1;
                continue;
            }
            // Not part of `<=`, `>=`, `=>`, `===`-like runs or `!=` tail.
            if is_eq {
                let prev = i.checked_sub(1).map(|p| bytes[p]);
                if matches!(prev, Some(b'=') | Some(b'!') | Some(b'<') | Some(b'>')) {
                    i += 2;
                    continue;
                }
                if bytes.get(i + 2) == Some(&b'=') {
                    i += 3;
                    continue;
                }
            }
            // Operands: out to the nearest expression delimiter.
            let left_start = line[..i]
                .rfind(['(', ',', ';', '{', '}', '&', '|', '='])
                .map(|p| p + 1)
                .unwrap_or(0);
            let right_end = i
                + 2
                + line[i + 2..]
                    .find([')', ',', ';', '{', '}', '&', '|'])
                    .unwrap_or(line.len() - i - 2);
            let lhs = &line[left_start..i];
            let rhs = &line[i + 2..right_end];
            if (has_float_literal(lhs) || has_float_literal(rhs))
                && !src.is_allowed(RULE_FLOAT_EQ, lineno)
            {
                let op = if is_eq { "==" } else { "!=" };
                out.push(Violation {
                    line: lineno,
                    rule: RULE_FLOAT_EQ,
                    severity: Severity::Error,
                    message: format!(
                        "float `{op}` comparison; use grefar_types::approx_eq(a, b, tol) \
                         (or allow with a justification for exact-zero skips)"
                    ),
                });
            }
            i += 2;
        }
    }
    out
}

/// Panic-free hot paths: no `unwrap`/`expect`/`panic!`-family macros, no
/// integer-literal slice indexing.
pub fn check_no_panic(src: &CleanedSource) -> Vec<Violation> {
    check_no_panic_mode(src, false)
}

/// The widened `no-panic` variant: additionally flags *every* `[`-index
/// or slice expression (not just integer-literal subscripts), since any
/// out-of-range subscript panics. Applied file-by-file to the queue
/// update (`crates/sim/src/simulation.rs`) and the feed client
/// (`crates/ingest/src/client.rs`).
pub fn check_no_panic_strict(src: &CleanedSource) -> Vec<Violation> {
    check_no_panic_mode(src, true)
}

fn check_no_panic_mode(src: &CleanedSource, strict_index: bool) -> Vec<Violation> {
    const CALLS: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    let mut out = Vec::new();
    for (idx, line) in src.code.lines().enumerate() {
        let lineno = idx + 1;
        if src.is_test(lineno) || src.is_allowed(RULE_NO_PANIC, lineno) {
            continue;
        }
        for needle in CALLS {
            if line.contains(needle) {
                out.push(Violation {
                    line: lineno,
                    rule: RULE_NO_PANIC,
                    severity: Severity::Error,
                    message: format!(
                        "`{}` in a hot path; return a typed error instead",
                        needle.trim_start_matches('.').trim_end_matches('(')
                    ),
                });
            }
        }
        for needle in MACROS {
            if find_word(line, needle.trim_end_matches('!')).is_some() && line.contains(needle) {
                out.push(Violation {
                    line: lineno,
                    rule: RULE_NO_PANIC,
                    severity: Severity::Error,
                    message: format!("`{needle}` in a hot path; return a typed error instead"),
                });
            }
        }
        // ident[...] or )[...] or ][...]: panicking subscript. Base mode
        // flags only integer-literal subscripts; strict mode flags every
        // subscript (variable indices and range slices panic just the
        // same when out of bounds).
        let bytes = line.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b != b'[' || i == 0 {
                continue;
            }
            let prev = bytes[i - 1];
            if !(is_ident_char(prev) || prev == b')' || prev == b']') {
                continue;
            }
            // `vec![`-style macro invocations never reach here: `!`
            // precedes the bracket and is not an identifier char.
            let rest = &bytes[i + 1..];
            let digits = rest.iter().take_while(|c| c.is_ascii_digit()).count();
            let literal_index = digits > 0 && rest.get(digits) == Some(&b']');
            if literal_index {
                out.push(Violation {
                    line: lineno,
                    rule: RULE_NO_PANIC,
                    severity: Severity::Error,
                    message: "integer-literal slice index in a hot path; use .get()/.first() \
                              or prove the bound and allow with a justification"
                        .to_string(),
                });
            } else if strict_index {
                out.push(Violation {
                    line: lineno,
                    rule: RULE_NO_PANIC,
                    severity: Severity::Error,
                    message: "slice subscript in a no-panic scope; use .get()/.get_mut() \
                              or prove the bound and allow with a justification"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// `pub fn` documentation: `-> Result` requires `# Errors`; a body that
/// asserts (or unwraps) requires `# Panics`. Only checked in the crates
/// the driver scopes this rule to (`core`, `lp`).
pub fn check_errors_doc(src: &CleanedSource, raw: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let code_lines: Vec<&str> = src.code.lines().collect();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let code = &src.code;
    let bytes = code.as_bytes();

    // Byte offset -> 0-based line.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut l = 0usize;
    for &b in bytes {
        line_of.push(l);
        if b == b'\n' {
            l += 1;
        }
    }
    line_of.push(l);

    let mut from = 0usize;
    while let Some(rel) = code[from..].find("fn ") {
        let at = from + rel;
        from = at + 1;
        if at > 0 && is_ident_char(bytes[at - 1]) {
            continue;
        }
        // Only `pub fn` / `pub const fn` (not `pub(crate)`, not private).
        let head = code[..at].trim_end();
        let head = head
            .strip_suffix("const")
            .map(str::trim_end)
            .unwrap_or(head);
        let Some(pre) = head.strip_suffix("pub") else {
            continue;
        };
        if pre.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let fn_line = line_of[at] + 1; // 1-based
        if src.is_test(fn_line) || src.is_allowed(RULE_ERRORS_DOC, fn_line) {
            continue;
        }
        let name: String = code[at + "fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();

        // Signature: up to the body `{` or a trait-decl `;`.
        let sig_end = code[at..]
            .find(['{', ';'])
            .map(|p| at + p)
            .unwrap_or(code.len());
        let sig = &code[at..sig_end];
        let returns_result = sig
            .split("->")
            .nth(1)
            .map(|ret| ret.contains("Result<") || ret.contains("Result "))
            .unwrap_or(false);

        // Body extent (if any) by brace matching.
        let mut asserts = false;
        if bytes.get(sig_end) == Some(&b'{') {
            let mut depth = 0usize;
            let mut end = bytes.len();
            for (off, &b) in bytes.iter().enumerate().skip(sig_end) {
                if b == b'{' {
                    depth += 1;
                } else if b == b'}' {
                    depth -= 1;
                    if depth == 0 {
                        end = off;
                        break;
                    }
                }
            }
            let body_start_line = line_of[sig_end];
            let body_end_line = line_of[end.min(bytes.len() - 1)];
            asserts = code_lines[body_start_line..=body_end_line].iter().any(|b| {
                find_word(b, "assert").is_some()
                    || find_word(b, "assert_eq").is_some()
                    || find_word(b, "assert_ne").is_some()
                    || find_word(b, "panic").is_some()
                    || b.contains(".expect(")
                    || b.contains(".unwrap()")
            });
        }

        // Doc block: contiguous `///` lines above, skipping attributes.
        let mut docs = String::new();
        let mut j = fn_line.saturating_sub(1); // 0-based index of line above
        while j > 0 {
            j -= 1;
            let t = raw_lines.get(j).map(|s| s.trim()).unwrap_or("");
            if t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            if let Some(doc) = t.strip_prefix("///") {
                docs.push_str(doc);
                docs.push('\n');
                continue;
            }
            break;
        }

        if returns_result && !docs.contains("# Errors") {
            out.push(Violation {
                line: fn_line,
                rule: RULE_ERRORS_DOC,
                severity: Severity::Error,
                message: format!(
                    "`pub fn {name}` returns Result but has no `# Errors` doc section"
                ),
            });
        }
        if asserts && !docs.contains("# Panics") {
            out.push(Violation {
                line: fn_line,
                rule: RULE_ERRORS_DOC,
                severity: Severity::Error,
                message: format!("`pub fn {name}` can panic but has no `# Panics` doc section"),
            });
        }
    }
    out
}

/// Malformed `verify:` directives, reported so the allowlist stays honest.
pub fn check_directives(src: &CleanedSource) -> Vec<Violation> {
    src.bad_directives
        .iter()
        .map(|&line| Violation {
            line,
            rule: RULE_DIRECTIVE,
            severity: Severity::Error,
            message: "malformed directive; expected `verify: allow(<rule>): <justification>` \
                      or `verify: match-events(<channel>[, partial])`"
                .to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::clean;

    #[test]
    fn determinism_fires_on_hashmap_and_clock() {
        let src = "use std::collections::HashMap;\nlet t = std::time::Instant::now();\n";
        let v = check_determinism(&clean(src));
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn determinism_respects_allow_and_tests() {
        let src =
            "let t = std::time::Instant::now(); // verify: allow(determinism): telemetry only\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(check_determinism(&clean(src)).is_empty());
    }

    #[test]
    fn float_eq_fires_on_literal_comparison() {
        let src = "if beta == 0.0 { }\nif n != 1e-9 { }\nif k == 3 { }\n";
        let v = check_float_eq(&clean(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn float_eq_skips_integer_and_allowed() {
        let src =
            "if factor == 0.0 { } // verify: allow(float-eq): exact-zero skip\nif i == 0 { }\n";
        assert!(check_float_eq(&clean(src)).is_empty());
    }

    #[test]
    fn no_panic_fires_on_unwrap_expect_macros_and_index() {
        let src =
            "let a = x.unwrap();\nlet b = y.expect(\"msg\");\npanic!(\"boom\");\nlet c = v[0];\n";
        let v = check_no_panic(&clean(src));
        assert_eq!(v.len(), 4, "{v:?}");
    }

    #[test]
    fn no_panic_skips_variable_index_and_array_literals() {
        let src = "let a = v[i];\nlet b = &[0.0];\nlet t: [f64; 2] = [0.0, 1.0];\n";
        assert!(check_no_panic(&clean(src)).is_empty());
    }

    #[test]
    fn strict_no_panic_flags_any_subscript() {
        let src = "let a = v[i];\nlet s = &xs[1..n];\nlet b: [f64; 2] = [0.0, 1.0];\nlet c = vec![0.0; n];\n";
        let v = check_no_panic_strict(&clean(src));
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
        // Array type/literal syntax and vec! macros stay clean.
        let allowed = "let a = v.get(i);\n\
                       // verify: allow(no-panic): i < n by loop bound\n\
                       let b = v[i];\n";
        assert!(check_no_panic_strict(&clean(allowed)).is_empty());
    }

    #[test]
    fn errors_doc_requires_sections() {
        let src = "\
/// Does a thing.\n\
pub fn fallible() -> Result<(), String> { Ok(()) }\n\
/// Checks input.\n\
pub fn checked(x: f64) {\n    assert!(x >= 0.0);\n}\n";
        let c = clean(src);
        let v = check_errors_doc(&c, src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("# Errors"));
        assert!(v[1].message.contains("# Panics"));
    }

    #[test]
    fn errors_doc_satisfied_by_sections() {
        let src = "\
/// Does a thing.\n\
///\n\
/// # Errors\n\
/// When it fails.\n\
pub fn fallible() -> Result<(), String> { Ok(()) }\n\
/// Checks input.\n\
///\n\
/// # Panics\n\
/// If x is negative.\n\
#[inline]\n\
pub fn checked(x: f64) {\n    assert!(x >= 0.0);\n}\n";
        let c = clean(src);
        let v = check_errors_doc(&c, src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn debug_assert_does_not_require_panics_doc() {
        let src = "/// Fast path.\npub fn fast(x: f64) -> f64 {\n    debug_assert!(x.is_finite());\n    x\n}\n";
        let c = clean(src);
        assert!(check_errors_doc(&c, src).is_empty());
    }
}
