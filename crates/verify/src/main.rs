//! The `grefar-verify` driver: maps rules and passes onto workspace
//! scopes and exits non-zero on errors (and, under `--deny-warnings`,
//! on warnings too).
//!
//! ```text
//! grefar-verify [--format text|json] [--deny-warnings]
//! grefar-verify deps-audit [--format text|json]
//! ```
//!
//! Scopes (rendered by `scope_table()`; a unit test keeps this table,
//! the `SCOPES` array, and DESIGN.md §"Correctness tooling" in sync):
//!
//! | rule | scope |
//! |------|-------|
//! | `determinism` | `crates/{core,convex,lp,sim,report,faults,ingest,metrics,served,soak}/src` |
//! | `float-eq` | `crates/{core,convex,lp,sim,types,cluster,report,faults,ingest,metrics,served,soak}/src` |
//! | `no-panic` | `crates/lp/src`, `crates/core/src/solver` |
//! | `no-panic-strict` | `crates/sim/src/simulation.rs`, `crates/ingest/src/client.rs` |
//! | `errors-doc` | `crates/{core,lp}/src` |
//! | `event-schema` | `crates/{core,convex,lp,sim,ingest,bench,metrics,served}/src`, `crates/obs/src/span.rs` |
//! | `hot-path-alloc` | `crates/{convex,lp}/src`, `crates/core/src/solver` |
//!
//! `deps-audit` runs over the repository manifests (`Cargo.lock` and
//! every `crates/*/Cargo.toml`) rather than source scopes, both in the
//! full run and standalone via the subcommand.
//!
//! Test files (`tests/`, `benches/`, `examples/`, `src/bin`) and
//! `#[cfg(test)]` modules are exempt everywhere.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use grefar_verify::passes::{deps_audit, event_schema, hot_path_alloc};
use grefar_verify::{
    check_determinism, check_directives, check_errors_doc, check_float_eq, check_no_panic,
    check_no_panic_strict, render_json, sort_findings, Finding, Severity, Workspace,
};

/// A rule applied to a set of workspace-relative paths (directories or
/// single `.rs` files).
struct Scope {
    /// The label shown in the scope table (rule name, possibly with a
    /// mode suffix such as `no-panic-strict`).
    label: &'static str,
    paths: &'static [&'static str],
}

const SCOPES: &[Scope] = &[
    Scope {
        label: "determinism",
        paths: &[
            "crates/core/src",
            "crates/convex/src",
            "crates/lp/src",
            "crates/sim/src",
            "crates/report/src",
            "crates/faults/src",
            "crates/ingest/src",
            "crates/metrics/src",
            "crates/served/src",
            "crates/soak/src",
        ],
    },
    Scope {
        label: "float-eq",
        paths: &[
            "crates/core/src",
            "crates/convex/src",
            "crates/lp/src",
            "crates/sim/src",
            "crates/types/src",
            "crates/cluster/src",
            "crates/report/src",
            "crates/faults/src",
            "crates/ingest/src",
            "crates/metrics/src",
            "crates/served/src",
            "crates/soak/src",
        ],
    },
    Scope {
        label: "no-panic",
        paths: &["crates/lp/src", "crates/core/src/solver"],
    },
    Scope {
        label: "no-panic-strict",
        paths: &[
            "crates/sim/src/simulation.rs",
            "crates/ingest/src/client.rs",
        ],
    },
    Scope {
        label: "errors-doc",
        paths: &["crates/core/src", "crates/lp/src"],
    },
    Scope {
        label: "event-schema",
        paths: &[
            "crates/core/src",
            "crates/convex/src",
            "crates/lp/src",
            "crates/sim/src",
            "crates/ingest/src",
            "crates/bench/src",
            "crates/metrics/src",
            "crates/served/src",
            "crates/obs/src/span.rs",
        ],
    },
    Scope {
        label: "hot-path-alloc",
        paths: &[
            "crates/convex/src",
            "crates/lp/src",
            "crates/core/src/solver",
        ],
    },
];

/// Renders the canonical scope table rows — the single source of truth
/// the doc comment above and DESIGN.md must reproduce verbatim (asserted
/// by the sync test below; unused in the non-test binary).
#[cfg_attr(not(test), allow(dead_code))]
fn scope_table() -> Vec<String> {
    SCOPES
        .iter()
        .map(|s| {
            // Compress runs of `crates/<name>/src` into brace shorthand;
            // everything else (single files, subdirectories) verbatim.
            let mut simple: Vec<&str> = Vec::new();
            let mut other: Vec<&str> = Vec::new();
            for p in s.paths {
                match p
                    .strip_prefix("crates/")
                    .and_then(|r| r.strip_suffix("/src"))
                {
                    Some(name) if !name.contains('/') => simple.push(name),
                    _ => other.push(p),
                }
            }
            let mut parts = Vec::new();
            match simple.len() {
                0 => {}
                1 => parts.push(format!("`crates/{}/src`", simple[0])),
                _ => parts.push(format!("`crates/{{{}}}/src`", simple.join(","))),
            }
            for p in other {
                parts.push(format!("`{p}`"));
            }
            format!("| `{}` | {} |", s.label, parts.join(", "))
        })
        .collect()
}

fn scope_paths(label: &str) -> &'static [&'static str] {
    SCOPES
        .iter()
        .find(|s| s.label == label)
        .map(|s| s.paths)
        .unwrap_or(&[])
}

fn workspace_root() -> PathBuf {
    // crates/verify -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn in_scope(rel: &str, paths: &[&str]) -> bool {
    paths
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

/// Runs the per-line lexical rules over every file in their scopes.
fn run_lexical_rules(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let src = &file.cleaned;
        let mut violations = Vec::new();
        // Malformed directives are a finding wherever any rule applies.
        violations.extend(check_directives(src));
        if in_scope(&file.rel, scope_paths("determinism")) {
            violations.extend(check_determinism(src));
        }
        if in_scope(&file.rel, scope_paths("float-eq")) {
            violations.extend(check_float_eq(src));
        }
        if in_scope(&file.rel, scope_paths("no-panic")) {
            violations.extend(check_no_panic(src));
        }
        if in_scope(&file.rel, scope_paths("no-panic-strict")) {
            violations.extend(check_no_panic_strict(src));
        }
        if in_scope(&file.rel, scope_paths("errors-doc")) {
            violations.extend(check_errors_doc(src, &file.raw));
        }
        out.extend(violations.into_iter().map(|v| Finding {
            file: file.rel.clone(),
            line: v.line,
            rule: v.rule,
            severity: v.severity,
            message: v.message,
        }));
    }
    out
}

fn usage() -> ! {
    eprintln!("usage: grefar-verify [deps-audit] [--format text|json] [--deny-warnings]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut deps_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "deps-audit" => deps_only = true,
            "--deny-warnings" => deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let root = workspace_root();
    let mut findings: Vec<Finding> = Vec::new();
    let mut files_scanned = 0usize;

    if deps_only {
        findings.extend(deps_audit::check(&root));
    } else {
        // One workspace model over the union of every scope, so each file
        // is read, cleaned, and tokenized exactly once.
        let mut all_paths: Vec<&str> = Vec::new();
        for scope in SCOPES {
            for p in scope.paths {
                if !all_paths.contains(p) {
                    all_paths.push(p);
                }
            }
        }
        for rel in event_schema::REQUIRED_MATCH_FILES {
            if !all_paths.contains(rel) {
                all_paths.push(rel);
            }
        }
        let (ws, io_errors) = Workspace::load(&root, &all_paths);
        files_scanned = ws.files.len();
        for err in io_errors {
            eprintln!("grefar-verify: {err}");
            findings.push(Finding {
                file: err,
                line: 0,
                rule: grefar_verify::RULE_DIRECTIVE,
                severity: Severity::Error,
                message: "cannot read file".to_string(),
            });
        }

        findings.extend(run_lexical_rules(&ws));
        findings.extend(event_schema::check(&ws, scope_paths("event-schema")));
        for file in &ws.files {
            if in_scope(&file.rel, scope_paths("hot-path-alloc")) {
                findings.extend(hot_path_alloc::check(file));
            }
        }
        findings.extend(deps_audit::check(&root));
    }

    sort_findings(&mut findings);
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings.len() - errors;

    if format_json {
        println!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render_text());
        }
        if findings.is_empty() {
            if deps_only {
                println!("grefar-verify: manifests clean");
            } else {
                println!("grefar-verify: {files_scanned} files clean");
            }
        } else {
            eprintln!("grefar-verify: {errors} error(s), {warnings} warning(s)");
        }
    }

    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAIN_SRC: &str = include_str!("main.rs");
    const DESIGN_MD: &str = include_str!("../../../DESIGN.md");

    /// Satellite check: the scope table is written down in two prose
    /// places (the doc comment above and DESIGN.md §"Correctness
    /// tooling"). Both must carry the rows `scope_table()` renders from
    /// the live `SCOPES` array, so none of the three can drift.
    #[test]
    fn scope_table_is_in_sync_with_docs() {
        let rows = scope_table();
        assert_eq!(rows.len(), SCOPES.len());
        for row in &rows {
            let doc_row = format!("//! {row}");
            assert!(
                MAIN_SRC.contains(&doc_row),
                "main.rs doc comment is missing scope row:\n{row}"
            );
            assert!(
                DESIGN_MD.contains(row.as_str()),
                "DESIGN.md §Correctness tooling is missing scope row:\n{row}"
            );
        }
    }

    #[test]
    fn scope_lookup_and_membership() {
        assert!(in_scope(
            "crates/lp/src/simplex.rs",
            scope_paths("no-panic")
        ));
        assert!(in_scope(
            "crates/core/src/solver/greedy.rs",
            scope_paths("no-panic")
        ));
        assert!(!in_scope(
            "crates/core/src/grefar.rs",
            scope_paths("no-panic")
        ));
        // File-granular scopes match exactly, not as prefixes.
        assert!(in_scope(
            "crates/sim/src/simulation.rs",
            scope_paths("no-panic-strict")
        ));
        assert!(!in_scope(
            "crates/sim/src/simulation_helpers.rs",
            scope_paths("no-panic-strict")
        ));
    }
}
