//! The `grefar-verify` driver: maps lint rules onto workspace directories
//! and exits non-zero when any rule fires.
//!
//! Scopes (kept in sync with DESIGN.md §"Correctness tooling"):
//!
//! | rule          | scope                                                  |
//! |---------------|--------------------------------------------------------|
//! | `determinism` | `crates/{core,convex,lp,sim,report,faults,ingest,metrics}/src` |
//! | `float-eq`    | `crates/{core,convex,lp,sim,types,cluster,report,faults,ingest,metrics}/src` |
//! | `no-panic`    | `crates/lp/src`, `crates/core/src/solver`              |
//! | `errors-doc`  | `crates/{core,lp}/src`                                 |
//!
//! Test files (`tests/`, `benches/`, `examples/`, `src/bin`) and
//! `#[cfg(test)]` modules are exempt everywhere.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use grefar_verify::{check_source, Violation};

/// A rule applied to a set of workspace-relative directories.
struct Scope {
    rule: &'static str,
    dirs: &'static [&'static str],
}

const SCOPES: &[Scope] = &[
    Scope {
        rule: grefar_verify::RULE_DETERMINISM,
        dirs: &[
            "crates/core/src",
            "crates/convex/src",
            "crates/lp/src",
            "crates/sim/src",
            "crates/report/src",
            "crates/faults/src",
            "crates/ingest/src",
            "crates/metrics/src",
        ],
    },
    Scope {
        rule: grefar_verify::RULE_FLOAT_EQ,
        dirs: &[
            "crates/core/src",
            "crates/convex/src",
            "crates/lp/src",
            "crates/sim/src",
            "crates/types/src",
            "crates/cluster/src",
            "crates/report/src",
            "crates/faults/src",
            "crates/ingest/src",
            "crates/metrics/src",
        ],
    },
    Scope {
        rule: grefar_verify::RULE_NO_PANIC,
        dirs: &["crates/lp/src", "crates/core/src/solver"],
    },
    Scope {
        rule: grefar_verify::RULE_ERRORS_DOC,
        dirs: &["crates/core/src", "crates/lp/src"],
    },
];

fn workspace_root() -> PathBuf {
    // crates/verify -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Collects `.rs` files under `dir`, skipping generated/exempt trees.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "bin" | "tests" | "benches" | "examples" | "target"
            ) {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    let root = workspace_root();

    // rules per file (a file can be in several scopes).
    let mut per_file: Vec<(PathBuf, Vec<&'static str>)> = Vec::new();
    for scope in SCOPES {
        for dir in scope.dirs {
            let mut files = Vec::new();
            rust_files(&root.join(dir), &mut files);
            files.sort();
            for f in files {
                match per_file.iter_mut().find(|(p, _)| *p == f) {
                    Some((_, rules)) => {
                        if !rules.contains(&scope.rule) {
                            rules.push(scope.rule);
                        }
                    }
                    None => per_file.push((f, vec![scope.rule])),
                }
            }
        }
    }
    per_file.sort();

    let mut total = 0usize;
    let mut files_scanned = 0usize;
    for (path, rules) in &per_file {
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("grefar-verify: cannot read {}", path.display());
            total += 1;
            continue;
        };
        files_scanned += 1;
        let violations: Vec<Violation> = check_source(&source, rules);
        let rel = path.strip_prefix(&root).unwrap_or(path);
        for v in &violations {
            println!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
        }
        total += violations.len();
    }

    if total > 0 {
        eprintln!("grefar-verify: {total} violation(s) in {files_scanned} scanned file(s)");
        ExitCode::FAILURE
    } else {
        println!("grefar-verify: {files_scanned} files clean");
        ExitCode::SUCCESS
    }
}
