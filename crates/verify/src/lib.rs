//! `grefar-verify` — the workspace's static-analysis engine.
//!
//! GreFar's guarantees (Theorem 1) are only as good as the code's
//! discipline: per-slot decisions must be bit-deterministic and feasible,
//! float comparisons must be tolerance-aware, hot paths must not panic or
//! allocate, and every telemetry event must match the central schema
//! registry. Clippy cannot express those rules, so this crate carries a
//! hand-rolled scanner and tokenizer (offline, zero external
//! dependencies, no `syn`) plus two layers of checks, run over the
//! workspace by the `grefar-verify` binary:
//!
//! ```text
//! cargo run -p grefar-verify                  # human-readable findings
//! cargo run -p grefar-verify -- --format json # machine-readable findings
//! cargo run -p grefar-verify -- deps-audit    # manifest hygiene only
//! ```
//!
//! * **Per-line lexical rules** ([`rules`]): `determinism`, `float-eq`,
//!   `no-panic` (plus a strict variant that also bans subscripts),
//!   `errors-doc`. These see one cleaned file at a time.
//! * **Cross-file passes** ([`passes`]): `event-schema` (construction
//!   sites and consumer `match`es vs. [`grefar_obs::schema::EVENTS`]),
//!   `hot-path-alloc` (no heap allocation in the per-slot call tree),
//!   and `deps-audit` (lockfile duplicates, unused manifest entries).
//!   These see a whole [`model::Workspace`].
//!
//! Findings carry a [`findings::Severity`]: errors always fail the run,
//! warnings fail under `--deny-warnings` (which `scripts/check.sh`
//! passes). See [`scanner`] for the lexical preprocessing
//! (comment/string blanking, `#[cfg(test)]` detection, and the
//! `verify: allow(<rule>): <justification>` / `verify:
//! match-events(<channel>[, partial])` directives) and [`tokens`] for
//! the token stream the passes pattern-match against.
//!
//! The library half exists so every rule and pass is testable against
//! fixture source (see `tests/fixtures.rs`) — the binary is a thin
//! driver that maps rules onto workspace scopes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod model;
pub mod passes;
pub mod rules;
pub mod scanner;
pub mod tokens;

pub use findings::{render_json, sort_findings, Finding, Severity};
pub use model::{FileModel, FnItem, Workspace};
pub use rules::{
    check_determinism, check_directives, check_errors_doc, check_float_eq, check_no_panic,
    check_no_panic_strict, Violation, RULE_DEPS_AUDIT, RULE_DETERMINISM, RULE_DIRECTIVE,
    RULE_ERRORS_DOC, RULE_EVENT_SCHEMA, RULE_FLOAT_EQ, RULE_HOT_PATH_ALLOC, RULE_NO_PANIC,
};
pub use scanner::{clean, CleanedSource, MatchEvents};

/// Runs the named per-line rules over one file's source, returning
/// violations (including malformed suppression directives).
pub fn check_source(source: &str, rule_names: &[&str]) -> Vec<Violation> {
    let cleaned = clean(source);
    let mut out = check_directives(&cleaned);
    for rule in rule_names {
        match *rule {
            RULE_DETERMINISM => out.extend(check_determinism(&cleaned)),
            RULE_FLOAT_EQ => out.extend(check_float_eq(&cleaned)),
            RULE_NO_PANIC => out.extend(check_no_panic(&cleaned)),
            RULE_ERRORS_DOC => out.extend(check_errors_doc(&cleaned, source)),
            other => out.push(Violation {
                line: 0,
                rule: RULE_DIRECTIVE,
                severity: Severity::Error,
                message: format!("unknown rule `{other}`"),
            }),
        }
    }
    out.sort_by_key(|v| v.line);
    out
}
