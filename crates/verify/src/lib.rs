//! `grefar-verify` — the workspace's repo-specific lint pass.
//!
//! GreFar's guarantees (Theorem 1) are only as good as the code's
//! discipline: per-slot decisions must be bit-deterministic and feasible,
//! float comparisons must be tolerance-aware, and hot paths must not
//! panic. Clippy cannot express those rules, so this crate carries a
//! small hand-rolled scanner (offline, zero dependencies, no `syn`) plus
//! four rules, run over the workspace by the `grefar-verify` binary:
//!
//! ```text
//! cargo run -p grefar-verify
//! ```
//!
//! See [`rules`] for the rule definitions and [`scanner`] for the lexical
//! preprocessing (comment/string blanking, `#[cfg(test)]` detection, and
//! `verify: allow(<rule>): <justification>` suppression directives).
//!
//! The library half exists so the rules are testable against fixture
//! source (see `tests/fixtures.rs`) — the binary is a thin driver that
//! maps rules onto workspace directories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod scanner;

pub use rules::{
    check_determinism, check_directives, check_errors_doc, check_float_eq, check_no_panic,
    Violation, RULE_DETERMINISM, RULE_DIRECTIVE, RULE_ERRORS_DOC, RULE_FLOAT_EQ, RULE_NO_PANIC,
};
pub use scanner::{clean, CleanedSource};

/// Runs the named rules over one file's source, returning violations
/// (including malformed suppression directives).
pub fn check_source(source: &str, rule_names: &[&str]) -> Vec<Violation> {
    let cleaned = clean(source);
    let mut out = check_directives(&cleaned);
    for rule in rule_names {
        match *rule {
            RULE_DETERMINISM => out.extend(check_determinism(&cleaned)),
            RULE_FLOAT_EQ => out.extend(check_float_eq(&cleaned)),
            RULE_NO_PANIC => out.extend(check_no_panic(&cleaned)),
            RULE_ERRORS_DOC => out.extend(check_errors_doc(&cleaned, source)),
            other => out.push(Violation {
                line: 0,
                rule: RULE_DIRECTIVE,
                message: format!("unknown rule `{other}`"),
            }),
        }
    }
    out.sort_by_key(|v| v.line);
    out
}
