//! The cross-file workspace model the multi-file passes run over.
//!
//! The original rules were strictly per-line, per-file; the `event-schema`
//! and `hot-path-alloc` passes need more: token streams with literal
//! contents (event names, field keys, match arms), function item spans
//! (to bound variable-binder searches and capacity tracking), and
//! attribute awareness (`#[cfg(...)]`-gated items are off the
//! unconditional hot path). [`Workspace::load`] reads every `.rs` file
//! under the scoped directories once and builds a [`FileModel`] for each:
//! raw source, [`CleanedSource`] (line metadata, suppression directives),
//! [`Token`] stream, and the [`FnItem`] list.

use std::path::{Path, PathBuf};

use crate::scanner::{clean, CleanedSource};
use crate::tokens::{tokenize, Token};

/// One `fn` item: name, 1-based line span, and attribute gating.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace (or the declaration line
    /// for bodiless trait methods).
    pub end_line: usize,
    /// The item carries a `#[cfg(...)]` attribute — it is conditionally
    /// compiled (e.g. `strict-invariants` diagnostics) and therefore not
    /// part of the unconditional hot path.
    pub cfg_gated: bool,
}

/// One parsed source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The raw source text.
    pub raw: String,
    /// Lexically cleaned source plus line metadata (see
    /// [`crate::scanner`]).
    pub cleaned: CleanedSource,
    /// The token stream with string-literal contents retained.
    pub tokens: Vec<Token>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl FileModel {
    /// Builds the model for one file's source.
    pub fn from_source(rel: String, raw: String) -> Self {
        let cleaned = clean(&raw);
        let tokens = tokenize(&raw);
        let fns = find_fns(&cleaned, &raw);
        FileModel {
            rel,
            raw,
            cleaned,
            tokens,
            fns,
        }
    }

    /// The innermost `fn` whose span contains 1-based `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Index one past the last token on or before 1-based `line`
    /// (tokens are in line order).
    pub fn tokens_end_of_line(&self, line: usize) -> usize {
        self.tokens.partition_point(|t| t.line <= line)
    }
}

/// Every file loaded for one verify run, sorted by path.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// The file models, sorted by [`FileModel::rel`].
    pub files: Vec<FileModel>,
}

impl Workspace {
    /// Loads every `.rs` file under `paths` (directories are walked
    /// recursively; `.rs` entries load directly). Skips `target/` and
    /// integration-test trees (`tests/`, `benches/`, `examples/`,
    /// `src/bin`) — unit `#[cfg(test)]` modules are kept and handled by
    /// per-line exemption. Duplicate paths collapse. Unreadable files are
    /// returned in the error list rather than silently dropped.
    pub fn load(root: &Path, paths: &[&str]) -> (Self, Vec<String>) {
        let mut abs_files: Vec<PathBuf> = Vec::new();
        for rel in paths {
            let full = root.join(rel);
            if full.extension().is_some_and(|e| e == "rs") {
                abs_files.push(full);
            } else {
                walk_rust_files(&full, &mut abs_files);
            }
        }
        abs_files.sort();
        abs_files.dedup();

        let mut errors = Vec::new();
        let mut files = Vec::new();
        for path in abs_files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&path) {
                Ok(raw) => files.push(FileModel::from_source(rel, raw)),
                Err(e) => errors.push(format!("cannot read {rel}: {e}")),
            }
        }
        (Workspace { files }, errors)
    }

    /// Looks a file up by workspace-relative path.
    pub fn file(&self, rel: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Collects `.rs` files under `dir`, skipping exempt trees.
fn walk_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "bin" | "tests" | "benches" | "examples" | "target"
            ) {
                continue;
            }
            walk_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Finds `fn` items in the cleaned source by keyword scan + brace
/// matching; attribute lines above each item decide `cfg_gated`.
fn find_fns(cleaned: &CleanedSource, raw: &str) -> Vec<FnItem> {
    let code = &cleaned.code;
    let bytes = code.as_bytes();
    let raw_lines: Vec<&str> = raw.lines().collect();

    // Byte offset -> 0-based line.
    let mut line_of = Vec::with_capacity(bytes.len() + 1);
    let mut l = 0usize;
    for &b in bytes {
        line_of.push(l);
        if b == b'\n' {
            l += 1;
        }
    }
    line_of.push(l);

    let mut fns = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("fn ") {
        let at = from + rel;
        from = at + 1;
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let name: String = code[at + "fn ".len()..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue; // `fn(` function-pointer type, not an item
        }
        let start_line = line_of[at] + 1;

        // Body extent: the matching `}` of the first `{`, or the `;` of a
        // bodiless declaration, whichever comes first.
        let mut end = at;
        let mut depth = 0usize;
        let mut started = false;
        for (off, &b) in bytes.iter().enumerate().skip(at) {
            match b {
                b'{' => {
                    depth += 1;
                    started = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        end = off;
                        break;
                    }
                }
                b';' if !started => {
                    end = off;
                    break;
                }
                _ => {}
            }
        }
        let end_line = line_of[end.min(bytes.len())] + 1;

        // Attributes: contiguous `#[...]` / doc lines directly above.
        let mut cfg_gated = false;
        let mut j = start_line.saturating_sub(1); // 0-based line above
        while j > 0 {
            j -= 1;
            let t = raw_lines.get(j).map(|s| s.trim()).unwrap_or("");
            if t.starts_with("///") || t.starts_with("//") {
                continue;
            }
            if t.starts_with("#[") || t.starts_with("#![") {
                if t.contains("cfg(") {
                    cfg_gated = true;
                }
                continue;
            }
            break;
        }

        fns.push(FnItem {
            name,
            start_line,
            end_line,
            cfg_gated,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_enclosing_lookup() {
        let src = "\
fn outer() {
    let x = 1;
    helper(x);
}

fn helper(x: u32) -> u32 {
    x + 1
}
";
        let m = FileModel::from_source("x.rs".to_string(), src.to_string());
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "outer");
        assert_eq!((m.fns[0].start_line, m.fns[0].end_line), (1, 4));
        assert_eq!(m.enclosing_fn(2).unwrap().name, "outer");
        assert_eq!(m.enclosing_fn(7).unwrap().name, "helper");
        assert!(m.enclosing_fn(5).is_none());
    }

    #[test]
    fn cfg_attributes_gate_items() {
        let src = "\
#[cfg(feature = \"strict-invariants\")]
fn check_invariants() {
    let detail = format!(\"x\");
}

#[inline]
fn hot() -> u32 { 1 }
";
        let m = FileModel::from_source("x.rs".to_string(), src.to_string());
        assert!(m.fns[0].cfg_gated);
        assert!(!m.fns[1].cfg_gated);
    }

    #[test]
    fn nested_fns_pick_innermost() {
        let src = "\
fn outer() {
    fn inner(a: u32) -> u32 {
        a
    }
    inner(1);
}
";
        let m = FileModel::from_source("x.rs".to_string(), src.to_string());
        assert_eq!(m.enclosing_fn(3).unwrap().name, "inner");
        assert_eq!(m.enclosing_fn(5).unwrap().name, "outer");
    }

    #[test]
    fn token_line_partition() {
        let src = "fn a() {}\nfn b() {}\n";
        let m = FileModel::from_source("x.rs".to_string(), src.to_string());
        let end1 = m.tokens_end_of_line(1);
        assert!(m.tokens[..end1].iter().all(|t| t.line == 1));
        assert!(m.tokens[end1..].iter().all(|t| t.line == 2));
    }
}
