//! A real token stream for the cross-file passes.
//!
//! The lexical [`clean`](crate::scanner::clean) pass blanks comments and
//! literals, which is enough for the line-oriented rules but loses the
//! one thing the `event-schema` pass needs: *string literal contents*
//! (event names, field keys, match-arm patterns). This tokenizer keeps
//! them. It understands the constructs the scanner's tests pin down —
//! nested block comments, raw strings with any hash count, byte and raw
//! byte strings, raw identifiers (`r#type`), char literals vs lifetimes,
//! multi-line strings — and tags every token with its 1-based line.
//!
//! It is deliberately not a full Rust lexer: numbers are lexed
//! approximately (good enough to not split `1.5e-3` or glue `0..n`), and
//! multi-char operators are emitted as single-char [`TokenKind::Punct`]
//! tokens (`::` is two `:` tokens). The passes match on token sequences,
//! so neither simplification loses information they need.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Event`, `r#type` — raw prefix
    /// stripped, so `text` is `type`).
    Ident,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); `text`
    /// holds the (basic-unescaped) contents.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`); contents in `text`.
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A numeric literal (`42`, `1.5e-3`, `0xff`, `1_000u64`).
    Number,
    /// A single punctuation character (`{`, `.`, `:`, `=` …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Identifier text, literal contents, or the punctuation character.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes one file. Never fails: unterminated constructs run to EOF.
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::with_capacity(source.len() / 4);
    let mut line = 1usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (token, rest) = lex_string(&chars, i, &mut line);
                tokens.push(token);
                i = rest;
            }
            '\'' => {
                let (token, rest) = lex_char_or_lifetime(&chars, i, &mut line);
                tokens.push(token);
                i = rest;
            }
            c if c.is_ascii_digit() => {
                let (token, rest) = lex_number(&chars, i, line);
                tokens.push(token);
                i = rest;
            }
            c if is_ident_start(c) => {
                // Literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…',
                // and raw identifiers r#ident.
                if let Some((token, rest)) = lex_prefixed_literal(&chars, i, &mut line) {
                    tokens.push(token);
                    i = rest;
                    continue;
                }
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// `r"…"`, `r#…#`, `b"…"`, `br#"…"#`, `b'…'`, `r#ident`. Returns `None`
/// when the identifier at `i` is not a literal prefix.
fn lex_prefixed_literal(chars: &[char], i: usize, line: &mut usize) -> Option<(Token, usize)> {
    let c = chars[i];
    let next = chars.get(i + 1).copied();
    match (c, next) {
        ('r', Some('#')) => {
            // Raw string r#"…"# or raw identifier r#ident.
            let mut j = i + 1;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                Some(lex_raw_string(chars, i + 1, j - i - 1, *line, line))
            } else if j == i + 2 && chars.get(j).is_some_and(|&c| is_ident_start(c)) {
                // r#ident — one hash, then the identifier.
                let start = j;
                let mut k = j;
                while k < chars.len() && is_ident_continue(chars[k]) {
                    k += 1;
                }
                Some((
                    Token {
                        kind: TokenKind::Ident,
                        text: chars[start..k].iter().collect(),
                        line: *line,
                    },
                    k,
                ))
            } else {
                None
            }
        }
        ('r', Some('"')) => Some(lex_raw_string(chars, i + 1, 0, *line, line)),
        ('b', Some('"')) => {
            let (mut token, rest) = lex_string(chars, i + 1, line);
            token.line = token.line.min(*line);
            Some((token, rest))
        }
        ('b', Some('\'')) => {
            let (token, rest) = lex_char_or_lifetime(chars, i + 1, line);
            Some((token, rest))
        }
        ('b', Some('r')) => {
            let mut j = i + 2;
            while chars.get(j) == Some(&'#') {
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                Some(lex_raw_string(chars, i + 2, j - i - 2, *line, line))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Lexes a raw string whose `#…#"` run starts at `hash_start` with
/// `hashes` hashes. Returns the token and the index one past the close.
fn lex_raw_string(
    chars: &[char],
    hash_start: usize,
    hashes: usize,
    start_line: usize,
    line: &mut usize,
) -> (Token, usize) {
    let mut i = hash_start + hashes + 1; // past the opening quote
    let content_start = i;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                let text: String = chars[content_start..i].iter().collect();
                return (
                    Token {
                        kind: TokenKind::Str,
                        text,
                        line: start_line,
                    },
                    i + 1 + hashes,
                );
            }
        }
        if chars[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    let text: String = chars[content_start..].iter().collect();
    (
        Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        },
        chars.len(),
    )
}

/// Lexes a plain (escaped) string starting at the `"` at `i`.
fn lex_string(chars: &[char], i: usize, line: &mut usize) -> (Token, usize) {
    let start_line = *line;
    let mut text = String::new();
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                match chars.get(j + 1) {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('r') => text.push('\r'),
                    Some('"') => text.push('"'),
                    Some('\\') => text.push('\\'),
                    Some('\n') => *line += 1, // line-continuation escape
                    Some(other) => {
                        text.push('\\');
                        text.push(*other);
                    }
                    None => {}
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                text.push(c);
                j += 1;
            }
        }
    }
    (
        Token {
            kind: TokenKind::Str,
            text,
            line: start_line,
        },
        j,
    )
}

/// Lexes a char literal or lifetime starting at the `'` at `i`.
fn lex_char_or_lifetime(chars: &[char], i: usize, line: &mut usize) -> (Token, usize) {
    let start_line = *line;
    // Escaped char: '\…'.
    if chars.get(i + 1) == Some(&'\\') {
        let mut j = i + 2;
        while j < chars.len() && chars[j] != '\'' {
            j += 1;
        }
        let text: String = chars[i + 1..j.min(chars.len())].iter().collect();
        return (
            Token {
                kind: TokenKind::Char,
                text,
                line: start_line,
            },
            (j + 1).min(chars.len()),
        );
    }
    // Plain char: 'x'.
    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
        let text = chars.get(i + 1).map(|c| c.to_string()).unwrap_or_default();
        return (
            Token {
                kind: TokenKind::Char,
                text,
                line: start_line,
            },
            i + 3,
        );
    }
    // Lifetime: 'ident.
    let start = i + 1;
    let mut j = start;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    (
        Token {
            kind: TokenKind::Lifetime,
            text: chars[start..j].iter().collect(),
            line: start_line,
        },
        j.max(i + 1),
    )
}

/// Lexes a numeric literal: digits plus alphanumeric/underscore
/// continuation, a fraction part (but not `..`), and a signed exponent.
fn lex_number(chars: &[char], i: usize, line: usize) -> (Token, usize) {
    let start = i;
    let mut j = i;
    while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
        j += 1;
        // Signed exponent: 1e-9, 2E+6 (not hex: 0x1e-…, handled fine
        // because hex literals don't continue past the sign anyway).
        if j < chars.len()
            && (chars[j] == '-' || chars[j] == '+')
            && matches!(chars[j - 1], 'e' | 'E')
            && !chars[start..j].iter().collect::<String>().starts_with("0x")
        {
            j += 1;
        }
    }
    // Fraction: a single '.' followed by a digit (so `0..n` stays a range).
    if j < chars.len() && chars[j] == '.' && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        j += 1;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
            if j < chars.len()
                && (chars[j] == '-' || chars[j] == '+')
                && matches!(chars[j - 1], 'e' | 'E')
            {
                j += 1;
            }
        }
    }
    (
        Token {
            kind: TokenKind::Number,
            text: chars[start..j].iter().collect(),
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn main() { let x = 1.5; }");
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5".into())));
    }

    #[test]
    fn string_contents_survive() {
        let toks = tokenize("Event::new(\"grefar.decide\")");
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "grefar.decide");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = tokenize(r####"let a = r#"one "quoted" two"#; let b = r"plain";"####);
        let strs: Vec<String> = toks
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(
            strs,
            vec!["one \"quoted\" two".to_string(), "plain".to_string()]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = tokenize("let a = b\"bytes\"; let b = br#\"raw\\bytes\"#;");
        let strs: Vec<String> = toks
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["bytes".to_string(), "raw\\bytes".to_string()]);
    }

    #[test]
    fn raw_identifier_keeps_name() {
        let toks = tokenize("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        // And `r` alone stays an ordinary identifier.
        let toks = tokenize("let r = 1;");
        assert!(toks.iter().any(|t| t.is_ident("r")));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = tokenize("let c: char = 'x'; fn f<'a>(s: &'a str) {}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let src = "// line one\n/* nested /* deep */ still */\nfn f() {}\n\"multi\nline\"\n";
        let toks = tokenize(src);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.line, 4);
        assert_eq!(s.text, "multi\nline");
    }

    #[test]
    fn ranges_do_not_glue() {
        let toks = kinds("for i in 0..n { a[i] = 1e-9; }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "1e-9".into())));
    }
}
