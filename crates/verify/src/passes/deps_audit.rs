//! The `deps-audit` pass: manifest hygiene without external tooling.
//!
//! Two checks, both hand-rolled over the TOML subset Cargo actually
//! emits (no TOML crate — the workspace stays dependency-free):
//!
//! * **Duplicate versions** — `Cargo.lock` resolving the same package
//!   name at more than one version doubles compile time and binary size
//!   and usually signals a drifted manifest. Error.
//! * **Declared-but-unused dependencies** — a `[dependencies]` entry in
//!   a member crate whose identifier (`-` → `_`) never appears as
//!   `ident::` or `use ident` in the crate's sources is dead weight.
//!   Error for `[dependencies]`, warning for `[dev-dependencies]`
//!   (tests and benches come and go). Workspace-level
//!   `[workspace.dependencies]` keys no member references are warnings.

use std::fs;
use std::path::Path;

use crate::findings::{Finding, Severity};
use crate::rules::RULE_DEPS_AUDIT;

/// Runs the audit from the workspace root.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    check_lock_duplicates(root, &mut out);
    check_unused_deps(root, &mut out);
    out
}

fn check_lock_duplicates(root: &Path, out: &mut Vec<Finding>) {
    let Ok(lock) = fs::read_to_string(root.join("Cargo.lock")) else {
        return; // no lockfile (fresh checkout pre-build) — nothing to audit
    };
    let mut seen: Vec<(String, Vec<(String, usize)>)> = Vec::new();
    let mut name: Option<(String, usize)> = None;
    for (idx, line) in lock.lines().enumerate() {
        let line = line.trim();
        if line == "[[package]]" {
            name = None;
        } else if let Some(v) = toml_str_value(line, "name") {
            name = Some((v, idx + 1));
        } else if let Some(v) = toml_str_value(line, "version") {
            if let Some((n, at)) = name.take() {
                match seen.iter_mut().find(|(sn, _)| *sn == n) {
                    Some((_, versions)) => versions.push((v, at)),
                    None => seen.push((n, vec![(v, at)])),
                }
            }
        }
    }
    for (pkg, versions) in &seen {
        if versions.len() > 1 {
            let list: Vec<&str> = versions.iter().map(|(v, _)| v.as_str()).collect();
            out.push(Finding {
                file: "Cargo.lock".to_string(),
                line: versions[0].1,
                rule: RULE_DEPS_AUDIT,
                severity: Severity::Error,
                message: format!(
                    "package `{pkg}` resolved at {} versions ({}); unify the \
                     requirements so one copy is built",
                    versions.len(),
                    list.join(", ")
                ),
            });
        }
    }
}

fn check_unused_deps(root: &Path, out: &mut Vec<Finding>) {
    // Workspace members: crates/*/Cargo.toml plus the root manifest (the
    // root is both the workspace and the `grefar` facade package). Vendored
    // stand-ins under vendor/ are deliberately not audited.
    let mut member_manifests: Vec<(String, String)> = Vec::new();
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        member_manifests.push(("Cargo.toml".to_string(), text));
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                let rel = format!(
                    "crates/{}/Cargo.toml",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                );
                member_manifests.push((rel, text));
            }
        }
    }

    let mut all_dep_keys_used_by_members: Vec<String> = Vec::new();
    for (rel, text) in &member_manifests {
        let crate_dir = Path::new(rel).parent().unwrap_or(Path::new(""));
        let sources = crate_sources(&root.join(crate_dir));
        for dep in parse_dep_entries(text) {
            all_dep_keys_used_by_members.push(dep.key.clone());
            if dep.key.starts_with("grefar-") {
                // Workspace-internal crates: used via their lib name; same
                // check applies, no special casing needed — fall through.
            }
            let ident = dep.key.replace('-', "_");
            if !ident_used(&sources, &ident) {
                let (sev, table) = if dep.dev {
                    (Severity::Warning, "[dev-dependencies]")
                } else {
                    (Severity::Error, "[dependencies]")
                };
                out.push(Finding {
                    file: rel.clone(),
                    line: dep.line,
                    rule: RULE_DEPS_AUDIT,
                    severity: sev,
                    message: format!(
                        "`{}` is declared in {table} but `{}` never appears in \
                         this crate's sources; drop the dependency",
                        dep.key, ident
                    ),
                });
            }
        }
    }

    // [workspace.dependencies] in the root manifest: flag keys no member
    // manifest references at all.
    let Ok(root_manifest) = fs::read_to_string(root.join("Cargo.toml")) else {
        return;
    };
    for dep in parse_table_entries(&root_manifest, "[workspace.dependencies]") {
        let referenced = member_manifests.iter().any(|(_, text)| {
            text.contains(&format!("{} ", dep.key)) || text.contains(&format!("{} =", dep.key))
        }) || all_dep_keys_used_by_members.iter().any(|k| k == &dep.key);
        if !referenced {
            out.push(Finding {
                file: "Cargo.toml".to_string(),
                line: dep.line,
                rule: RULE_DEPS_AUDIT,
                severity: Severity::Warning,
                message: format!(
                    "`{}` is declared in [workspace.dependencies] but no member \
                     crate references it",
                    dep.key
                ),
            });
        }
    }
}

struct DepEntry {
    key: String,
    line: usize,
    dev: bool,
}

/// `key = …` entries under `[dependencies]` / `[dev-dependencies]`.
fn parse_dep_entries(manifest: &str) -> Vec<DepEntry> {
    let mut out = Vec::new();
    for (table, dev) in [("[dependencies]", false), ("[dev-dependencies]", true)] {
        for e in parse_table_entries(manifest, table) {
            out.push(DepEntry {
                key: e.key,
                line: e.line,
                dev,
            });
        }
    }
    out
}

struct TableEntry {
    key: String,
    line: usize,
}

fn parse_table_entries(manifest: &str, table: &str) -> Vec<TableEntry> {
    let mut out = Vec::new();
    let mut in_table = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == table;
            continue;
        }
        if !in_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            // `grefar-core.workspace = true` declares the key `grefar-core`.
            let key = line[..eq].trim().trim_matches('"');
            let key = key.split('.').next().unwrap_or(key);
            if !key.is_empty() {
                out.push(TableEntry {
                    key: key.to_string(),
                    line: idx + 1,
                });
            }
        }
    }
    out
}

/// `name = "value"` on a single lockfile line.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start().strip_prefix('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// All `.rs` sources under the crate dir (src/, tests/, benches/,
/// examples/), concatenated — good enough for an identifier scan.
fn crate_sources(crate_dir: &Path) -> String {
    let mut out = String::new();
    for sub in ["src", "tests", "benches", "examples"] {
        collect_rs(&crate_dir.join(sub), &mut out);
    }
    out
}

fn collect_rs(dir: &Path, out: &mut String) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&p) {
                out.push_str(&text);
                out.push('\n');
            }
        }
    }
}

/// Is `ident` used as a crate path anywhere in `sources`? Catches
/// `ident::`, `use ident`, and `extern crate ident`.
fn ident_used(sources: &str, ident: &str) -> bool {
    for (pat, suffix_ok) in [
        (format!("{ident}::"), true),
        (format!("use {ident}"), false),
        (format!("extern crate {ident}"), false),
    ] {
        let mut from = 0usize;
        while let Some(rel) = sources[from..].find(&pat) {
            let at = from + rel;
            from = at + pat.len();
            let before_ok = at == 0
                || !sources.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && sources.as_bytes()[at - 1] != b'_';
            if !before_ok {
                continue;
            }
            if suffix_ok {
                return true;
            }
            // `use ident` must end at a boundary (`;`, `::`, whitespace).
            let after = sources.as_bytes().get(at + pat.len());
            if !after.is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_') {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockfile_duplicates_are_flagged() {
        let dir = std::env::temp_dir().join("grefar_verify_deps_audit_dup");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("Cargo.lock"),
            "version = 3\n\n[[package]]\nname = \"alpha\"\nversion = \"1.0.0\"\n\n\
             [[package]]\nname = \"alpha\"\nversion = \"2.0.0\"\n\n\
             [[package]]\nname = \"beta\"\nversion = \"0.1.0\"\n",
        )
        .unwrap();
        let f = check(&dir);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`alpha`"));
        assert!(f[0].message.contains("1.0.0, 2.0.0"));
        assert_eq!(f[0].severity, Severity::Error);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unused_dependency_is_flagged_and_used_one_is_not() {
        let dir = std::env::temp_dir().join("grefar_verify_deps_audit_unused");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/demo/src")).unwrap();
        fs::write(
            dir.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\n\n[dependencies]\n\
             used-dep = { path = \"../used\" }\nunused-dep = { path = \"../unused\" }\n\n\
             [dev-dependencies]\ndev-unused = { path = \"../dev\" }\n",
        )
        .unwrap();
        fs::write(
            dir.join("crates/demo/src/lib.rs"),
            "pub fn f() -> u64 { used_dep::g() }\n",
        )
        .unwrap();
        let f = check(&dir);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.message.contains("`unused-dep`") && x.severity == Severity::Error));
        assert!(f
            .iter()
            .any(|x| x.message.contains("`dev-unused`") && x.severity == Severity::Warning));
        assert!(!f.iter().any(|x| x.message.contains("`used-dep`")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_real_workspace_is_clean() {
        // Guards the repo itself: the audit over /root/repo (well, over
        // CARGO_MANIFEST_DIR/../..) must report nothing.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let f = check(&root);
        assert_eq!(f, vec![], "{f:?}");
    }
}
