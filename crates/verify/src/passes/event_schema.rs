//! The `event-schema` pass: the telemetry contract as a compile gate.
//!
//! The [`grefar_obs::schema::EVENTS`] registry declares every event name
//! and its required/optional fields. This pass holds the workspace to it
//! from both ends:
//!
//! * **Emission sites** — every `Event::new("…")` in the emit scope must
//!   use a registered name, set no undeclared field, and set every
//!   required field at least once on some path. Field keys are collected
//!   from the builder chain *and*, when the event is bound to a variable
//!   (`let mut event = Event::new(…)`), from every later
//!   `event.field("…", …)` / `event = event.field(…)` in the enclosing
//!   function — so conditionally-attached fields count (they must be
//!   declared `optional`). Sites with non-literal names or computed keys
//!   are skipped statically; the `synthesize`-based fixture tests cover
//!   them at runtime.
//! * **Consumer matches** — a `match` annotated with
//!   `// verify: match-events(<channel>[, partial])` must use only
//!   registered names in its string arms, and per file the union of all
//!   annotated arms must cover the channel's full registry (waived only
//!   when every annotation in the file is `partial`). The metrics fold
//!   and the report stream parser are *required* to carry a `telemetry`
//!   annotation — deleting the comment is itself a finding — which makes
//!   the live/offline fold identity a static guarantee, not a hope.

use grefar_obs::schema::{self, Channel};

use crate::findings::{Finding, Severity};
use crate::model::{FileModel, Workspace};
use crate::rules::RULE_EVENT_SCHEMA;
use crate::tokens::{Token, TokenKind};

/// Files that must carry at least one non-`partial`
/// `match-events(telemetry)` annotation: the two consumers whose arm
/// coverage *is* the live/offline fold identity.
pub const REQUIRED_MATCH_FILES: &[&str] =
    &["crates/metrics/src/fold.rs", "crates/report/src/stream.rs"];

/// Runs the pass. `emit_scope` lists workspace-relative directories (or
/// `.rs` files) whose construction sites are checked; match annotations
/// are honored in every loaded file.
pub fn check(ws: &Workspace, emit_scope: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if in_scope(&file.rel, emit_scope) {
            check_emissions(file, &mut out);
        }
        check_matches(file, &mut out);
    }
    for rel in REQUIRED_MATCH_FILES {
        let ok = ws.file(rel).is_some_and(|f| {
            f.cleaned
                .match_events
                .iter()
                .any(|m| m.channel == "telemetry" && !m.partial)
        });
        if !ok {
            out.push(Finding {
                file: (*rel).to_string(),
                line: 0,
                rule: RULE_EVENT_SCHEMA,
                severity: Severity::Error,
                message: "this consumer must annotate its event match with \
                          `// verify: match-events(telemetry)` (full coverage); \
                          the annotation is load-bearing — do not delete it"
                    .to_string(),
            });
        }
    }
    out
}

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|s| rel == *s || (rel.starts_with(s) && rel.as_bytes().get(s.len()) == Some(&b'/')))
}

/// Index one past the `)` matching the `(` at `open`.
fn skip_parens(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Consumes a `.field("key", …)` chain starting at `j`; returns the index
/// after the chain. Literal keys land in `used`; a computed key sets
/// `dynamic`.
fn collect_field_chain(
    toks: &[Token],
    mut j: usize,
    used: &mut Vec<String>,
    dynamic: &mut bool,
) -> usize {
    while j + 2 < toks.len()
        && toks[j].is_punct('.')
        && toks[j + 1].is_ident("field")
        && toks[j + 2].is_punct('(')
    {
        match toks.get(j + 3) {
            Some(t) if t.kind == TokenKind::Str => used.push(t.text.clone()),
            _ => *dynamic = true,
        }
        j = skip_parens(toks, j + 2);
    }
    j
}

fn check_emissions(file: &FileModel, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i + 5 < toks.len() {
        if !(toks[i].is_ident("Event")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('('))
        {
            i += 1;
            continue;
        }
        let site = i;
        let line = toks[i].line;
        i += 5;
        if file.cleaned.is_test(line) || file.cleaned.is_allowed(RULE_EVENT_SCHEMA, line) {
            continue;
        }
        let name = match &toks[site + 5] {
            t if t.kind == TokenKind::Str => t.text.clone(),
            // Non-literal name (e.g. `Event::new(schema.name)`): not
            // statically checkable; the synthesize fixture tests cover it.
            _ => continue,
        };
        let Some(event) = schema::lookup(&name) else {
            out.push(Finding {
                file: file.rel.clone(),
                line,
                rule: RULE_EVENT_SCHEMA,
                severity: Severity::Error,
                message: format!(
                    "`Event::new(\"{name}\")` uses a name not in the registry; \
                     declare it in crates/obs/src/schema.rs (EVENTS)"
                ),
            });
            continue;
        };

        // Fields from the immediate builder chain…
        let mut used: Vec<String> = Vec::new();
        let mut dynamic = false;
        let after_new = skip_parens(toks, site + 4);
        let mut after_chain = collect_field_chain(toks, after_new, &mut used, &mut dynamic);

        // …and, when bound to a variable, from later `.field` calls on the
        // binder anywhere in the enclosing function (conditional fields).
        let binder = (site >= 2
            && toks[site - 1].is_punct('=')
            && toks[site - 2].kind == TokenKind::Ident
            && !toks
                .get(site.wrapping_sub(3))
                .is_some_and(|t| t.is_punct('=')))
        .then(|| toks[site - 2].text.clone());
        if let (Some(binder), Some(item)) = (binder, file.enclosing_fn(line)) {
            let end = file.tokens_end_of_line(item.end_line);
            let mut m = after_chain;
            while m + 4 < end {
                if toks[m].is_ident(&binder)
                    && toks[m + 1].is_punct('.')
                    && toks[m + 2].is_ident("field")
                    && toks[m + 3].is_punct('(')
                {
                    match toks.get(m + 4) {
                        Some(t) if t.kind == TokenKind::Str => used.push(t.text.clone()),
                        _ => dynamic = true,
                    }
                    let after = skip_parens(toks, m + 3);
                    m = collect_field_chain(toks, after, &mut used, &mut dynamic);
                } else {
                    m += 1;
                }
            }
            after_chain = after_chain.max(m.min(end));
        }
        let _ = after_chain;
        if dynamic {
            continue; // computed key: runtime fixtures take over
        }

        used.sort_unstable();
        used.dedup();
        let declared: Vec<&str> = event
            .required
            .iter()
            .chain(event.optional)
            .map(|f| f.name)
            .collect();
        for key in &used {
            if !declared.contains(&key.as_str()) {
                out.push(Finding {
                    file: file.rel.clone(),
                    line,
                    rule: RULE_EVENT_SCHEMA,
                    severity: Severity::Error,
                    message: format!(
                        "event `{name}` sets undeclared field `{key}`; declare it \
                         (required or optional) in crates/obs/src/schema.rs"
                    ),
                });
            }
        }
        for req in event.required {
            if !used.iter().any(|k| k == req.name) {
                out.push(Finding {
                    file: file.rel.clone(),
                    line,
                    rule: RULE_EVENT_SCHEMA,
                    severity: Severity::Error,
                    message: format!(
                        "event `{name}` never sets required field `{}` at this \
                         construction site (demote it to optional if emission is \
                         conditional)",
                        req.name
                    ),
                });
            }
        }
    }
}

fn check_matches(file: &FileModel, out: &mut Vec<Finding>) {
    // Per-channel arm unions and partial-ness across the file.
    let mut telemetry: (Vec<String>, bool, bool) = (Vec::new(), true, false); // (arms, all_partial, any)
    let mut checkpoint: (Vec<String>, bool, bool) = (Vec::new(), true, false);

    for directive in &file.cleaned.match_events {
        let channel = match directive.channel.as_str() {
            "telemetry" => Channel::Telemetry,
            "checkpoint" => Channel::Checkpoint,
            other => {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: directive.line,
                    rule: RULE_EVENT_SCHEMA,
                    severity: Severity::Error,
                    message: format!(
                        "match-events names unknown channel `{other}` \
                         (expected `telemetry` or `checkpoint`)"
                    ),
                });
                continue;
            }
        };
        let Some(arms) = collect_match_arms(&file.tokens, directive.line) else {
            out.push(Finding {
                file: file.rel.clone(),
                line: directive.line,
                rule: RULE_EVENT_SCHEMA,
                severity: Severity::Error,
                message: "match-events annotation is not followed by a `match` \
                          within 10 lines"
                    .to_string(),
            });
            continue;
        };
        for arm in &arms {
            let registered = schema::lookup(arm).is_some_and(|s| s.channel == channel);
            if !registered {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: directive.line,
                    rule: RULE_EVENT_SCHEMA,
                    severity: Severity::Error,
                    message: format!(
                        "match arm `\"{arm}\"` is not a registered {} event",
                        directive.channel
                    ),
                });
            }
        }
        let slot = match channel {
            Channel::Telemetry => &mut telemetry,
            Channel::Checkpoint => &mut checkpoint,
        };
        slot.0.extend(arms);
        slot.1 &= directive.partial;
        slot.2 = true;
    }

    for (channel, label, (arms, all_partial, any)) in [
        (Channel::Telemetry, "telemetry", telemetry),
        (Channel::Checkpoint, "checkpoint", checkpoint),
    ] {
        if !any || all_partial {
            continue;
        }
        for name in schema::names(channel) {
            if !arms.iter().any(|a| a == name) {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: 0,
                    rule: RULE_EVENT_SCHEMA,
                    severity: Severity::Error,
                    message: format!(
                        "annotated {label} match arms do not cover registered \
                         event `{name}`; add an arm (an explicit no-op is fine) \
                         or mark every annotation `partial`"
                    ),
                });
            }
        }
    }
}

/// Finds the `match` following the annotation line and returns the string
/// literals appearing in its arm *patterns* (guards and arm bodies are
/// skipped). `None` when no `match` starts within 10 lines.
fn collect_match_arms(toks: &[Token], directive_line: usize) -> Option<Vec<String>> {
    let mi = toks.iter().position(|t| {
        t.kind == TokenKind::Ident
            && t.text == "match"
            && t.line >= directive_line
            && t.line <= directive_line + 10
    })?;
    // The match body: first `{` after the scrutinee (the scrutinee itself
    // cannot contain braces in the shapes we annotate).
    let open = (mi..toks.len()).find(|&j| toks[j].is_punct('{'))?;

    #[derive(PartialEq)]
    enum Mode {
        Pattern,
        Guard,
        Expr { block: bool },
    }
    let mut arms = Vec::new();
    let mut mode = Mode::Pattern;
    let mut depth = 1i32; // inside the match braces
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        let opening = t.is_punct('{') || t.is_punct('(') || t.is_punct('[');
        let closing = t.is_punct('}') || t.is_punct(')') || t.is_punct(']');
        if opening {
            depth += 1;
        } else if closing {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        match mode {
            Mode::Pattern => {
                if t.kind == TokenKind::Str {
                    arms.push(t.text.clone());
                } else if t.is_ident("if") && depth == 1 {
                    mode = Mode::Guard;
                } else if t.is_punct('=')
                    && depth == 1
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
                {
                    let block = toks.get(j + 2).is_some_and(|n| n.is_punct('{'));
                    mode = Mode::Expr { block };
                    j += 1; // consume the '>'
                }
            }
            Mode::Guard => {
                if t.is_punct('=') && depth == 1 && toks.get(j + 1).is_some_and(|n| n.is_punct('>'))
                {
                    let block = toks.get(j + 2).is_some_and(|n| n.is_punct('{'));
                    mode = Mode::Expr { block };
                    j += 1;
                }
            }
            Mode::Expr { block } => {
                if block {
                    // The block's own '}' returns depth to 1.
                    if closing && depth == 1 {
                        mode = Mode::Pattern;
                    }
                } else if t.is_punct(',') && depth == 1 {
                    mode = Mode::Pattern;
                }
            }
        }
        j += 1;
    }
    Some(arms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn model(rel: &str, src: &str) -> FileModel {
        FileModel::from_source(rel.to_string(), src.to_string())
    }

    fn check_one(file: FileModel) -> Vec<Finding> {
        let ws = Workspace { files: vec![file] };
        check(&ws, &["crates"])
            .into_iter()
            .filter(|f| f.line != 0 || !f.message.contains("load-bearing"))
            .collect()
    }

    #[test]
    fn registered_chain_site_is_clean() {
        let src = r#"
fn emit(obs: &mut dyn Observer) {
    obs.record_event(
        Event::new("sweep.run").field("label", "V=1"),
    );
}
"#;
        let f = check_one(model("crates/sim/src/sweep.rs", src));
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn unregistered_name_and_undeclared_field_fire() {
        let src = r#"
fn emit() {
    let a = Event::new("no.such.event");
    let b = Event::new("sweep.run").field("label", "x").field("bogus", 1_u64);
    let c = Event::new("sweep.run");
}
"#;
        let f = check_one(model("crates/sim/src/x.rs", src));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f[0].message.contains("not in the registry"), "{f:?}");
        assert!(f[1].message.contains("undeclared field `bogus`"), "{f:?}");
        assert!(f[2].message.contains("required field `label`"), "{f:?}");
    }

    #[test]
    fn binder_collects_conditional_fields() {
        let src = r#"
fn emit(dc: Option<u64>) -> Event {
    let mut event = Event::new("feed.quarantine")
        .field("t", 1_u64)
        .field("feed", "price");
    event = event.field("reason", "nan");
    if let Some(dc) = dc {
        event = event.field("dc", dc);
    }
    event
}
"#;
        let f = check_one(model("crates/ingest/src/x.rs", src));
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let e = Event::new(\"bogus\"); }\n}\n";
        let f = check_one(model("crates/sim/src/x.rs", src));
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn match_arms_checked_against_channel() {
        let src = r#"
fn fold(name: &str) {
    // verify: match-events(checkpoint, partial)
    match name {
        "ckpt.header" | "ckpt.end" => {}
        "not.registered" => {}
        other if other.is_empty() => {}
        _ => {}
    }
}
"#;
        let f = check_one(model("crates/sim/src/x.rs", src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not.registered"));
    }

    #[test]
    fn full_coverage_is_required_unless_partial() {
        let src = r#"
fn fold(name: &str) {
    // verify: match-events(checkpoint)
    match name {
        "ckpt.header" => {}
        _ => {}
    }
}
"#;
        let f = check_one(model("crates/sim/src/x.rs", src));
        assert!(
            f.iter().any(|x| x
                .message
                .contains("do not cover registered event `ckpt.end`")),
            "{f:?}"
        );
    }

    #[test]
    fn coverage_unions_across_matches_in_a_file() {
        // Every checkpoint event split across two annotated matches.
        let src = r#"
fn pre(name: &str) {
    // verify: match-events(checkpoint)
    match name {
        "ckpt.header" | "ckpt.end" | "ckpt.queues" => {}
        _ => {}
    }
}
fn body(name: &str) {
    // verify: match-events(checkpoint)
    match name {
        "ckpt.central_jobs" => { let x = 1; }
        "ckpt.local_jobs" | "ckpt.local_queues" => {}
        "ckpt.series" => {}
        "ckpt.tracker_dc" => {}
        "ckpt.ledger" => {}
        _ => {}
    }
}
"#;
        let f = check_one(model("crates/sim/src/x.rs", src));
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn required_consumers_must_be_annotated() {
        let ws = Workspace {
            files: vec![model("crates/metrics/src/fold.rs", "fn x() {}\n")],
        };
        let f = check(&ws, &[]);
        assert!(
            f.iter().any(
                |x| x.file.contains("fold.rs") && x.message.contains("match-events(telemetry)")
            ),
            "{f:?}"
        );
    }
}
