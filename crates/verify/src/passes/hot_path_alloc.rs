//! The `hot-path-alloc` pass: no heap allocation in the per-slot tree.
//!
//! GreFar's per-slot decision (`crates/core/src/solver`, the Frank–Wolfe
//! machinery in `crates/convex`, the simplex in `crates/lp`) runs once
//! per simulated slot — at fleet scale (ROADMAP items 2 and 5) that is
//! millions of calls, and every transient `Vec`/`String`/`Box` there is
//! allocator traffic and cache pollution. This pass flags:
//!
//! * **Errors** — definite transient allocations: `Vec::new()`,
//!   `String::new()`, `Box::new(…)`, `format!`, `.to_string()`,
//!   `.to_owned()`, `.to_vec()`, `.clone()`, and *unsized* `vec![a, b]`
//!   list literals. (`vec![x; n]` and `Vec::with_capacity(n)` are the
//!   sanctioned preallocation forms and stay clean.)
//! * **Warnings** — probable allocations: `.collect(…)` (size hints
//!   usually preallocate, but nothing proves it) and `.push(…)` onto a
//!   receiver not provably preallocated in the same function.
//!
//! `#[cfg(test)]` lines and `#[cfg(...)]`-gated functions (e.g.
//! `strict-invariants` diagnostics) are off the unconditional hot path
//! and exempt. Justify legitimate one-time allocations (setup, error
//! paths) with `verify: allow(hot-path-alloc): <why>`.

use crate::findings::{Finding, Severity};
use crate::model::{FileModel, FnItem};
use crate::rules::RULE_HOT_PATH_ALLOC;

const ERROR_NEEDLES: &[(&str, &str)] = &[
    (
        "Vec::new()",
        "allocates on first push; use Vec::with_capacity or reuse a buffer",
    ),
    (
        "String::new()",
        "allocates on first push; use String::with_capacity or reuse",
    ),
    (
        "Box::new(",
        "heap-allocates per call; store inline or preallocate",
    ),
    (
        "format!",
        "allocates a String per call; write into a reused buffer",
    ),
    (".to_string()", "allocates a String per call"),
    (".to_owned()", "allocates per call"),
    (".to_vec()", "copies into a fresh Vec per call"),
    (
        ".clone()",
        "deep-copies per call; borrow or reuse the existing value",
    ),
];

/// Runs the pass over one file.
pub fn check(file: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    let lines: Vec<&str> = file.cleaned.code.lines().collect();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.cleaned.is_test(lineno)
            || file.cleaned.is_allowed(RULE_HOT_PATH_ALLOC, lineno)
            || file.enclosing_fn(lineno).is_some_and(|f| f.cfg_gated)
        {
            continue;
        }
        for (needle, why) in ERROR_NEEDLES {
            if line.contains(needle) {
                out.push(finding(
                    file,
                    lineno,
                    Severity::Error,
                    format!(
                        "`{}` in the per-slot call tree: {why}",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
        // vec![…]: the sized `vec![x; n]` form is sanctioned preallocation,
        // the list form allocates-and-grows semantics we still accept (it
        // sizes exactly) — but an *empty* `vec![]` is Vec::new in disguise.
        let mut from = 0usize;
        while let Some(rel) = line[from..].find("vec![") {
            let at = from + rel;
            from = at + 5;
            match vec_macro_kind(&lines, idx, at + 5) {
                VecKind::Empty => out.push(finding(
                    file,
                    lineno,
                    Severity::Error,
                    "`vec![]` in the per-slot call tree: allocates on first push; \
                     use Vec::with_capacity or reuse a buffer"
                        .to_string(),
                )),
                VecKind::Sized | VecKind::List => {}
            }
        }
        if line.contains(".collect(") || line.contains(".collect::<") {
            out.push(finding(
                file,
                lineno,
                Severity::Warning,
                "`.collect()` in the per-slot call tree allocates unless the \
                 iterator's size hint preallocates; prefer filling a reused \
                 buffer, or justify with an allow directive"
                    .to_string(),
            ));
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(".push(") {
            let at = from + rel;
            from = at + 6;
            let receiver = receiver_before(line, at);
            let known = receiver.as_deref().is_some_and(|r| {
                file.enclosing_fn(lineno)
                    .is_some_and(|f| fn_preallocates(file, f, r, &lines))
            });
            if !known {
                out.push(finding(
                    file,
                    lineno,
                    Severity::Warning,
                    format!(
                        "`.push()` onto `{}` which is not provably preallocated in \
                         this function; reserve capacity up front or justify with \
                         an allow directive",
                        receiver.as_deref().unwrap_or("<expr>")
                    ),
                ));
            }
        }
    }
    out
}

fn finding(file: &FileModel, line: usize, severity: Severity, message: String) -> Finding {
    Finding {
        file: file.rel.clone(),
        line,
        rule: RULE_HOT_PATH_ALLOC,
        severity,
        message,
    }
}

enum VecKind {
    Empty,
    Sized,
    List,
}

/// Classifies a `vec![` whose contents start at `(line_idx, col)` in the
/// cleaned lines, following the bracket across lines if needed.
fn vec_macro_kind(lines: &[&str], mut line_idx: usize, mut col: usize) -> VecKind {
    let mut depth = 1i32;
    let mut top_semicolon = false;
    let mut any_content = false;
    loop {
        let Some(line) = lines.get(line_idx) else {
            break;
        };
        let bytes = line.as_bytes();
        while col < bytes.len() {
            let b = bytes[col];
            match b {
                b'[' | b'(' | b'{' => depth += 1,
                b']' | b')' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return if !any_content {
                            VecKind::Empty
                        } else if top_semicolon {
                            VecKind::Sized
                        } else {
                            VecKind::List
                        };
                    }
                }
                b';' if depth == 1 => top_semicolon = true,
                b if !(b as char).is_whitespace() => any_content = true,
                _ => {}
            }
            col += 1;
        }
        line_idx += 1;
        col = 0;
        if line_idx > lines.len() {
            break;
        }
    }
    VecKind::List
}

/// The dotted identifier chain ending just before the `.push(` at `at`,
/// when it is a plain chain (`out`, `self.buffer`); `None` for anything
/// with subscripts or calls in the receiver.
fn receiver_before(line: &str, at: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut start = at;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == at {
        return None;
    }
    let chain = &line[start..at];
    if chain.is_empty() || chain.starts_with('.') || chain.ends_with('.') {
        return None;
    }
    Some(chain.to_string())
}

/// Does `item` locally declare `receiver` with a preallocated (or
/// already-flagged) constructor? Looks for `let [mut] <receiver> =` lines
/// followed by `with_capacity`, a sized `vec![x; n]`, or the
/// `Vec::new()`/`String::new()` forms (those are already errors at the
/// declaration — the push should not double-report).
fn fn_preallocates(file: &FileModel, item: &FnItem, receiver: &str, lines: &[&str]) -> bool {
    // Dotted receivers (`self.buf`) are never function-local.
    if receiver.contains('.') {
        return false;
    }
    for lineno in item.start_line..=item.end_line {
        let Some(line) = lines.get(lineno - 1) else {
            continue;
        };
        let Some(pos) = find_let_binding(line, receiver) else {
            continue;
        };
        // The initializer: rest of this line, or the next line for
        // `let x =\n    Vec::with_capacity(n);` splits.
        let mut init = line[pos..].to_string();
        if let Some(next) = lines.get(lineno) {
            init.push(' ');
            init.push_str(next);
        }
        if init.contains("with_capacity")
            || init.contains("Vec::new()")
            || init.contains("String::new()")
            || sized_vec_in(&init)
        {
            return true;
        }
    }
    let _ = file;
    false
}

/// Position after `let [mut] <name>` when `line` declares `name`.
fn find_let_binding(line: &str, name: &str) -> Option<usize> {
    let let_pos = line.find("let ")?;
    let rest = &line[let_pos + 4..];
    let rest_trim = rest.trim_start();
    let rest_trim = rest_trim
        .strip_prefix("mut ")
        .unwrap_or(rest_trim)
        .trim_start();
    if rest_trim.starts_with(name) {
        let after = rest_trim.as_bytes().get(name.len());
        let boundary = !after.is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
        if boundary {
            return Some(line.len() - rest_trim.len() + name.len());
        }
    }
    None
}

fn sized_vec_in(text: &str) -> bool {
    if let Some(at) = text.find("vec![") {
        let inner: Vec<&str> = vec![&text[at + 5..]];
        return matches!(vec_macro_kind(&inner, 0, 0), VecKind::Sized);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn run(src: &str) -> Vec<Finding> {
        check(&FileModel::from_source(
            "crates/lp/src/x.rs".to_string(),
            src.to_string(),
        ))
    }

    #[test]
    fn direct_allocations_are_errors() {
        let src = "\
fn hot() {
    let a: Vec<f64> = Vec::new();
    let b = format!(\"x={}\", 1);
    let c = other.clone();
    let d = vec![];
}
";
        let f = run(src);
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Error));
    }

    #[test]
    fn sized_vec_and_with_capacity_are_clean() {
        let src = "\
fn hot(n: usize) {
    let mut a = vec![0.0; n];
    let mut b = Vec::with_capacity(n);
    for i in 0..n {
        b.push(i);
        a.push(0.0);
    }
}
";
        let f = run(src);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn collect_and_unknown_push_warn() {
        let src = "\
fn hot(xs: &[f64], out: &mut Vec<f64>) {
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    out.push(doubled[0]);
}
";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.severity == Severity::Warning));
        assert!(f[1].message.contains("`out`"));
    }

    #[test]
    fn cfg_gated_and_test_code_exempt() {
        let src = "\
#[cfg(feature = \"strict-invariants\")]
fn diagnostics() {
    let msg = format!(\"bad: {}\", 1);
}

#[cfg(test)]
mod tests {
    fn t() { let v = vec![]; v.push(1); }
}
";
        let f = run(src);
        assert_eq!(f, vec![], "{f:?}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "\
fn setup() {
    // verify: allow(hot-path-alloc): one-time setup, not per-slot
    let names: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
}
";
        // The directive covers its own line + the next; to_string/collect
        // both sit on the covered line.
        let f = run(src);
        assert_eq!(f, vec![], "{f:?}");
    }
}
