//! Cross-file analysis passes.
//!
//! Unlike the per-line lexical rules in [`crate::rules`], a pass sees a
//! whole [`Workspace`](crate::model::Workspace) (or the repository
//! manifests) at once and returns file-attributed
//! [`Finding`](crate::findings::Finding)s:
//!
//! * [`event_schema`] — every telemetry construction site and every
//!   annotated consumer `match` agrees with the
//!   [`grefar_obs::schema::EVENTS`] registry;
//! * [`hot_path_alloc`] — no heap allocation in the per-slot call tree;
//! * [`deps_audit`] — duplicate crate versions in `Cargo.lock` and
//!   declared-but-unused dependencies in crate manifests.

pub mod deps_audit;
pub mod event_schema;
pub mod hot_path_alloc;
