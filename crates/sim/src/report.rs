//! Simulation metrics and running averages.
//!
//! The paper's footnote 8: "the average values at time t are obtained by
//! summing up all the values up to time t and then dividing the sum by t" —
//! [`RunningSeries`] implements exactly that; delay curves divide
//! cumulative delay by cumulative completions instead (a running mean over
//! *jobs*, which is what Fig. 2(b)(c) plots).

use crate::stats::Quantiles;
use crate::tracker::CompletionStats;

/// A time series together with its running average (footnote 8 semantics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningSeries {
    instant: Vec<f64>,
    running: Vec<f64>,
    sum: f64,
}

impl RunningSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one slot's value.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.instant.push(value);
        self.running.push(self.sum / self.instant.len() as f64);
    }

    /// Rebuilds a series from its raw per-slot values by replaying
    /// [`push`](Self::push) — the running averages and sum come out
    /// bit-identical to the original accumulation, which is what makes
    /// checkpoint/resume exact.
    pub fn from_instant(values: impl IntoIterator<Item = f64>) -> Self {
        let mut series = Self::new();
        for v in values {
            series.push(v);
        }
        series
    }

    /// The raw per-slot values.
    pub fn instant(&self) -> &[f64] {
        &self.instant
    }

    /// The running average at each slot.
    pub fn running(&self) -> &[f64] {
        &self.running
    }

    /// The final running average (0 for an empty series).
    pub fn mean(&self) -> f64 {
        self.running.last().copied().unwrap_or(0.0)
    }

    /// Number of slots recorded.
    pub fn len(&self) -> usize {
        self.instant.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.instant.is_empty()
    }
}

/// Everything a simulation run measured.
///
/// Time series are indexed by slot; per-data-center series are
/// `[data center][slot]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Slots simulated.
    pub horizon: usize,
    /// Energy cost `e(t)` (eq. (2)) with running average.
    pub energy: RunningSeries,
    /// Fairness score `f(t)` (eq. (3)) with running average.
    pub fairness: RunningSeries,
    /// Per-account resource shares `r_m(t)/R(t)` with running averages
    /// (compare against the γ targets).
    pub account_shares: Vec<RunningSeries>,
    /// Per-DC scheduled work `Σ_j h_{i,j}(t)·d_j` with running averages.
    pub work_per_dc: Vec<RunningSeries>,
    /// Per-DC running-average job delay (cumulative delay over cumulative
    /// completions, up to each slot).
    pub dc_delay: Vec<Vec<f64>>,
    /// Per-DC electricity price series.
    pub prices: Vec<Vec<f64>>,
    /// Work arriving per slot.
    pub arriving_work: RunningSeries,
    /// Total queue length `Σ_j Q_j + Σ_{i,j} q_{i,j}` per slot.
    pub queue_total: Vec<f64>,
    /// Largest single queue length seen at each slot.
    pub queue_max: Vec<f64>,
    /// Final job-level completion statistics.
    pub completions: CompletionStats,
    /// Tail-latency summary of per-job delays in each data center.
    pub dc_delay_quantiles: Vec<Quantiles>,
    /// Jobs dropped by admission control (0 without a cap).
    pub dropped_jobs: u64,
}

impl SimulationReport {
    /// Final time-average energy cost (Fig. 2(a) end point).
    pub fn average_energy_cost(&self) -> f64 {
        self.energy.mean()
    }

    /// Final time-average fairness score (Fig. 3(b) end point).
    pub fn average_fairness(&self) -> f64 {
        self.fairness.mean()
    }

    /// Final running-average job delay in data center `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn average_dc_delay(&self, i: usize) -> f64 {
        self.dc_delay[i].last().copied().unwrap_or(0.0)
    }

    /// Final average work scheduled per slot to data center `i`
    /// (the §VI-B.1 33.97 / 48.50 / 14.77 metric).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn average_work_per_dc(&self, i: usize) -> f64 {
        self.work_per_dc[i].mean()
    }

    /// The largest queue length observed anywhere during the run —
    /// compared against Theorem 1(a)'s bound `V·C3/δ`.
    pub fn max_queue_length(&self) -> f64 {
        self.queue_max.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Number of data centers covered by the report.
    pub fn num_data_centers(&self) -> usize {
        self.work_per_dc.len()
    }

    /// Final time-average resource share of account `m`.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn average_account_share(&self, m: usize) -> f64 {
        self.account_shares[m].mean()
    }

    /// Writes the report's per-slot series to `<dir>/<stem>.csv` for
    /// external plotting: instantaneous and running-average energy and
    /// fairness, per-DC work/price/delay, arriving work and queue totals.
    ///
    /// # Errors
    /// Any I/O error from creating the directory or writing the file.
    pub fn write_csv(
        &self,
        dir: impl AsRef<std::path::Path>,
        stem: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.csv"));

        let mut headers: Vec<String> = vec![
            "slot".into(),
            "energy".into(),
            "energy_avg".into(),
            "fairness".into(),
            "fairness_avg".into(),
            "arriving_work".into(),
            "queue_total".into(),
            "queue_max".into(),
        ];
        for i in 0..self.num_data_centers() {
            headers.push(format!("work_dc{}", i + 1));
            headers.push(format!("price_dc{}", i + 1));
            headers.push(format!("delay_avg_dc{}", i + 1));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

        let rows = (0..self.horizon).map(|t| {
            let mut row = vec![
                t as f64,
                self.energy.instant()[t],
                self.energy.running()[t],
                self.fairness.instant()[t],
                self.fairness.running()[t],
                self.arriving_work.instant()[t],
                self.queue_total[t],
                self.queue_max[t],
            ];
            for i in 0..self.num_data_centers() {
                row.push(self.work_per_dc[i].instant()[t]);
                row.push(self.prices[i][t]);
                row.push(self.dc_delay[i][t]);
            }
            row
        });
        grefar_trace::csv::write_csv(&path, &header_refs, rows)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_series_matches_footnote8() {
        let mut s = RunningSeries::new();
        for v in [2.0, 4.0, 6.0] {
            s.push(v);
        }
        assert_eq!(s.instant(), &[2.0, 4.0, 6.0]);
        assert_eq!(s.running(), &[2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_series_mean_is_zero() {
        let s = RunningSeries::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn report_csv_roundtrips() {
        use crate::{PaperScenario, Simulation};
        use grefar_core::Always;

        let scenario = PaperScenario::default().with_seed(2);
        let config = scenario.config().clone();
        let report = Simulation::new(
            config.clone(),
            scenario.into_inputs(12),
            Box::new(Always::new(&config)),
        )
        .run();
        let dir = std::env::temp_dir().join(format!("grefar-report-{}", std::process::id()));
        let path = report.write_csv(&dir, "run").expect("writable temp dir");
        let (headers, rows) = grefar_trace::csv::read_csv(&path).expect("readable");
        assert_eq!(rows.len(), 12);
        assert_eq!(headers.len(), 8 + 3 * 3);
        assert_eq!(headers[0], "slot");
        // energy column matches the report.
        assert_eq!(rows[5][1], report.energy.instant()[5]);
        std::fs::remove_dir_all(dir).ok();
    }
}
