//! Emits Theorem 1's analytic bounds into a telemetry stream, so offline
//! tooling (`grefar-report analyze`) can check an observed run against the
//! guarantees without re-deriving the scenario.
//!
//! One `theory.bounds` event is emitted per labeled run:
//!
//! | field | meaning |
//! |---|---|
//! | `label` | the `sweep.run` label (or scheduler name) the bounds apply to |
//! | `v` / `beta` | the GreFar operating point |
//! | `delta` | the slackness certificate from (20)–(22) |
//! | `price_max` | the price cap used for `g^max − g^min` |
//! | `queue_bound` | Theorem 1(a): `V·C3/δ`, eq. (23) |
//! | `cost_gap_bound` | Theorem 1(b): `(B + D(T−1))/V`, eq. (24) |
//! | `frame` | the lookahead frame `T` the gap bound is stated against |
//!
//! All fields are pure functions of the frozen inputs, so the events are
//! deterministic and survive the determinism diff unchanged.

use crate::inputs::SimulationInputs;
use grefar_core::theory::{slackness_delta_trace, TheoryBounds};
use grefar_obs::{Event, Observer};
use grefar_types::SystemConfig;

/// The lookahead frame length `T` the emitted Theorem 1(b) gap bound is
/// stated against — the daily cycle, matching the `T`-step benchmark used
/// throughout the test suite.
pub const GAP_BOUND_FRAME: usize = 24;

/// Certifies `inputs` admissible via the per-slot slackness certificate and
/// emits one `theory.bounds` event per `(label, v, beta)` run.
///
/// Returns the certified slack `δ`, or `None` when the trace admits no
/// certificate (overloaded system) — in which case nothing is emitted and
/// Theorem 1 simply offers no guarantee to check. Does nothing when the
/// observer is disabled.
pub fn emit_theory_bounds(
    config: &SystemConfig,
    inputs: &SimulationInputs,
    runs: &[(String, f64, f64)],
    obs: &mut dyn Observer,
) -> Option<f64> {
    emit_theory_bounds_stale(config, inputs, runs, 0, obs)
}

/// Like [`emit_theory_bounds`], but for runs executed behind an unreliable
/// feed layer with admissible staleness `stale_slots`
/// (`FeedProfile::staleness_bound`). Each event additionally carries the
/// degraded slackness certificate: `stale_slots` and the relaxed
/// `stale_queue_bound = queue_bound + stale_slots·q^max`
/// (`TheoryBounds::stale_queue_bound` — an engineering corollary, not a
/// paper theorem). With `stale_slots == 0` the extra fields are omitted and
/// the event is byte-identical to [`emit_theory_bounds`]'s.
pub fn emit_theory_bounds_stale(
    config: &SystemConfig,
    inputs: &SimulationInputs,
    runs: &[(String, f64, f64)],
    stale_slots: u64,
    obs: &mut dyn Observer,
) -> Option<f64> {
    if !obs.enabled() {
        return None;
    }
    let delta = slackness_delta_trace(config, &inputs.capacities(config), inputs.all_arrivals())?;
    let price_max = (0..inputs.horizon())
        .flat_map(|t| {
            let state = inputs.state(t);
            (0..config.num_data_centers())
                .map(move |i| state.data_center(i).price())
                .collect::<Vec<_>>()
        })
        .fold(0.0f64, f64::max);
    for (label, v, beta) in runs {
        let bounds = TheoryBounds::new(config, delta, price_max, *beta);
        let mut event = Event::new("theory.bounds")
            .field("label", label.as_str())
            .field("v", *v)
            .field("beta", *beta)
            .field("delta", delta)
            .field("price_max", price_max)
            .field("queue_bound", bounds.queue_bound(*v))
            .field("cost_gap_bound", bounds.cost_gap_bound(*v, GAP_BOUND_FRAME))
            .field("frame", GAP_BOUND_FRAME);
        if stale_slots > 0 {
            event = event.field("stale_slots", stale_slots).field(
                "stale_queue_bound",
                bounds.stale_queue_bound(*v, stale_slots),
            );
        }
        obs.record_event(event);
    }
    Some(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperScenario;
    use grefar_obs::{JsonlSink, NullObserver};

    #[test]
    fn emits_one_event_per_run_with_positive_bounds() {
        let scenario = PaperScenario::default().with_seed(11);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(48);
        let mut sink = JsonlSink::new(Vec::new());
        let runs = vec![
            ("V=0.1".to_string(), 0.1, 0.0),
            ("V=7.5".to_string(), 7.5, 0.0),
        ];
        let delta = emit_theory_bounds(&config, &inputs, &runs, &mut sink)
            .expect("paper scenario is slack");
        assert!(delta > 0.0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events = grefar_obs::json::parse_lines(&text).unwrap();
        assert_eq!(events.len(), 2);
        let qb: Vec<f64> = events
            .iter()
            .map(|e| e["queue_bound"].as_f64().unwrap())
            .collect();
        assert!(
            qb[0] > 0.0 && qb[1] > qb[0],
            "bound must grow with V: {qb:?}"
        );
        let gap: Vec<f64> = events
            .iter()
            .map(|e| e["cost_gap_bound"].as_f64().unwrap())
            .collect();
        assert!(gap[1] < gap[0], "gap bound must shrink with V: {gap:?}");
        assert_eq!(events[0]["label"].as_str(), Some("V=0.1"));
    }

    #[test]
    fn disabled_observer_is_a_no_op() {
        let scenario = PaperScenario::default().with_seed(11);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(24);
        let runs = vec![("V=7.5".to_string(), 7.5, 0.0)];
        assert_eq!(
            emit_theory_bounds(&config, &inputs, &runs, &mut NullObserver),
            None
        );
    }
}
