//! The discrete-time simulation engine (§VI-A's "time-based simulator").

use crate::inputs::SimulationInputs;
use crate::report::{RunningSeries, SimulationReport};
use crate::tracker::JobTracker;
use grefar_core::{cost_breakdown, QuadraticDeviation, QueueState, Scheduler};
use grefar_obs::{Event, NullObserver, Observer, Timer};
use grefar_types::{Slot, SystemConfig};

/// One simulation run: a scheduler against a frozen input horizon.
///
/// Each slot `t` executes the Algorithm-1 loop:
///
/// 1. observe the state `x(t)` and queues `Θ(t)`,
/// 2. ask the scheduler for the action `z(t)`,
/// 3. meter energy (2) and fairness (3),
/// 4. serve/route jobs at the job level ([`JobTracker`]),
/// 5. update the queues by (12)–(13) with the slot's arrivals `a(t)`.
///
/// # Example
/// See the [crate-level documentation](crate).
pub struct Simulation {
    config: SystemConfig,
    inputs: SimulationInputs,
    scheduler: Box<dyn Scheduler>,
    admission_cap: Option<f64>,
    queue_bound: Option<f64>,
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("horizon", &self.inputs.horizon())
            .field("admission_cap", &self.admission_cap)
            .field("queue_bound", &self.queue_bound)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a run.
    ///
    /// # Panics
    /// Panics if the inputs' shapes mismatch the configuration.
    pub fn new(
        config: SystemConfig,
        inputs: SimulationInputs,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        assert_eq!(
            inputs.state(0).num_data_centers(),
            config.num_data_centers(),
            "inputs/config data-center mismatch"
        );
        assert_eq!(
            inputs.arrivals(0).len(),
            config.num_job_classes(),
            "inputs/config job-class mismatch"
        );
        Self {
            config,
            inputs,
            scheduler,
            admission_cap: None,
            queue_bound: None,
        }
    }

    /// Declares the inputs Theorem-1 admissible with queue bound
    /// `bound = V·C3/δ` (eq. (23); compute it with
    /// `grefar_core::theory::TheoryBounds::queue_bound`). Under the
    /// `strict-invariants` feature the run then asserts, every slot, that no
    /// queue exceeds the bound — in the default build the value is recorded
    /// but not enforced.
    ///
    /// # Panics
    /// Panics if `bound` is negative or non-finite.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: f64) -> Self {
        assert!(
            bound.is_finite() && bound >= 0.0,
            "queue bound must be non-negative"
        );
        self.queue_bound = Some(bound);
        self
    }

    /// Enables admission control (§V-B: "in the worst case where the data
    /// center is overloaded, admission control techniques can be applied"):
    /// arrivals that would push a central queue beyond `cap` are dropped
    /// and counted in [`SimulationReport::dropped_jobs`].
    ///
    /// # Panics
    /// Panics if `cap` is negative or non-finite.
    #[must_use]
    pub fn with_admission_cap(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        self.admission_cap = Some(cap);
        self
    }

    /// The scheduler's self-reported name (what `run.start` will carry).
    pub fn scheduler_name(&self) -> String {
        self.scheduler.name()
    }

    /// The frozen inputs this run will execute against.
    pub fn inputs(&self) -> &SimulationInputs {
        &self.inputs
    }

    /// Runs the whole horizon and returns the report.
    pub fn run(mut self) -> SimulationReport {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs the whole horizon, streaming telemetry (`run.start`, one `slot`
    /// per step, scheduler-internal events, `run.end`) to `obs`. With a
    /// [`NullObserver`] this is exactly [`run`](Simulation::run): every
    /// event construction and clock read is guarded by
    /// [`Observer::enabled`], so the disabled path stays on the hot loop's
    /// original cost.
    ///
    /// Takes `&mut self` (rather than consuming) so sweep runners can reuse
    /// a built simulation; the report is identical either way.
    pub fn run_with_observer(&mut self, obs: &mut dyn Observer) -> SimulationReport {
        let n = self.config.num_data_centers();
        let horizon = self.inputs.horizon();
        let work = self.config.work_vector();
        let fairness_fn = QuadraticDeviation;

        let telemetry = obs.enabled();
        let run_timer = Timer::start();
        if telemetry {
            obs.record_event(
                Event::new("run.start")
                    .field("scheduler", self.scheduler.name())
                    .field("horizon", horizon)
                    .field("data_centers", n)
                    .field("job_classes", self.config.num_job_classes()),
            );
        }

        let mut queues = QueueState::new(&self.config);
        let mut tracker = JobTracker::new(&self.config);

        let mut energy = RunningSeries::new();
        let mut fairness = RunningSeries::new();
        let mut account_shares = vec![RunningSeries::new(); self.config.num_accounts()];
        let mut work_per_dc = vec![RunningSeries::new(); n];
        let mut dc_delay = vec![Vec::with_capacity(horizon); n];
        let mut prices = vec![Vec::with_capacity(horizon); n];
        let mut arriving_work = RunningSeries::new();
        let mut queue_total = Vec::with_capacity(horizon);
        let mut queue_max = Vec::with_capacity(horizon);
        let mut dropped = 0u64;

        for t in 0..horizon {
            let slot_timer = if telemetry {
                Some(Timer::start())
            } else {
                None
            };
            let dropped_before = dropped;
            let state = self.inputs.state(t);
            let decision = self.scheduler.decide_observed(state, &queues, obs);
            debug_assert!(decision.is_nonnegative() && decision.is_finite());

            // Metering (energy (2), fairness (3)) — β only weighs the two
            // into g; record the components themselves.
            let breakdown = cost_breakdown(&self.config, state, &decision, 0.0, &fairness_fn);
            energy.push(breakdown.energy);
            fairness.push(breakdown.fairness);
            for (series, &share) in account_shares.iter_mut().zip(&breakdown.shares) {
                series.push(share);
            }
            for i in 0..n {
                work_per_dc[i].push(decision.work_processed(i, &work));
                prices[i].push(state.data_center(i).price());
            }

            // Job-level execution, then queue dynamics (12)–(13).
            tracker.step(t as Slot, &decision);
            let raw_arrivals = self.inputs.arrivals(t);
            let arrivals = match self.admission_cap {
                None => raw_arrivals.to_vec(),
                Some(cap) => {
                    let mut admitted = raw_arrivals.to_vec();
                    for (j, a) in admitted.iter_mut().enumerate() {
                        // Queue after this slot's routing:
                        let after_route = (queues.central(j) - decision.routed.col_sum(j)).max(0.0);
                        let room = (cap - after_route).max(0.0).floor();
                        if *a > room {
                            dropped += (*a - room).round() as u64;
                            *a = room;
                        }
                    }
                    admitted
                }
            };
            tracker.arrive(t as Slot, &arrivals);
            #[cfg(feature = "strict-invariants")]
            let prev_queues = queues.clone();
            queues.apply(&decision, &arrivals);

            // `strict-invariants`: the realized transition must match the
            // dynamics (12)-(13) exactly, and on a declared-admissible trace
            // every queue must respect the Theorem 1(a) bound.
            #[cfg(feature = "strict-invariants")]
            {
                use grefar_core::invariant;
                let check = invariant::check_queue_update(
                    &self.config,
                    &prev_queues,
                    &decision,
                    &arrivals,
                    &queues,
                )
                .and_then(|()| match self.queue_bound {
                    Some(bound) => invariant::check_queue_bound(&queues, bound),
                    None => Ok(()),
                });
                if let Err(violation) = check {
                    if obs.enabled() {
                        obs.record_event(violation.event(t as u64));
                    }
                    panic!("strict-invariants: slot {t}: {violation}");
                }
            }

            // The job tracker and the (12)–(13) queues must agree whenever
            // the scheduler respects backlogs (all built-in ones do).
            #[cfg(debug_assertions)]
            for j in 0..self.config.num_job_classes() {
                debug_assert!(
                    (queues.central(j) - tracker.central_backlog(j)).abs() < 1e-6,
                    "slot {t}: central queue {j} diverged"
                );
                for i in 0..n {
                    debug_assert!(
                        (queues.local(i, j) - tracker.local_backlog(i, j)).abs() < 1e-6,
                        "slot {t}: local queue ({i},{j}) diverged"
                    );
                }
            }

            arriving_work.push(
                raw_arrivals
                    .iter()
                    .zip(&work)
                    .map(|(a, d)| a * d)
                    .sum::<f64>(),
            );
            queue_total.push(queues.total());
            queue_max.push(queues.max_len());
            for (i, series) in dc_delay.iter_mut().enumerate() {
                let (count, sum) = tracker.dc_delay_accumulator(i);
                series.push(if count > 0 { sum / count as f64 } else { 0.0 });
            }

            if let Some(timer) = slot_timer {
                let elapsed = timer.elapsed();
                let central: f64 = (0..self.config.num_job_classes())
                    .map(|j| queues.central(j))
                    .sum();
                let arrivals_total: f64 = raw_arrivals.iter().sum();
                let dropped_now = dropped - dropped_before;
                obs.record_event(
                    Event::new("slot")
                        .field("t", t)
                        .field("queue_central", central)
                        .field("queue_local", queues.total() - central)
                        .field("queue_max", queues.max_len())
                        .field("energy", breakdown.energy)
                        .field("fairness", breakdown.fairness)
                        .field("arrivals", arrivals_total)
                        .field("dropped", dropped_now)
                        .field(
                            "wall_us",
                            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                        ),
                );
                obs.record_duration("slot.wall_us", elapsed);
                obs.record_value("queue.total", queues.total());
                obs.add_counter("slots", 1);
                obs.add_counter("arrivals", arrivals_total.round() as u64);
                if dropped_now > 0 {
                    obs.add_counter("admission_cap.hits", 1);
                    obs.add_counter("dropped", dropped_now);
                }
                obs.set_gauge("queue.max", queues.max_len());
            }
        }

        let dc_delay_quantiles = (0..n)
            .map(|i| crate::stats::Quantiles::from_samples(tracker.dc_delay_samples(i)))
            .collect();

        if telemetry {
            obs.record_event(
                Event::new("run.end")
                    .field("slots", horizon)
                    .field("completed", tracker.stats().completed_total)
                    .field("dropped", dropped)
                    .field("wall_us", run_timer.elapsed_micros()),
            );
        }

        SimulationReport {
            scheduler: self.scheduler.name(),
            horizon,
            energy,
            fairness,
            account_shares,
            work_per_dc,
            dc_delay,
            prices,
            arriving_work,
            queue_total,
            queue_max,
            completions: tracker.stats(),
            dc_delay_quantiles,
            dropped_jobs: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_cluster::{AvailabilityProcess, FullAvailability};
    use grefar_core::{Always, GreFar, GreFarParams};
    use grefar_trace::{ConstantPrice, ConstantWorkload, PriceProcess};
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(4.0)
                    .with_max_route(8.0)
                    .with_max_process(20.0),
            )
            .build()
            .unwrap()
    }

    fn inputs(cfg: &SystemConfig, horizon: usize, price: f64, rate: f64) -> SimulationInputs {
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(price))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![rate]);
        SimulationInputs::generate(cfg, horizon, 1, &mut prices, &mut avail, &mut workload)
    }

    #[test]
    fn always_achieves_delay_one_and_serves_everything() {
        let cfg = config();
        let inp = inputs(&cfg, 200, 0.5, 3.0);
        let report = Simulation::new(cfg.clone(), inp, Box::new(Always::new(&cfg))).run();
        // 3 jobs/slot × ~198 completions; energy = 3 work × 0.5 = 1.5/slot.
        assert!(report.completions.completed_total >= 3 * 190);
        assert!((report.average_energy_cost() - 1.5).abs() < 0.1);
        assert!((report.average_dc_delay(0) - 1.0).abs() < 1e-9);
        assert_eq!(report.dropped_jobs, 0);
        assert_eq!(report.scheduler, "Always");
    }

    #[test]
    fn grefar_defers_under_constant_high_price_until_queue_threshold() {
        let cfg = config();
        let inp = inputs(&cfg, 300, 1.0, 2.0);
        // V = 10 → threshold q/d > V·φ·p/s = 10.
        let g = GreFar::new(&cfg, GreFarParams::new(10.0, 0.0)).unwrap();
        let report = Simulation::new(cfg.clone(), inp, Box::new(g)).run();
        // The queue builds to ≈ threshold, then serves at arrival rate.
        // Delay is therefore well above Always's 1.
        assert!(
            report.average_dc_delay(0) > 2.0,
            "{}",
            report.average_dc_delay(0)
        );
        // Long-run service keeps up with arrivals (rate stability).
        let served: f64 = report.work_per_dc[0].instant().iter().sum();
        assert!(served >= 2.0 * 260.0, "served {served}");
        // Queue stays bounded (well under the Theorem 1 bound; the exact
        // O(V) scaling is exercised by the theory integration tests).
        assert!(
            report.max_queue_length() <= 40.0,
            "{}",
            report.max_queue_length()
        );
    }

    #[test]
    fn grefar_energy_cost_never_exceeds_always_under_same_inputs() {
        let cfg = config();
        let inp = inputs(&cfg, 400, 0.7, 2.0);
        let always = Simulation::new(cfg.clone(), inp.clone(), Box::new(Always::new(&cfg))).run();
        let grefar = Simulation::new(
            cfg.clone(),
            inp,
            Box::new(GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap()),
        )
        .run();
        // Constant price: same work must eventually be served at the same
        // price, but GreFar never serves *more* total energy than Always.
        assert!(
            grefar.average_energy_cost() <= always.average_energy_cost() + 1e-9,
            "GreFar {} vs Always {}",
            grefar.average_energy_cost(),
            always.average_energy_cost()
        );
    }

    #[test]
    fn admission_control_drops_overload() {
        let cfg = config();
        // Capacity 10, arrivals 4/slot — fine; but cap the queue at 2.
        let inp = inputs(&cfg, 100, 5.0, 4.0);
        let g = GreFar::new(&cfg, GreFarParams::new(50.0, 0.0)).unwrap();
        let report = Simulation::new(cfg.clone(), inp, Box::new(g))
            .with_admission_cap(2.0)
            .run();
        assert!(report.dropped_jobs > 0);
        assert!(report.max_queue_length() <= 2.0 + 4.0); // cap + one slot's arrivals
    }

    #[test]
    fn report_series_have_full_horizon() {
        let cfg = config();
        let inp = inputs(&cfg, 50, 0.4, 1.0);
        let report = Simulation::new(cfg.clone(), inp, Box::new(Always::new(&cfg))).run();
        assert_eq!(report.horizon, 50);
        assert_eq!(report.energy.len(), 50);
        assert_eq!(report.fairness.len(), 50);
        assert_eq!(report.dc_delay[0].len(), 50);
        assert_eq!(report.prices[0].len(), 50);
        assert_eq!(report.queue_total.len(), 50);
        assert_eq!(report.num_data_centers(), 1);
    }
}
