//! The discrete-time simulation engine (§VI-A's "time-based simulator").

use std::path::{Path, PathBuf};

use crate::checkpoint::{Checkpoint, SeriesSnapshot};
use crate::error::SimError;
use crate::inputs::SimulationInputs;
use crate::report::{RunningSeries, SimulationReport};
use crate::tracker::JobTracker;
use grefar_core::{
    cost_breakdown, stale, JobLedger, QuadraticDeviation, QueueState, Scheduler, SolverBudget,
};
use grefar_faults::FaultPlan;
use grefar_ingest::{FeedHarness, FeedProfile};
use grefar_obs::{Event, NullObserver, Observer, Timer};
use grefar_types::{Grid, Slot, SystemConfig};

/// One simulation run: a scheduler against a frozen input horizon.
///
/// Each slot `t` executes the Algorithm-1 loop:
///
/// 1. observe the state `x(t)` and queues `Θ(t)`,
/// 2. ask the scheduler for the action `z(t)`,
/// 3. meter energy (2) and fairness (3),
/// 4. serve/route jobs at the job level ([`JobTracker`]),
/// 5. update the queues by (12)–(13) with the slot's arrivals `a(t)`.
///
/// # Fault injection
///
/// [`with_fault_plan`](Simulation::with_fault_plan) overlays a
/// deterministic [`FaultPlan`] on the run: data faults (outages,
/// availability collapses, price spikes/gaps, arrival bursts) rewrite the
/// frozen inputs up front, solver squeezes impose per-slot
/// [`SolverBudget`]s on the scheduler at run time, and each fault window's
/// opening emits a `fault.inject` telemetry event. Without a plan the run
/// is byte-identical to the unfaulted engine.
///
/// # Unreliable feeds
///
/// [`with_feed_profile`](Simulation::with_feed_profile) interposes the
/// `grefar-ingest` resilient feed layer between the frozen inputs and the
/// scheduler: every slot the scheduler acts on the layer's *estimated*
/// state (with retry/breaker/fallback semantics per the
/// [`FeedProfile`]) and the decision is repaired against the truth when
/// staleness made it infeasible (`grefar_core::stale`). Physics — queue
/// updates, metering, admission — always use the true inputs. Without a
/// profile the run is byte-identical to the plain engine.
///
/// # Checkpoint/resume
///
/// [`run_resumable`](Simulation::run_resumable) writes a schema-versioned
/// [`Checkpoint`] every `k` slots (atomically);
/// [`resume`](Simulation::resume) continues from one **bit-identically** —
/// the resumed report equals the uninterrupted run's exactly. Feed-client
/// state (breakers, caches) is not serialized: it evolves deterministically
/// from the profile and the frozen inputs alone, so resume replays it with
/// [`FeedHarness::fast_forward`].
///
/// # Example
/// See the [crate-level documentation](crate).
pub struct Simulation {
    config: SystemConfig,
    inputs: SimulationInputs,
    scheduler: Box<dyn Scheduler>,
    admission_cap: Option<f64>,
    queue_bound: Option<f64>,
    faults: Option<FaultPlan>,
    feeds: Option<FeedHarness>,
    deadline_iters: Option<usize>,
    corrupt_at: Option<(u64, f64)>,
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("horizon", &self.inputs.horizon())
            .field("admission_cap", &self.admission_cap)
            .field("queue_bound", &self.queue_bound)
            .field("faults", &self.faults.as_ref().map(FaultPlan::spec))
            .field("feeds", &self.feeds.as_ref().map(|h| h.profile().spec()))
            .finish_non_exhaustive()
    }
}

/// Checkpointing (and optional crash-injection) policy for
/// [`Simulation::run_resumable`].
#[derive(Debug, Clone)]
pub struct RunPolicy {
    path: PathBuf,
    every: usize,
    kill_at: Option<u64>,
    kill_when: Option<fn() -> bool>,
}

impl RunPolicy {
    /// Checkpoint to `path` after every `every` slots.
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            path: path.into(),
            every,
            kill_at: None,
            kill_when: None,
        }
    }

    /// Kill the run just before executing `slot`: a final checkpoint is
    /// written and the run returns [`SimError::Killed`]. This is the
    /// crash-injection half of the crash-recovery test — the process
    /// survives (buffers flush), but the run ends exactly as an abrupt
    /// death at that slot would leave it.
    #[must_use]
    pub fn with_kill_at(mut self, slot: u64) -> Self {
        self.kill_at = Some(slot);
        self
    }

    /// Kill the run at the next checkpoint boundary once `predicate`
    /// returns true: a final checkpoint is written and the run returns
    /// [`SimError::Killed`], resumable exactly like a [`with_kill_at`]
    /// cut. This is how the experiment binaries turn a latched `SIGTERM`
    /// into a graceful, resumable exit (the predicate is polled every
    /// `every` slots, the same cadence durability already costs).
    ///
    /// [`with_kill_at`]: RunPolicy::with_kill_at
    #[must_use]
    pub fn with_kill_when(mut self, predicate: fn() -> bool) -> Self {
        self.kill_when = Some(predicate);
        self
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything the slot loop carries between slots — the unit a
/// [`Checkpoint`] captures.
struct RunState {
    next_slot: usize,
    queues: QueueState,
    tracker: JobTracker,
    energy: RunningSeries,
    fairness: RunningSeries,
    account_shares: Vec<RunningSeries>,
    work_per_dc: Vec<RunningSeries>,
    dc_delay: Vec<Vec<f64>>,
    prices: Vec<Vec<f64>>,
    arriving_work: RunningSeries,
    queue_total: Vec<f64>,
    queue_max: Vec<f64>,
    dropped: u64,
    ledger: JobLedger,
}

impl RunState {
    fn fresh(config: &SystemConfig) -> Self {
        let n = config.num_data_centers();
        Self {
            next_slot: 0,
            queues: QueueState::new(config),
            tracker: JobTracker::new(config),
            energy: RunningSeries::new(),
            fairness: RunningSeries::new(),
            account_shares: vec![RunningSeries::new(); config.num_accounts()],
            work_per_dc: vec![RunningSeries::new(); n],
            dc_delay: vec![Vec::new(); n],
            prices: vec![Vec::new(); n],
            arriving_work: RunningSeries::new(),
            queue_total: Vec::new(),
            queue_max: Vec::new(),
            dropped: 0,
            ledger: JobLedger::new(),
        }
    }

    fn from_checkpoint(config: &SystemConfig, ck: Checkpoint) -> Result<Self, SimError> {
        let n = config.num_data_centers();
        let j_count = config.num_job_classes();
        if ck.queues_local.len() != n
            || ck.queues_central.len() != j_count
            || ck.series.account_shares.len() != config.num_accounts()
            || ck.series.work_per_dc.len() != n
        {
            return Err(SimError::Mismatch(
                "checkpoint shape mismatches the configuration".to_string(),
            ));
        }
        let mut local = Grid::zeros(n, j_count);
        for (i, row) in ck.queues_local.iter().enumerate() {
            local.row_mut(i).copy_from_slice(row);
        }
        let queues =
            QueueState::from_parts(ck.queues_central, local).map_err(SimError::Mismatch)?;
        let tracker = JobTracker::from_snapshot(config, ck.tracker).map_err(SimError::Mismatch)?;
        let ledger = JobLedger::from_parts(
            ck.ledger.offered,
            ck.ledger.admitted,
            ck.ledger.dropped,
            ck.ledger.served,
            ck.ledger.route_excess,
        )
        .map_err(SimError::Mismatch)?;
        Ok(Self {
            next_slot: ck.slot as usize,
            queues,
            tracker,
            energy: RunningSeries::from_instant(ck.series.energy),
            fairness: RunningSeries::from_instant(ck.series.fairness),
            account_shares: ck
                .series
                .account_shares
                .into_iter()
                .map(RunningSeries::from_instant)
                .collect(),
            work_per_dc: ck
                .series
                .work_per_dc
                .into_iter()
                .map(RunningSeries::from_instant)
                .collect(),
            dc_delay: ck.series.dc_delay,
            prices: ck.series.prices,
            arriving_work: RunningSeries::from_instant(ck.series.arriving_work),
            queue_total: ck.series.queue_total,
            queue_max: ck.series.queue_max,
            dropped: ck.dropped,
            ledger,
        })
    }

    fn to_checkpoint(
        &self,
        horizon: usize,
        scheduler: &str,
        faults: &str,
        feeds: &str,
    ) -> Checkpoint {
        Checkpoint {
            slot: self.next_slot as u64,
            horizon: horizon as u64,
            scheduler: scheduler.to_string(),
            faults: faults.to_string(),
            feeds: feeds.to_string(),
            dropped: self.dropped,
            ledger: crate::checkpoint::LedgerSnapshot {
                offered: self.ledger.offered(),
                admitted: self.ledger.admitted(),
                dropped: self.ledger.dropped(),
                served: self.ledger.served(),
                route_excess: self.ledger.route_excess(),
            },
            queues_central: self.queues.central_slice().to_vec(),
            queues_local: (0..self.queues.local_grid().rows())
                .map(|i| self.queues.local_grid().row(i).to_vec())
                .collect(),
            tracker: self.tracker.snapshot(),
            series: SeriesSnapshot {
                energy: self.energy.instant().to_vec(),
                fairness: self.fairness.instant().to_vec(),
                account_shares: self
                    .account_shares
                    .iter()
                    .map(|s| s.instant().to_vec())
                    .collect(),
                work_per_dc: self
                    .work_per_dc
                    .iter()
                    .map(|s| s.instant().to_vec())
                    .collect(),
                dc_delay: self.dc_delay.clone(),
                prices: self.prices.clone(),
                arriving_work: self.arriving_work.instant().to_vec(),
                queue_total: self.queue_total.clone(),
                queue_max: self.queue_max.clone(),
            },
        }
    }

    fn into_report(self, scheduler: String, horizon: usize) -> SimulationReport {
        let n = self.dc_delay.len();
        let dc_delay_quantiles = (0..n)
            .map(|i| crate::stats::Quantiles::from_samples(self.tracker.dc_delay_samples(i)))
            .collect();
        SimulationReport {
            scheduler,
            horizon,
            energy: self.energy,
            fairness: self.fairness,
            account_shares: self.account_shares,
            work_per_dc: self.work_per_dc,
            dc_delay: self.dc_delay,
            prices: self.prices,
            arriving_work: self.arriving_work,
            queue_total: self.queue_total,
            queue_max: self.queue_max,
            completions: self.tracker.stats(),
            dc_delay_quantiles,
            dropped_jobs: self.dropped,
        }
    }
}

impl Simulation {
    /// Creates a run.
    ///
    /// # Panics
    /// Panics if the inputs' shapes mismatch the configuration (use
    /// [`try_new`](Simulation::try_new) for a typed error instead).
    pub fn new(
        config: SystemConfig,
        inputs: SimulationInputs,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        match Self::try_new(config, inputs, scheduler) {
            Ok(sim) => sim,
            // verify: allow(no-panic): documented `# Panics` constructor contract; try_new is the typed-error path
            Err(err) => panic!("{err}"),
        }
    }

    /// Creates a run, reporting shape mismatches as a typed error.
    ///
    /// # Errors
    /// [`SimError::Mismatch`] if the inputs' data-center or job-class
    /// counts disagree with the configuration.
    pub fn try_new(
        config: SystemConfig,
        inputs: SimulationInputs,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, SimError> {
        if inputs.state(0).num_data_centers() != config.num_data_centers() {
            return Err(SimError::Mismatch(format!(
                "inputs have {} data centers, configuration has {}",
                inputs.state(0).num_data_centers(),
                config.num_data_centers()
            )));
        }
        if inputs.arrivals(0).len() != config.num_job_classes() {
            return Err(SimError::Mismatch(format!(
                "inputs have {} job classes, configuration has {}",
                inputs.arrivals(0).len(),
                config.num_job_classes()
            )));
        }
        Ok(Self {
            config,
            inputs,
            scheduler,
            admission_cap: None,
            queue_bound: None,
            faults: None,
            feeds: None,
            deadline_iters: None,
            corrupt_at: None,
        })
    }

    /// Declares the inputs Theorem-1 admissible with queue bound
    /// `bound = V·C3/δ` (eq. (23); compute it with
    /// `grefar_core::theory::TheoryBounds::queue_bound`). Under the
    /// `strict-invariants` feature the run then asserts, every slot, that no
    /// queue exceeds the bound — in the default build the value is recorded
    /// but not enforced.
    ///
    /// # Panics
    /// Panics if `bound` is negative or non-finite.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: f64) -> Self {
        assert!(
            bound.is_finite() && bound >= 0.0,
            "queue bound must be non-negative"
        );
        self.queue_bound = Some(bound);
        self
    }

    /// Enables admission control (§V-B: "in the worst case where the data
    /// center is overloaded, admission control techniques can be applied"):
    /// arrivals that would push a central queue beyond `cap` are dropped
    /// and counted in [`SimulationReport::dropped_jobs`].
    ///
    /// # Panics
    /// Panics if `cap` is negative or non-finite.
    #[must_use]
    pub fn with_admission_cap(mut self, cap: f64) -> Self {
        assert!(cap.is_finite() && cap >= 0.0, "cap must be non-negative");
        self.admission_cap = Some(cap);
        self
    }

    /// Overlays a fault plan: applies its data faults to the frozen inputs
    /// and registers it for run-time effects (solver budgets,
    /// `fault.inject` events). See the
    /// [type-level docs](Simulation#fault-injection).
    ///
    /// # Errors
    /// [`SimError::Mismatch`] if the plan references data centers or job
    /// classes the system does not have.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Result<Self, SimError> {
        let Self {
            config,
            inputs,
            scheduler,
            admission_cap,
            queue_bound,
            faults: _,
            feeds,
            deadline_iters,
            corrupt_at,
        } = self;
        plan.validate_for(config.num_data_centers(), config.num_job_classes())
            .map_err(|e| SimError::Mismatch(e.to_string()))?;
        let inputs = inputs
            .with_faults(&plan)
            .map_err(|e| SimError::Mismatch(e.to_string()))?;
        Ok(Self {
            config,
            inputs,
            scheduler,
            admission_cap,
            queue_bound,
            faults: Some(plan),
            feeds,
            deadline_iters,
            corrupt_at,
        })
    }

    /// Interposes the resilient feed layer: the scheduler now acts on the
    /// profile's estimated state instead of the truth. See the
    /// [type-level docs](Simulation#unreliable-feeds). A
    /// [perfect](FeedProfile::is_perfect) profile short-circuits to the
    /// plain path, keeping output byte-identical to a run without one.
    ///
    /// # Errors
    /// [`SimError::Mismatch`] if the profile targets data centers the
    /// system does not have.
    pub fn with_feed_profile(mut self, profile: FeedProfile) -> Result<Self, SimError> {
        let harness = FeedHarness::new(profile, self.config.num_data_centers())
            .map_err(|e| SimError::Mismatch(e.to_string()))?;
        self.feeds = Some(harness);
        Ok(self)
    }

    /// Adds `count` jobs of class `job` to slot `t`'s arrivals, *after*
    /// any fault transformation — the journal-replay hook of
    /// `grefar-served`. A restarted daemon rebuilds its simulation (same
    /// seed, same fault plan), replays every journaled submission through
    /// here, and only then resumes from its checkpoint; because live
    /// submissions also land post-fault, the replayed inputs are
    /// bit-identical to the uninterrupted run's.
    ///
    /// # Panics
    /// Panics if `t` is past the horizon, `job` is out of range, or
    /// `count` is negative or non-finite.
    pub fn inject_arrivals(&mut self, t: usize, job: usize, count: f64) {
        self.inputs.inject_arrivals(t, job, count);
    }

    /// The scheduler's self-reported name (what `run.start` will carry).
    pub fn scheduler_name(&self) -> String {
        self.scheduler.name()
    }

    /// The frozen inputs this run will execute against (already
    /// fault-transformed when a plan is set).
    pub fn inputs(&self) -> &SimulationInputs {
        &self.inputs
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The feed profile in force, if any.
    pub fn feed_profile(&self) -> Option<&FeedProfile> {
        self.feeds.as_ref().map(FeedHarness::profile)
    }

    /// Test-only mutation hook: right after slot `slot`'s queue update,
    /// add `delta` jobs to central queue 0 behind the physics' back. The
    /// `grefar-soak` mutation self-check uses this to prove the
    /// conservation-ledger oracle detects a corrupted queue update; never
    /// call it outside tests.
    #[doc(hidden)]
    pub fn corrupt_queue_for_test(&mut self, slot: u64, delta: f64) {
        self.corrupt_at = Some((slot, delta));
    }

    /// Runs the whole horizon and returns the report.
    pub fn run(mut self) -> SimulationReport {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs the whole horizon, streaming telemetry (`run.start`, one `slot`
    /// per step, scheduler-internal events, `run.end`) to `obs`. With a
    /// [`NullObserver`] this is exactly [`run`](Simulation::run): every
    /// event construction and clock read is guarded by
    /// [`Observer::enabled`], so the disabled path stays on the hot loop's
    /// original cost.
    ///
    /// Takes `&mut self` (rather than consuming) so sweep runners can reuse
    /// a built simulation; the report is identical either way.
    pub fn run_with_observer(&mut self, obs: &mut dyn Observer) -> SimulationReport {
        let horizon = self.inputs.horizon();
        let run_timer = Timer::start();
        let mut rs = RunState::fresh(&self.config);
        self.emit_run_start(obs);
        self.run_span(&mut rs, horizon, obs);
        self.emit_run_end(&rs, &run_timer, obs);
        rs.into_report(self.scheduler.name(), horizon)
    }

    /// Like [`run_with_observer`], but checkpointing per `policy`, and
    /// honoring its crash injection.
    ///
    /// # Errors
    /// [`SimError::Killed`] when the policy's kill slot is reached (the
    /// checkpoint has been written), or a checkpoint I/O error.
    pub fn run_resumable(
        &mut self,
        obs: &mut dyn Observer,
        policy: &RunPolicy,
    ) -> Result<SimulationReport, SimError> {
        let rs = RunState::fresh(&self.config);
        self.drive(rs, obs, Some(policy))
    }

    /// Resumes a checkpointed run, continuing bit-identically to the
    /// uninterrupted execution. The simulation must be built from the same
    /// configuration, inputs (same seed!), scheduler and fault plan as the
    /// original run; `run.start` is not re-emitted, so appending the
    /// resumed telemetry to the truncated original yields one contiguous
    /// stream. Pass a `policy` to keep checkpointing during the remainder.
    ///
    /// # Errors
    /// [`SimError::Mismatch`] when the checkpoint disagrees with this
    /// simulation (horizon, scheduler, fault plan or shapes), plus the
    /// [`run_resumable`](Simulation::run_resumable) errors when a policy is
    /// given.
    pub fn resume(
        &mut self,
        checkpoint: Checkpoint,
        obs: &mut dyn Observer,
        policy: Option<&RunPolicy>,
    ) -> Result<SimulationReport, SimError> {
        self.checkpoint_preflight(&checkpoint)?;
        let rs = RunState::from_checkpoint(&self.config, checkpoint)?;
        self.drive(rs, obs, policy)
    }

    /// Validates a checkpoint against this simulation and replays the feed
    /// layer up to its slot — the shared front half of
    /// [`resume`](Simulation::resume) and [`SteppedRun::resume`].
    fn checkpoint_preflight(&mut self, checkpoint: &Checkpoint) -> Result<(), SimError> {
        let horizon = self.inputs.horizon();
        if checkpoint.horizon as usize != horizon {
            return Err(SimError::Mismatch(format!(
                "checkpoint horizon {} but inputs have {horizon} slots",
                checkpoint.horizon
            )));
        }
        if checkpoint.slot as usize > horizon {
            return Err(SimError::Mismatch(format!(
                "checkpoint is at slot {} beyond the horizon {horizon}",
                checkpoint.slot
            )));
        }
        let name = self.scheduler.name();
        if checkpoint.scheduler != name {
            return Err(SimError::Mismatch(format!(
                "checkpoint was written by {:?}, this run uses {name:?}",
                checkpoint.scheduler
            )));
        }
        let spec = self
            .faults
            .as_ref()
            .map(FaultPlan::spec)
            .unwrap_or_default();
        if checkpoint.faults != spec {
            return Err(SimError::Mismatch(format!(
                "checkpoint fault plan {:?} differs from this run's {spec:?}",
                checkpoint.faults
            )));
        }
        let feed_spec = self.feed_spec();
        if checkpoint.feeds != feed_spec {
            return Err(SimError::Mismatch(format!(
                "checkpoint feed profile {:?} differs from this run's {feed_spec:?}",
                checkpoint.feeds
            )));
        }
        // Feed-client state (breakers, caches) is deterministic in the
        // profile and frozen inputs: replay it up to the checkpoint slot.
        if let Some(harness) = &mut self.feeds {
            harness.fast_forward(
                self.inputs.states(),
                self.inputs.all_arrivals(),
                checkpoint.slot,
            );
        }
        Ok(())
    }

    fn feed_spec(&self) -> String {
        self.feeds
            .as_ref()
            .map(|h| h.profile().spec())
            .unwrap_or_default()
    }

    /// The shared driver: runs `rs` to the horizon in checkpoint-bounded
    /// spans. The slot loop itself is infallible; errors only arise at
    /// span boundaries (checkpoint writes, crash injection).
    fn drive(
        &mut self,
        mut rs: RunState,
        obs: &mut dyn Observer,
        policy: Option<&RunPolicy>,
    ) -> Result<SimulationReport, SimError> {
        let horizon = self.inputs.horizon();
        let run_timer = Timer::start();
        if rs.next_slot == 0 {
            self.emit_run_start(obs);
        }
        loop {
            let mut until = horizon;
            let mut kill = false;
            if let Some(p) = policy {
                until = until.min((rs.next_slot / p.every + 1) * p.every);
                if let Some(k) = p.kill_at {
                    let k = k as usize;
                    if k >= rs.next_slot && k < until && k < horizon {
                        until = k;
                    }
                    kill = k == until && k < horizon;
                }
            }
            self.run_span(&mut rs, until, obs);
            if let Some(p) = policy {
                let signaled =
                    rs.next_slot < horizon && p.kill_when.is_some_and(|predicate| predicate());
                if kill || signaled {
                    self.write_checkpoint(&rs, p, obs)?;
                    return Err(SimError::Killed {
                        slot: rs.next_slot as u64,
                        checkpoint: p.path.clone(),
                    });
                }
                if rs.next_slot < horizon {
                    self.write_checkpoint(&rs, p, obs)?;
                }
            }
            if rs.next_slot >= horizon {
                break;
            }
        }
        self.emit_run_end(&rs, &run_timer, obs);
        Ok(rs.into_report(self.scheduler.name(), horizon))
    }

    fn write_checkpoint(
        &self,
        rs: &RunState,
        policy: &RunPolicy,
        obs: &mut dyn Observer,
    ) -> Result<(), SimError> {
        let spec = self
            .faults
            .as_ref()
            .map(FaultPlan::spec)
            .unwrap_or_default();
        let profiling = obs.profiling();
        if profiling {
            obs.span_enter("checkpoint.write");
        }
        let result = rs
            .to_checkpoint(
                self.inputs.horizon(),
                &self.scheduler.name(),
                &spec,
                &self.feed_spec(),
            )
            .write(&policy.path);
        if profiling {
            obs.span_exit("checkpoint.write");
        }
        if result.is_ok() && obs.enabled() {
            obs.record_event(Event::new("checkpoint.write").field("t", rs.next_slot as u64));
            obs.add_counter("checkpoint.writes", 1);
        }
        result
    }

    fn emit_run_start(&mut self, obs: &mut dyn Observer) {
        if obs.enabled() {
            obs.record_event(
                Event::new("run.start")
                    .field("scheduler", self.scheduler.name())
                    .field("horizon", self.inputs.horizon())
                    .field("data_centers", self.config.num_data_centers())
                    .field("job_classes", self.config.num_job_classes()),
            );
        }
    }

    fn emit_run_end(&mut self, rs: &RunState, run_timer: &Timer, obs: &mut dyn Observer) {
        if obs.enabled() {
            obs.record_event(
                Event::new("run.end")
                    .field("slots", self.inputs.horizon())
                    .field("completed", rs.tracker.stats().completed_total)
                    .field("dropped", rs.dropped)
                    .field("wall_us", run_timer.elapsed_micros()),
            );
        }
    }

    /// Executes slots `rs.next_slot .. until` of the Algorithm-1 loop.
    /// Infallible: every slot yields a decision (the scheduler's fallback
    /// chain guarantees one) and every update is total.
    fn run_span(&mut self, rs: &mut RunState, until: usize, obs: &mut dyn Observer) {
        let work = self.config.work_vector();
        for t in rs.next_slot..until {
            self.step_slot(rs, t, &work, obs);
        }
        rs.next_slot = rs.next_slot.max(until);
    }

    /// Executes exactly slot `t` of the Algorithm-1 loop — the single
    /// stepping core shared by the batch simulator ([`run_span`]) and the
    /// live daemon ([`SteppedRun`]), so both produce the identical
    /// telemetry and state trajectory.
    fn step_slot(&mut self, rs: &mut RunState, t: usize, work: &[f64], obs: &mut dyn Observer) {
        let fairness_fn = QuadraticDeviation;
        let telemetry = obs.enabled();
        let profiling = obs.profiling();
        {
            if profiling {
                obs.span_enter("slot");
            }
            let slot_timer = if telemetry {
                Some(Timer::start())
            } else {
                None
            };
            if let Some(plan) = &self.faults {
                if telemetry {
                    for fault in plan.starting_at(t as u64) {
                        obs.record_event(fault_inject_event(fault, t as u64));
                        obs.add_counter("faults.injected", 1);
                    }
                }
            }
            // The slot's iteration budget is the tighter of any active
            // squeeze fault and the daemon's per-slot deadline budget.
            let squeeze = self
                .faults
                .as_ref()
                .and_then(|plan| plan.fw_budget_at(t as u64));
            if self.faults.is_some() || self.deadline_iters.is_some() {
                let budget = match (squeeze, self.deadline_iters) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                self.scheduler
                    .set_solver_budget(budget.map(SolverBudget::fw_iters));
            }
            let dropped_before = rs.dropped;
            let state = self.inputs.state(t);
            // With a feed layer the scheduler sees the layer's *estimate*
            // and the decision is repaired against the truth; metering and
            // queue physics below always use the true `state`.
            let decision = match &mut self.feeds {
                Some(harness) => {
                    if profiling {
                        obs.span_enter("feed.fetch");
                    }
                    let estimated = harness.observe(
                        t as u64,
                        self.inputs.states(),
                        self.inputs.all_arrivals(),
                        obs,
                    );
                    if profiling {
                        obs.span_exit("feed.fetch");
                        obs.span_enter("decide");
                    }
                    let decision = stale::decide_estimated(
                        self.scheduler.as_mut(),
                        &self.config,
                        &estimated,
                        state,
                        &rs.queues,
                        obs,
                    );
                    if profiling {
                        obs.span_exit("decide");
                    }
                    decision
                }
                None => {
                    if profiling {
                        obs.span_enter("decide");
                    }
                    let decision = self.scheduler.decide_observed(state, &rs.queues, obs);
                    if profiling {
                        obs.span_exit("decide");
                    }
                    decision
                }
            };
            debug_assert!(decision.is_nonnegative() && decision.is_finite());

            // Metering (energy (2), fairness (3)) — β only weighs the two
            // into g; record the components themselves.
            let breakdown = cost_breakdown(&self.config, state, &decision, 0.0, &fairness_fn);
            rs.energy.push(breakdown.energy);
            rs.fairness.push(breakdown.fairness);
            for (series, &share) in rs.account_shares.iter_mut().zip(&breakdown.shares) {
                series.push(share);
            }
            for (i, series) in rs.work_per_dc.iter_mut().enumerate() {
                series.push(decision.work_processed(i, work));
            }
            for (i, series) in rs.prices.iter_mut().enumerate() {
                series.push(state.data_center(i).price());
            }

            // Job-level execution, then queue dynamics (12)–(13).
            if profiling {
                obs.span_enter("queue.update");
            }
            rs.tracker.step(t as Slot, &decision);
            let raw_arrivals = self.inputs.arrivals(t);
            let arrivals = match self.admission_cap {
                None => raw_arrivals.to_vec(),
                Some(cap) => {
                    let mut admitted = raw_arrivals.to_vec();
                    for (j, a) in admitted.iter_mut().enumerate() {
                        // Queue after this slot's routing:
                        let after_route =
                            (rs.queues.central(j) - decision.routed.col_sum(j)).max(0.0);
                        let room = (cap - after_route).max(0.0).floor();
                        if *a > room {
                            rs.dropped += (*a - room).round() as u64;
                            *a = room;
                        }
                    }
                    admitted
                }
            };
            rs.tracker.arrive(t as Slot, &arrivals);
            #[cfg(feature = "strict-invariants")]
            let prev_queues = rs.queues.clone();
            // Conservation ledger: account the slot's effective flows
            // against the pre-update queues, then apply the dynamics.
            rs.ledger
                .account(&rs.queues, &decision, raw_arrivals, &arrivals);
            rs.queues.apply(&decision, &arrivals);
            if profiling {
                obs.span_exit("queue.update");
            }

            // `strict-invariants`: the realized transition must match the
            // dynamics (12)-(13) exactly, and on a declared-admissible trace
            // every queue must respect the Theorem 1(a) bound.
            #[cfg(feature = "strict-invariants")]
            {
                use grefar_core::invariant;
                let check = invariant::check_queue_update(
                    &self.config,
                    &prev_queues,
                    &decision,
                    &arrivals,
                    &rs.queues,
                )
                .and_then(|()| match self.queue_bound {
                    Some(bound) => invariant::check_queue_bound(&rs.queues, bound),
                    None => Ok(()),
                })
                .and_then(|()| rs.ledger.check(&rs.queues));
                if let Err(violation) = check {
                    if obs.enabled() {
                        obs.record_event(violation.event(t as u64));
                    }
                    // verify: allow(no-panic): strict-invariants enforcement aborts by design after emitting the violation event
                    panic!("strict-invariants: slot {t}: {violation}");
                }
            }

            // The job tracker and the (12)–(13) queues must agree whenever
            // the scheduler respects backlogs (all built-in ones do). A
            // run carrying the test corruption hook is deliberately broken
            // past the corruption slot, so the cross-check stands down.
            #[cfg(debug_assertions)]
            if self.corrupt_at.is_none() {
                for j in 0..self.config.num_job_classes() {
                    debug_assert!(
                        (rs.queues.central(j) - rs.tracker.central_backlog(j)).abs() < 1e-6,
                        "slot {t}: central queue {j} diverged"
                    );
                    for i in 0..self.config.num_data_centers() {
                        debug_assert!(
                            (rs.queues.local(i, j) - rs.tracker.local_backlog(i, j)).abs() < 1e-6,
                            "slot {t}: local queue ({i},{j}) diverged"
                        );
                    }
                }
            }

            // Test-only corruption (see `corrupt_queue_for_test`): strikes
            // after the physics so the recorded series and the ledger
            // event below observe the tampered state.
            if let Some((slot, delta)) = self.corrupt_at {
                if slot == t as u64 {
                    rs.queues.corrupt_central_for_test(0, delta);
                }
            }

            rs.arriving_work.push(
                raw_arrivals
                    .iter()
                    .zip(work)
                    .map(|(a, d)| a * d)
                    .sum::<f64>(),
            );
            rs.queue_total.push(rs.queues.total());
            rs.queue_max.push(rs.queues.max_len());
            for (i, series) in rs.dc_delay.iter_mut().enumerate() {
                let (count, sum) = rs.tracker.dc_delay_accumulator(i);
                series.push(if count > 0 { sum / count as f64 } else { 0.0 });
            }

            if let Some(timer) = slot_timer {
                let elapsed = timer.elapsed();
                let central: f64 = (0..self.config.num_job_classes())
                    .map(|j| rs.queues.central(j))
                    .sum();
                let arrivals_total: f64 = raw_arrivals.iter().sum();
                let dropped_now = rs.dropped - dropped_before;
                obs.record_event(
                    Event::new("slot")
                        .field("t", t)
                        .field("queue_central", central)
                        .field("queue_local", rs.queues.total() - central)
                        .field("queue_max", rs.queues.max_len())
                        .field("energy", breakdown.energy)
                        .field("fairness", breakdown.fairness)
                        .field("arrivals", arrivals_total)
                        .field("dropped", dropped_now)
                        .field(
                            "wall_us",
                            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                        ),
                );
                obs.record_event(rs.ledger.event(t as u64, rs.queues.total()));
                obs.record_duration("slot.wall_us", elapsed);
                obs.record_value("queue.total", rs.queues.total());
                obs.add_counter("slots", 1);
                obs.add_counter("arrivals", arrivals_total.round() as u64);
                if dropped_now > 0 {
                    obs.add_counter("admission_cap.hits", 1);
                    obs.add_counter("dropped", dropped_now);
                }
                obs.set_gauge("queue.max", rs.queues.max_len());
            }
            if profiling {
                obs.span_exit("slot");
            }
            rs.next_slot = t + 1;
        }
    }
}

/// A slot-by-slot handle on one run: the same Algorithm-1 stepping core
/// the batch [`Simulation`] drives, exposed one slot at a time so a
/// long-running process (`grefar-served`) can interleave the loop with
/// live admission, checkpointing and a real-time clock.
///
/// Invariants shared with the batch path:
///
/// * [`step`](SteppedRun::step) executes exactly the slot the simulator
///   would — identical telemetry, identical state trajectory;
/// * [`checkpoint`](SteppedRun::checkpoint) captures the identical
///   [`Checkpoint`] a [`RunPolicy`] cut would, so a `kill -9`'d daemon
///   resumes bit-identically ([`SteppedRun::resume`]);
/// * live submissions enter through
///   [`inject_arrivals`](SteppedRun::inject_arrivals) *before* their slot
///   executes, so replaying an admission journal onto the same frozen
///   base reproduces the exact same run.
pub struct SteppedRun {
    sim: Simulation,
    rs: RunState,
    timer: Timer,
    started: bool,
}

impl SteppedRun {
    /// Wraps a built simulation for stepping, starting at slot 0.
    /// `run.start` is emitted on the first [`step`](SteppedRun::step).
    pub fn new(sim: Simulation) -> Self {
        let rs = RunState::fresh(&sim.config);
        Self {
            sim,
            rs,
            timer: Timer::start(),
            started: false,
        }
    }

    /// Resumes stepping from a checkpoint, continuing bit-identically to
    /// the uninterrupted run (same validation and feed replay as
    /// [`Simulation::resume`]; `run.start` is not re-emitted).
    ///
    /// # Errors
    /// [`SimError::Mismatch`] when the checkpoint disagrees with this
    /// simulation (horizon, scheduler, fault plan, feed profile, shapes).
    pub fn resume(mut sim: Simulation, checkpoint: Checkpoint) -> Result<Self, SimError> {
        sim.checkpoint_preflight(&checkpoint)?;
        let rs = RunState::from_checkpoint(&sim.config, checkpoint)?;
        Ok(Self {
            sim,
            rs,
            timer: Timer::start(),
            started: true,
        })
    }

    /// The next slot to execute (also the slot a checkpoint cut now would
    /// record).
    pub fn next_slot(&self) -> u64 {
        self.rs.next_slot as u64
    }

    /// The run's full horizon in slots.
    pub fn horizon(&self) -> u64 {
        self.sim.inputs.horizon() as u64
    }

    /// Whether every slot of the horizon has executed.
    pub fn is_done(&self) -> bool {
        self.rs.next_slot >= self.sim.inputs.horizon()
    }

    /// The scheduler's self-reported name.
    pub fn scheduler_name(&self) -> String {
        self.sim.scheduler.name()
    }

    /// Jobs dropped by admission control so far.
    pub fn dropped(&self) -> u64 {
        self.rs.dropped
    }

    /// The current total queued work Σ Θ(t).
    pub fn queue_total(&self) -> f64 {
        self.rs.queues.total()
    }

    /// The largest single queue backlog `max Q` observed over executed
    /// slots — the quantity Theorem 1(a) bounds, exposed so a per-slot
    /// occupancy oracle can compare it against the analytic bound without
    /// waiting for the final report.
    pub fn queue_peak(&self) -> f64 {
        self.rs.queue_max.iter().copied().fold(0.0f64, f64::max)
    }

    /// The run's cumulative job-conservation ledger.
    pub fn ledger(&self) -> &JobLedger {
        &self.rs.ledger
    }

    /// Forwards [`Simulation::corrupt_queue_for_test`] — the soak
    /// harness's mutation self-check hook.
    #[doc(hidden)]
    pub fn corrupt_queue_for_test(&mut self, slot: u64, delta: f64) {
        self.sim.corrupt_queue_for_test(slot, delta);
    }

    /// Adds `count` jobs of class `job` to slot `t`'s arrivals. The slot
    /// must not have executed yet.
    ///
    /// # Errors
    /// [`SimError::Mismatch`] when `t` already executed or is past the
    /// horizon, `job` is out of range, or `count` is not a non-negative
    /// finite number.
    pub fn inject_arrivals(&mut self, t: u64, job: usize, count: f64) -> Result<(), SimError> {
        if t < self.rs.next_slot as u64 {
            return Err(SimError::Mismatch(format!(
                "slot {t} already executed (next is {})",
                self.rs.next_slot
            )));
        }
        if t >= self.sim.inputs.horizon() as u64 {
            return Err(SimError::Mismatch(format!(
                "slot {t} past the horizon {}",
                self.sim.inputs.horizon()
            )));
        }
        if job >= self.sim.config.num_job_classes() {
            return Err(SimError::Mismatch(format!(
                "job class {job} out of range (system has {})",
                self.sim.config.num_job_classes()
            )));
        }
        if !(count.is_finite() && count >= 0.0) {
            return Err(SimError::Mismatch(format!(
                "arrival count must be non-negative and finite, got {count}"
            )));
        }
        self.sim.inputs.inject_arrivals(t as usize, job, count);
        Ok(())
    }

    /// Caps the scheduler's per-slot Frank–Wolfe iterations (the daemon's
    /// slot-deadline budget); active squeeze faults tighten it further.
    /// `None` removes the cap.
    pub fn set_deadline_budget(&mut self, max_fw_iters: Option<usize>) {
        self.sim.deadline_iters = max_fw_iters;
    }

    /// Executes the next slot, streaming its telemetry to `obs`. Returns
    /// `false` (without stepping) once the horizon is exhausted. The first
    /// call of a fresh (non-resumed) run emits `run.start` first.
    pub fn step(&mut self, obs: &mut dyn Observer) -> bool {
        if self.is_done() {
            return false;
        }
        if !self.started {
            self.sim.emit_run_start(obs);
            self.started = true;
        }
        let t = self.rs.next_slot;
        let work = self.sim.config.work_vector();
        self.sim.step_slot(&mut self.rs, t, &work, obs);
        true
    }

    /// Captures the current state as a [`Checkpoint`] (identical to the
    /// cut a [`RunPolicy`] would write at this slot).
    pub fn checkpoint(&self) -> Checkpoint {
        let faults = self
            .sim
            .faults
            .as_ref()
            .map(FaultPlan::spec)
            .unwrap_or_default();
        self.rs.to_checkpoint(
            self.sim.inputs.horizon(),
            &self.sim.scheduler.name(),
            &faults,
            &self.sim.feed_spec(),
        )
    }

    /// Finishes the run: emits `run.end` (with the *executed* slot count,
    /// which equals the horizon when the run completed) and folds the
    /// accumulated state into the report.
    pub fn finish(self, obs: &mut dyn Observer) -> SimulationReport {
        if obs.enabled() {
            obs.record_event(
                Event::new("run.end")
                    .field("slots", self.rs.next_slot)
                    .field("completed", self.rs.tracker.stats().completed_total)
                    .field("dropped", self.rs.dropped)
                    .field("wall_us", self.timer.elapsed_micros()),
            );
        }
        let horizon = self.sim.inputs.horizon();
        self.rs.into_report(self.sim.scheduler.name(), horizon)
    }
}

/// Renders a fault window's opening as a `fault.inject` telemetry event.
fn fault_inject_event(fault: &grefar_faults::Fault, t: u64) -> Event {
    let mut event = Event::new("fault.inject")
        .field("t", t)
        .field("kind", fault.label())
        .field("start", fault.start)
        .field("end", fault.end);
    if let Some(dc) = fault.dc() {
        event = event.field("dc", dc);
    }
    if let Some(job) = fault.job() {
        event = event.field("job", job);
    }
    if let Some(magnitude) = fault.magnitude() {
        event = event.field("magnitude", magnitude);
    }
    event
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_cluster::{AvailabilityProcess, FullAvailability};
    use grefar_core::{Always, GreFar, GreFarParams};
    use grefar_obs::MemoryObserver;
    use grefar_trace::{ConstantPrice, ConstantWorkload, PriceProcess};
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(4.0)
                    .with_max_route(8.0)
                    .with_max_process(20.0),
            )
            .build()
            .unwrap()
    }

    fn inputs(cfg: &SystemConfig, horizon: usize, price: f64, rate: f64) -> SimulationInputs {
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(price))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![rate]);
        SimulationInputs::generate(cfg, horizon, 1, &mut prices, &mut avail, &mut workload)
    }

    #[test]
    fn always_achieves_delay_one_and_serves_everything() {
        let cfg = config();
        let inp = inputs(&cfg, 200, 0.5, 3.0);
        let report = Simulation::new(cfg.clone(), inp, Box::new(Always::new(&cfg))).run();
        // 3 jobs/slot × ~198 completions; energy = 3 work × 0.5 = 1.5/slot.
        assert!(report.completions.completed_total >= 3 * 190);
        assert!((report.average_energy_cost() - 1.5).abs() < 0.1);
        assert!((report.average_dc_delay(0) - 1.0).abs() < 1e-9);
        assert_eq!(report.dropped_jobs, 0);
        assert_eq!(report.scheduler, "Always");
    }

    #[test]
    fn grefar_defers_under_constant_high_price_until_queue_threshold() {
        let cfg = config();
        let inp = inputs(&cfg, 300, 1.0, 2.0);
        // V = 10 → threshold q/d > V·φ·p/s = 10.
        let g = GreFar::new(&cfg, GreFarParams::new(10.0, 0.0)).unwrap();
        let report = Simulation::new(cfg.clone(), inp, Box::new(g)).run();
        // The queue builds to ≈ threshold, then serves at arrival rate.
        // Delay is therefore well above Always's 1.
        assert!(
            report.average_dc_delay(0) > 2.0,
            "{}",
            report.average_dc_delay(0)
        );
        // Long-run service keeps up with arrivals (rate stability).
        let served: f64 = report.work_per_dc[0].instant().iter().sum();
        assert!(served >= 2.0 * 260.0, "served {served}");
        // Queue stays bounded (well under the Theorem 1 bound; the exact
        // O(V) scaling is exercised by the theory integration tests).
        assert!(
            report.max_queue_length() <= 40.0,
            "{}",
            report.max_queue_length()
        );
    }

    #[test]
    fn grefar_energy_cost_never_exceeds_always_under_same_inputs() {
        let cfg = config();
        let inp = inputs(&cfg, 400, 0.7, 2.0);
        let always = Simulation::new(cfg.clone(), inp.clone(), Box::new(Always::new(&cfg))).run();
        let grefar = Simulation::new(
            cfg.clone(),
            inp,
            Box::new(GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap()),
        )
        .run();
        // Constant price: same work must eventually be served at the same
        // price, but GreFar never serves *more* total energy than Always.
        assert!(
            grefar.average_energy_cost() <= always.average_energy_cost() + 1e-9,
            "GreFar {} vs Always {}",
            grefar.average_energy_cost(),
            always.average_energy_cost()
        );
    }

    #[test]
    fn admission_control_drops_overload() {
        let cfg = config();
        // Capacity 10, arrivals 4/slot — fine; but cap the queue at 2.
        let inp = inputs(&cfg, 100, 5.0, 4.0);
        let g = GreFar::new(&cfg, GreFarParams::new(50.0, 0.0)).unwrap();
        let report = Simulation::new(cfg.clone(), inp, Box::new(g))
            .with_admission_cap(2.0)
            .run();
        assert!(report.dropped_jobs > 0);
        assert!(report.max_queue_length() <= 2.0 + 4.0); // cap + one slot's arrivals
    }

    #[test]
    fn report_series_have_full_horizon() {
        let cfg = config();
        let inp = inputs(&cfg, 50, 0.4, 1.0);
        let report = Simulation::new(cfg.clone(), inp, Box::new(Always::new(&cfg))).run();
        assert_eq!(report.horizon, 50);
        assert_eq!(report.energy.len(), 50);
        assert_eq!(report.fairness.len(), 50);
        assert_eq!(report.dc_delay[0].len(), 50);
        assert_eq!(report.prices[0].len(), 50);
        assert_eq!(report.queue_total.len(), 50);
        assert_eq!(report.num_data_centers(), 1);
    }

    #[test]
    fn try_new_reports_shape_mismatch() {
        let cfg = config();
        let other = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .data_center("b", vec![10.0])
            .account("x", 1.0)
            .job_class(JobClass::new(
                1.0,
                vec![DataCenterId::new(0), DataCenterId::new(1)],
                0,
            ))
            .build()
            .unwrap();
        let inp = inputs(&cfg, 10, 0.5, 1.0);
        let err = Simulation::try_new(other, inp, Box::new(Always::new(&cfg))).unwrap_err();
        assert!(matches!(err, SimError::Mismatch(_)));
    }

    #[test]
    fn full_outage_run_completes_degrades_and_recovers() {
        let cfg = config();
        let inp = inputs(&cfg, 120, 0.5, 2.0);
        let plan = FaultPlan::parse("outage:dc=0,start=30,end=40").unwrap();
        let g = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let mut sim = Simulation::new(cfg, inp, Box::new(g))
            .with_fault_plan(plan)
            .unwrap();
        let mut obs = MemoryObserver::new();
        let report = sim.run_with_observer(&mut obs);
        // The fault window opening is announced, the offline DC reported.
        assert_eq!(obs.event_count("fault.inject"), 1);
        assert!(obs.event_count("degraded.mode") > 0);
        // Queues pile up during the outage and drain afterwards.
        let peak = report.queue_total.iter().cloned().fold(0.0f64, f64::max);
        let final_q = *report.queue_total.last().unwrap();
        assert!(peak >= 10.0, "outage should grow the backlog, peak {peak}");
        assert!(
            final_q < peak / 2.0,
            "backlog should recover, final {final_q}"
        );
    }

    #[test]
    fn without_fault_plan_no_fault_events_are_emitted() {
        let cfg = config();
        let inp = inputs(&cfg, 50, 0.5, 2.0);
        let g = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let mut sim = Simulation::new(cfg, inp, Box::new(g));
        let mut obs = MemoryObserver::new();
        sim.run_with_observer(&mut obs);
        assert_eq!(obs.event_count("fault.inject"), 0);
        assert_eq!(obs.event_count("degraded.mode"), 0);
    }

    #[test]
    fn fault_plan_rejects_out_of_range_targets() {
        let cfg = config();
        let inp = inputs(&cfg, 10, 0.5, 1.0);
        let plan = FaultPlan::parse("outage:dc=7,start=0,end=5").unwrap();
        let g = GreFar::new(&cfg, GreFarParams::new(1.0, 0.0)).unwrap();
        let err = Simulation::new(cfg, inp, Box::new(g))
            .with_fault_plan(plan)
            .unwrap_err();
        assert!(matches!(err, SimError::Mismatch(_)));
    }

    #[test]
    fn kill_and_resume_reproduce_the_uninterrupted_run_exactly() {
        let cfg = config();
        let inp = inputs(&cfg, 120, 0.8, 2.0);
        let make = |cfg: &SystemConfig| {
            Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap()) as Box<dyn Scheduler>
        };
        let full = Simulation::new(cfg.clone(), inp.clone(), make(&cfg)).run();

        let dir = std::env::temp_dir().join(format!("grefar-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.jsonl");
        let policy = RunPolicy::new(&path, 25).with_kill_at(60);
        let mut killed = Simulation::new(cfg.clone(), inp.clone(), make(&cfg));
        match killed.run_resumable(&mut NullObserver, &policy) {
            Err(SimError::Killed { slot: 60, .. }) => {}
            other => panic!("expected kill at 60, got {other:?}"),
        }

        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.slot, 60);
        let mut resumed_sim = Simulation::new(cfg.clone(), inp, make(&cfg));
        let resumed = resumed_sim.resume(ck, &mut NullObserver, None).unwrap();
        assert_eq!(resumed, full, "resume must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_when_predicate_cuts_at_the_next_checkpoint_boundary() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static SIGNALED: AtomicBool = AtomicBool::new(false);
        fn signaled() -> bool {
            SIGNALED.load(Ordering::SeqCst)
        }

        let cfg = config();
        let inp = inputs(&cfg, 120, 0.8, 2.0);
        let make = |cfg: &SystemConfig| {
            Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap()) as Box<dyn Scheduler>
        };
        let full = Simulation::new(cfg.clone(), inp.clone(), make(&cfg)).run();

        let dir = std::env::temp_dir().join(format!("grefar-killwhen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.jsonl");

        // Predicate false for the whole run: completes normally.
        SIGNALED.store(false, Ordering::SeqCst);
        let policy = RunPolicy::new(&path, 25).with_kill_when(signaled);
        let mut quiet = Simulation::new(cfg.clone(), inp.clone(), make(&cfg));
        let report = quiet.run_resumable(&mut NullObserver, &policy).unwrap();
        assert_eq!(report, full);

        // Predicate already true: the run is cut at the first checkpoint
        // boundary (slot 25, not slot 0 — the span in flight finishes).
        SIGNALED.store(true, Ordering::SeqCst);
        let mut cut = Simulation::new(cfg.clone(), inp.clone(), make(&cfg));
        match cut.run_resumable(&mut NullObserver, &policy) {
            Err(SimError::Killed { slot: 25, .. }) => {}
            other => panic!("expected signal cut at 25, got {other:?}"),
        }

        // And the cut is an ordinary checkpoint: resume reproduces the
        // uninterrupted run exactly.
        SIGNALED.store(false, Ordering::SeqCst);
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.slot, 25);
        let mut resumed_sim = Simulation::new(cfg.clone(), inp, make(&cfg));
        let resumed = resumed_sim.resume(ck, &mut NullObserver, None).unwrap();
        assert_eq!(resumed, full, "signal cut + resume must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_runs() {
        let cfg = config();
        let inp = inputs(&cfg, 40, 0.5, 2.0);
        let dir = std::env::temp_dir().join(format!("grefar-resume-mm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.jsonl");
        let policy = RunPolicy::new(&path, 10).with_kill_at(10);
        let g = GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap();
        let mut sim = Simulation::new(cfg.clone(), inp.clone(), Box::new(g));
        assert!(sim.run_resumable(&mut NullObserver, &policy).is_err());
        let ck = Checkpoint::load(&path).unwrap();

        // Different scheduler: refuse to resume.
        let mut other = Simulation::new(cfg.clone(), inp.clone(), Box::new(Always::new(&cfg)));
        assert!(matches!(
            other.resume(ck.clone(), &mut NullObserver, None),
            Err(SimError::Mismatch(_))
        ));
        // Different horizon: refuse to resume.
        let g = GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap();
        let mut short = Simulation::new(cfg.clone(), inp.truncated(20), Box::new(g));
        assert!(matches!(
            short.resume(ck, &mut NullObserver, None),
            Err(SimError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perfect_feed_profile_is_byte_identical_to_plain_run() {
        let cfg = config();
        let inp = inputs(&cfg, 80, 0.6, 2.0);
        let make = |cfg: &SystemConfig| {
            Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap()) as Box<dyn Scheduler>
        };
        let plain = Simulation::new(cfg.clone(), inp.clone(), make(&cfg)).run();
        let mut with_feeds = Simulation::new(cfg.clone(), inp, make(&cfg))
            .with_feed_profile(FeedProfile::perfect())
            .unwrap();
        let mut obs = MemoryObserver::new();
        let report = with_feeds.run_with_observer(&mut obs);
        assert_eq!(report, plain, "perfect feeds must not change the run");
        assert_eq!(obs.event_count("state.stale"), 0);
        assert_eq!(obs.event_count("feed.fetch"), 0);
        assert_eq!(obs.event_count("feed.breaker"), 0);
    }

    #[test]
    fn lossy_feeds_run_completes_and_reports_staleness() {
        let cfg = config();
        let inp = inputs(&cfg, 120, 0.6, 2.0);
        let profile = FeedProfile::parse(
            "drop:feed=price,p=0.5,start=0,end=120;\
             outage:feed=avail,dc=0,start=30,end=40;\
             policy:seed=9,retries=1",
        )
        .unwrap();
        let g = GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap();
        let mut sim = Simulation::new(cfg.clone(), inp, Box::new(g))
            .with_feed_profile(profile)
            .unwrap();
        let mut obs = MemoryObserver::new();
        let report = sim.run_with_observer(&mut obs);
        // The run finishes the whole horizon with feasible decisions (the
        // engine debug-asserts feasibility every slot) while degradation is
        // visible in telemetry.
        assert_eq!(report.horizon, 120);
        assert!(obs.event_count("state.stale") > 0, "stale slots expected");
        assert!(obs.counter("feed.failures") > 0, "drops must be recorded");
        // Work still gets served: hold-last of a constant price/availability
        // estimates the truth well, so throughput survives the lossy feed.
        assert!(report.completions.completed_total > 0);
    }

    #[test]
    fn kill_and_resume_with_feeds_reproduce_the_uninterrupted_run_exactly() {
        let cfg = config();
        let inp = inputs(&cfg, 120, 0.8, 2.0);
        let spec = "drop:feed=price,p=0.4,start=0,end=120;policy:seed=3";
        let make = |cfg: &SystemConfig| {
            Simulation::new(
                cfg.clone(),
                inputs(cfg, 120, 0.8, 2.0),
                Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap())
                    as Box<dyn Scheduler>,
            )
            .with_feed_profile(FeedProfile::parse(spec).unwrap())
            .unwrap()
        };
        let _ = inp;
        let full = make(&cfg).run();

        let dir = std::env::temp_dir().join(format!("grefar-feed-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.jsonl");
        let policy = RunPolicy::new(&path, 25).with_kill_at(60);
        let mut killed = make(&cfg);
        match killed.run_resumable(&mut NullObserver, &policy) {
            Err(SimError::Killed { slot: 60, .. }) => {}
            other => panic!("expected kill at 60, got {other:?}"),
        }

        let ck = Checkpoint::load(&path).unwrap();
        // The checkpoint stores the canonical (fully-spelled) spec.
        assert_eq!(ck.feeds, FeedProfile::parse(spec).unwrap().spec());
        // Resuming under a *different* profile is refused.
        let g = GreFar::new(&cfg, GreFarParams::new(5.0, 0.0)).unwrap();
        let mut plain = Simulation::new(cfg.clone(), inputs(&cfg, 120, 0.8, 2.0), Box::new(g));
        assert!(matches!(
            plain.resume(ck.clone(), &mut NullObserver, None),
            Err(SimError::Mismatch(_))
        ));
        // The matching profile resumes bit-identically: breaker and cache
        // state is replayed by fast_forward, not serialized.
        let mut resumed_sim = make(&cfg);
        let resumed = resumed_sim.resume(ck, &mut NullObserver, None).unwrap();
        assert_eq!(resumed, full, "feed-layer resume must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stepped_run_matches_batch_run_event_for_event() {
        let cfg = config();
        let make = |cfg: &SystemConfig| {
            Simulation::new(
                cfg.clone(),
                inputs(cfg, 90, 0.8, 2.0),
                Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap())
                    as Box<dyn Scheduler>,
            )
            .with_fault_plan(FaultPlan::parse("outage:dc=0,start=20,end=30").unwrap())
            .unwrap()
        };
        // A capturing sink: full event stream with the wall-clock timing
        // field blanked (the only nondeterministic payload).
        #[derive(Default)]
        struct Recorder(Vec<String>);
        impl Observer for Recorder {
            fn record_event(&mut self, event: Event) {
                let mut line = event.to_json();
                if let Some(at) = line.find("\"wall_us\":") {
                    let tail = &line[at..];
                    let stop = tail.find([',', '}']).map_or(line.len(), |rel| at + rel);
                    line.replace_range(at..stop, "\"wall_us\":0");
                }
                self.0.push(line);
            }
        }

        let mut batch_obs = Recorder::default();
        let batch = make(&cfg).run_with_observer(&mut batch_obs);

        let mut stepped = SteppedRun::new(make(&cfg));
        let mut stepped_obs = Recorder::default();
        assert_eq!(stepped.horizon(), 90);
        while stepped.step(&mut stepped_obs) {}
        assert!(stepped.is_done());
        assert!(!stepped.step(&mut stepped_obs), "done run must not step");
        let report = stepped.finish(&mut stepped_obs);
        assert_eq!(report, batch, "stepped report must equal batch report");

        // Same events, same order, same payloads.
        assert!(!batch_obs.0.is_empty());
        assert_eq!(batch_obs.0, stepped_obs.0);
    }

    #[test]
    fn stepped_checkpoint_resumes_bit_identically() {
        let cfg = config();
        let make = |cfg: &SystemConfig| {
            Simulation::new(
                cfg.clone(),
                inputs(cfg, 80, 0.7, 2.0),
                Box::new(GreFar::new(cfg, GreFarParams::new(5.0, 0.0)).unwrap())
                    as Box<dyn Scheduler>,
            )
        };
        let full = make(&cfg).run();

        let mut first = SteppedRun::new(make(&cfg));
        for _ in 0..33 {
            assert!(first.step(&mut NullObserver));
        }
        let ck = first.checkpoint();
        assert_eq!(ck.slot, 33);
        // The stepped cut parses through the same JSONL format.
        let ck = Checkpoint::parse(&ck.to_jsonl()).unwrap();
        let mut second = SteppedRun::resume(make(&cfg), ck).unwrap();
        assert_eq!(second.next_slot(), 33);
        while second.step(&mut NullObserver) {}
        assert_eq!(
            second.finish(&mut NullObserver),
            full,
            "stepped resume must be bit-identical"
        );
    }

    #[test]
    fn stepped_injection_validates_and_replays_deterministically() {
        let cfg = config();
        let make = |cfg: &SystemConfig| {
            Simulation::new(
                cfg.clone(),
                inputs(cfg, 40, 0.6, 1.0),
                Box::new(Always::new(cfg)) as Box<dyn Scheduler>,
            )
        };
        let submissions = [
            (5u64, 0usize, 2.0),
            (12, 0, 3.0),
            (12, 0, 1.0),
            (39, 0, 4.0),
        ];

        let mut live = SteppedRun::new(make(&cfg));
        for &(t, job, count) in &submissions {
            live.inject_arrivals(t, job, count).unwrap();
        }
        while live.step(&mut NullObserver) {}
        let live_report = live.finish(&mut NullObserver);

        // Replaying the same submissions onto the same base reproduces the
        // exact run — the property the daemon's admission journal rests on.
        let mut replay = SteppedRun::new(make(&cfg));
        for &(t, job, count) in &submissions {
            replay.inject_arrivals(t, job, count).unwrap();
        }
        while replay.step(&mut NullObserver) {}
        assert_eq!(replay.finish(&mut NullObserver), live_report);
        // More work arrived than the base workload alone carries.
        let base = make(&cfg).run();
        assert!(
            live_report.completions.completed_total > base.completions.completed_total,
            "injected arrivals must add completions"
        );

        // Typed rejections: executed slots, bad slots, bad classes, bad
        // counts.
        let mut run = SteppedRun::new(make(&cfg));
        assert!(run.step(&mut NullObserver));
        assert!(matches!(
            run.inject_arrivals(0, 0, 1.0),
            Err(SimError::Mismatch(_))
        ));
        assert!(matches!(
            run.inject_arrivals(40, 0, 1.0),
            Err(SimError::Mismatch(_))
        ));
        assert!(matches!(
            run.inject_arrivals(5, 9, 1.0),
            Err(SimError::Mismatch(_))
        ));
        assert!(matches!(
            run.inject_arrivals(5, 0, f64::NAN),
            Err(SimError::Mismatch(_))
        ));
        assert!(matches!(
            run.inject_arrivals(5, 0, -1.0),
            Err(SimError::Mismatch(_))
        ));
    }

    #[test]
    fn stepped_deadline_budget_degrades_instead_of_overrunning() {
        // Same setup as the squeeze test, but the cap arrives through the
        // daemon's deadline-budget path.
        let cfg = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![30.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 1)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .build()
            .unwrap();
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(0.5))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![4.0, 1.0]);
        let inp = SimulationInputs::generate(&cfg, 30, 1, &mut prices, &mut avail, &mut workload);
        let g = GreFar::new(&cfg, GreFarParams::new(1.0, 500.0)).unwrap();
        let mut run = SteppedRun::new(Simulation::new(cfg, inp, Box::new(g)));
        run.set_deadline_budget(Some(1));
        let mut obs = MemoryObserver::new();
        while run.step(&mut obs) {}
        assert!(
            obs.event_count("degraded.mode") > 0,
            "a 1-iteration deadline budget must force the fallback chain"
        );
    }

    #[test]
    fn solver_squeeze_budget_reaches_the_scheduler() {
        // β > 0 forces Frank–Wolfe; a 1-iteration squeeze forces the greedy
        // fallback, which the telemetry must report.
        let cfg = SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![30.0])
            .account("x", 0.5)
            .account("y", 0.5)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 1)
                    .with_max_arrivals(5.0)
                    .with_max_route(10.0)
                    .with_max_process(30.0),
            )
            .build()
            .unwrap();
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(0.5))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![4.0, 1.0]);
        let inp = SimulationInputs::generate(&cfg, 40, 1, &mut prices, &mut avail, &mut workload);
        let plan = FaultPlan::parse("squeeze:start=10,end=20,iters=1").unwrap();
        let g = GreFar::new(&cfg, GreFarParams::new(1.0, 500.0)).unwrap();
        let mut sim = Simulation::new(cfg, inp, Box::new(g))
            .with_fault_plan(plan)
            .unwrap();
        let mut obs = MemoryObserver::new();
        sim.run_with_observer(&mut obs);
        assert!(obs.event_count("degraded.mode") > 0);
        assert_eq!(obs.event_count("fault.inject"), 1);
    }
}
