//! The paper's evaluation scenario (§VI-A, Table I, Fig. 1).
//!
//! Three geographically distributed data centers with the normalized server
//! speeds/powers of Table I, four organizations with fairness weights
//! 40/30/15/15, hourly electricity prices calibrated to Table I's averages,
//! and a Cosmos-like non-stationary workload. Fleet sizes and arrival
//! volumes are chosen so that (a) the slackness conditions (20)–(22) hold,
//! (b) average arriving work is ≈ 97 units/hour — matching the ≈ 97.2
//! units/hour of scheduled work the paper reports in §VI-B.1 — and (c) the
//! average energy cost lands in the 25–50 band of Fig. 2(a).

use crate::inputs::SimulationInputs;
use grefar_cluster::{AvailabilityProcess, UniformAvailability};
use grefar_trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceProcess};
use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};

/// Fairness weights γ of the four organizations (§VI-A).
pub const ORG_WEIGHTS: [f64; 4] = [0.40, 0.30, 0.15, 0.15];

/// Job sizes (service demands `d_j`); "service demand 1 refers to 1000
/// hours on a server with a normalized speed of 1" (§VI-A). Batch jobs are
/// large: hundreds to thousands of server-hours each.
const SIZES: [f64; 3] = [1.0, 2.0, 4.0];

/// Mean total arriving work per hour across all organizations, measured
/// over whole weeks (weekday rates are higher, weekend rates lower).
const TOTAL_WORK_PER_SLOT: f64 = 97.0;

/// Weekend submission dip of the enterprise workload.
const WEEKEND_FACTOR: f64 = 0.8;

/// Weekly mean of the weekday/weekend modulation.
const WEEKLY_MEAN: f64 = (5.0 + 2.0 * WEEKEND_FACTOR) / 7.0;

/// Daily peak hour of each organization's submissions.
const ORG_PEAKS: [f64; 4] = [14.0, 15.0, 13.0, 16.0];

/// Diurnal modulation depth of each organization.
const ORG_AMPLITUDES: [f64; 4] = [0.50, 0.55, 0.45, 0.60];

/// The §VI-A experimental setup, reproducible from a single seed.
///
/// # Example
/// ```
/// use grefar_sim::PaperScenario;
///
/// let scenario = PaperScenario::default().with_seed(42);
/// let config = scenario.config();
/// assert_eq!(config.num_data_centers(), 3);
/// assert_eq!(config.num_accounts(), 4);
/// assert_eq!(config.num_job_classes(), 12);
/// let inputs = scenario.into_inputs(24);
/// assert_eq!(inputs.horizon(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PaperScenario {
    config: SystemConfig,
    seed: u64,
    load_scale: f64,
    min_availability: f64,
}

impl Default for PaperScenario {
    fn default() -> Self {
        Self::new()
    }
}

impl PaperScenario {
    /// Builds the scenario with the default seed.
    pub fn new() -> Self {
        let config = build_config(1.0);
        Self {
            config,
            seed: 2012, // the paper's year — any fixed value works
            load_scale: 1.0,
            min_availability: 0.92,
        }
    }

    /// Returns a copy with a different random seed (prices, availability and
    /// arrivals all change; the configuration does not).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with arrival volumes scaled by `scale` (for overload
    /// and ablation studies). `scale = 1` is the paper's calibration.
    ///
    /// # Panics
    /// Panics if `scale` is not positive and finite.
    #[must_use]
    pub fn with_load_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.load_scale = scale;
        self.config = build_config(scale);
        self
    }

    /// Returns a copy with a different worst-case availability fraction
    /// (default 0.92; availability each slot is uniform in
    /// `[min_availability, 1]`).
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    #[must_use]
    pub fn with_min_availability(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "availability fraction must lie in (0, 1]"
        );
        self.min_availability = fraction;
        self
    }

    /// The system configuration (Table I).
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The seed driving all stochastic processes.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-data-center price processes, calibrated to Table I.
    pub fn price_processes(&self) -> Vec<Box<dyn PriceProcess + Send>> {
        (0..3)
            .map(|i| Box::new(DiurnalPriceModel::table_one(i)) as Box<dyn PriceProcess + Send>)
            .collect()
    }

    /// The per-data-center availability processes.
    pub fn availability_processes(&self) -> Vec<Box<dyn AvailabilityProcess + Send>> {
        (0..3)
            .map(|_| {
                Box::new(UniformAvailability::new(self.min_availability, 1.0))
                    as Box<dyn AvailabilityProcess + Send>
            })
            .collect()
    }

    /// The Cosmos-like workload over the scenario's 12 job types.
    pub fn workload(&self) -> CosmosLikeWorkload {
        CosmosLikeWorkload::new(arrival_specs(self.load_scale), 24.0)
    }

    /// Freezes `hours` slots of inputs from this scenario's seed.
    pub fn into_inputs(self, hours: usize) -> SimulationInputs {
        let mut prices = self.price_processes();
        let mut availability = self.availability_processes();
        let mut workload = self.workload();
        SimulationInputs::generate(
            &self.config,
            hours,
            self.seed,
            &mut prices,
            &mut availability,
            &mut workload,
        )
    }
}

/// Job index for (organization, size class).
fn job_index(org: usize, size: usize) -> usize {
    org * SIZES.len() + size
}

/// Eligibility sets: small and medium jobs run anywhere (listed with the
/// organization's *home* data center — where its data lives — first, which
/// only matters to home-biased baselines like `LocalOnly`); large (`d = 4`)
/// jobs are data-locality-restricted to two data centers each.
fn eligibility(org: usize, size: usize) -> Vec<DataCenterId> {
    let home = org % 3;
    if size < 2 {
        return (0..3)
            .map(|offset| DataCenterId::new((home + offset) % 3))
            .collect();
    }
    let pair = match org {
        0 => [0, 1],
        1 => [1, 2],
        2 => [2, 0],
        _ => [0, 2],
    };
    pair.into_iter().map(DataCenterId::new).collect()
}

fn arrival_specs(load_scale: f64) -> Vec<JobArrivalSpec> {
    let mut specs = Vec::with_capacity(ORG_WEIGHTS.len() * SIZES.len());
    // Sporadic enterprise submissions (Fig. 1's spiky per-org pattern):
    // only `BASE_FRACTION` of each type's work arrives as a smooth diurnal
    // flow; the rest lands in sporadic dumps of mean `BURST_MEAN_RATIO ×`
    // the type's full rate, `BURST_PROB` of the hours. Means stay on
    // target: base + prob · burst = (0.3 + 0.10·7.0) × full = full.
    const BASE_FRACTION: f64 = 0.3;
    const BURST_PROB: f64 = 0.10;
    const BURST_MEAN_RATIO: f64 = 7.0;
    for (org, &weight) in ORG_WEIGHTS.iter().enumerate() {
        // The weekday full rate is scaled up so the *weekly* mean matches
        // the target despite the weekend dip.
        let org_work = TOTAL_WORK_PER_SLOT * weight * load_scale / WEEKLY_MEAN;
        for &size in &SIZES {
            // Equal work share per size class within the organization.
            let full_rate = org_work / SIZES.len() as f64 / size;
            specs.push(
                JobArrivalSpec::diurnal(
                    BASE_FRACTION * full_rate,
                    ORG_AMPLITUDES[org],
                    ORG_PEAKS[org],
                    max_arrivals(full_rate),
                )
                .with_bursts(BURST_PROB, BURST_MEAN_RATIO * full_rate)
                .with_weekend_factor(WEEKEND_FACTOR),
            );
        }
    }
    specs
}

/// The arrival bound `a^max` (eq. (1)) for a type with the given *full*
/// mean rate: covers the diurnal base peak plus a sporadic dump with its
/// Poisson tail. The trace-based slackness certificate
/// ([`grefar_core::theory::slackness_delta_trace`]) verifies that realized
/// bursts never violate (20)–(22).
fn max_arrivals(full_rate: f64) -> f64 {
    (9.0 * full_rate + 5.0).ceil()
}

fn build_config(load_scale: f64) -> SystemConfig {
    // Table I server classes: (speed, power). One class per data center;
    // fleets sized so capacities are 160 / 180 / 100 (total R = 440, which
    // puts average utilization ≈ 97/440 ≈ 0.22 — the overprovisioning the
    // paper assumes in §V-B — and the fairness score in Fig. 3's band).
    let mut builder = SystemConfig::builder()
        .server_class(ServerClass::new(1.00, 1.00))
        .server_class(ServerClass::new(0.75, 0.60))
        .server_class(ServerClass::new(1.15, 1.20))
        .data_center("dc-1", vec![160.0, 0.0, 0.0])
        .data_center("dc-2", vec![0.0, 240.0, 0.0])
        .data_center("dc-3", vec![0.0, 0.0, 95.0]);
    for (m, name) in ["org-1", "org-2", "org-3", "org-4"].iter().enumerate() {
        builder = builder.account(*name, ORG_WEIGHTS[m]);
    }
    let specs = arrival_specs(load_scale);
    for (org, _) in ORG_WEIGHTS.iter().enumerate() {
        for (s, &size) in SIZES.iter().enumerate() {
            let spec = &specs[job_index(org, s)];
            let a_max = spec.max_arrivals;
            builder = builder.job_class(
                JobClass::new(size, eligibility(org, s), org)
                    .with_max_arrivals(a_max)
                    .with_max_route(a_max)
                    .with_max_process(2.0 * a_max + 10.0),
            );
        }
    }
    builder.build().expect("the paper scenario is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_matches_table_one() {
        let s = PaperScenario::new();
        let cfg = s.config();
        assert_eq!(cfg.num_server_classes(), 3);
        let speeds = cfg.speed_vector();
        assert_eq!(speeds, vec![1.00, 0.75, 1.15]);
        assert_eq!(cfg.gammas(), ORG_WEIGHTS.to_vec());
        // Capacities 160 / 180 / ~109.
        assert!((cfg.max_capacity(0) - 160.0).abs() < 1e-9);
        assert!((cfg.max_capacity(1) - 180.0).abs() < 1e-9);
        assert!((cfg.max_capacity(2) - 109.25).abs() < 0.1);
    }

    #[test]
    fn energy_cost_per_unit_work_ordering_matches_table_one() {
        // Table I col. 5: DC2 (0.346) < DC1 (0.392) < DC3 (0.572).
        let s = PaperScenario::new();
        let cfg = s.config();
        let ppw: Vec<f64> = cfg
            .server_classes()
            .iter()
            .map(|c| c.power_per_work())
            .collect();
        let cost = [0.392 * ppw[0], 0.433 * ppw[1], 0.548 * ppw[2]];
        assert!(cost[1] < cost[0] && cost[0] < cost[2], "{cost:?}");
        assert!((cost[0] - 0.392).abs() < 1e-3);
        assert!((cost[1] - 0.346).abs() < 2e-3);
        assert!((cost[2] - 0.572).abs() < 1e-3);
    }

    #[test]
    fn mean_arriving_work_is_calibrated() {
        let s = PaperScenario::new().with_seed(3);
        let cfg = s.config().clone();
        let inputs = s.into_inputs(24 * 60);
        let work = cfg.work_vector();
        let mean: f64 = (0..inputs.horizon())
            .map(|t| {
                inputs
                    .arrivals(t)
                    .iter()
                    .zip(&work)
                    .map(|(a, d)| a * d)
                    .sum::<f64>()
            })
            .sum::<f64>()
            / inputs.horizon() as f64;
        // Target ≈ 97 + ~2.5% burst mass.
        assert!((mean - 99.0).abs() < 6.0, "mean arriving work {mean}");
    }

    #[test]
    fn arrivals_respect_bounds() {
        let s = PaperScenario::new().with_seed(4);
        let cfg = s.config().clone();
        let inputs = s.into_inputs(24 * 30);
        for t in 0..inputs.horizon() {
            for (j, job) in cfg.job_classes().iter().enumerate() {
                assert!(inputs.arrivals(t)[j] <= job.max_arrivals() + 1e-9);
            }
        }
    }

    #[test]
    fn slackness_conditions_hold() {
        let s = PaperScenario::new().with_seed(5);
        let cfg = s.config().clone();
        let inputs = s.clone().into_inputs(24 * 30);
        // The sporadic-burst workload needs the trace-based certificate:
        // conditions (20)-(22) quantify per slot, and realized simultaneous
        // bursts stay far below the worst-case product of a^max bounds.
        let delta = grefar_core::theory::slackness_delta_trace(
            &cfg,
            &inputs.capacities(&cfg),
            inputs.all_arrivals(),
        );
        assert!(delta.is_some(), "paper scenario must satisfy (20)-(22)");
        assert!(delta.unwrap() > 0.1, "delta {delta:?} too small");
    }

    #[test]
    fn load_scale_scales_arrivals() {
        let base = PaperScenario::new().with_seed(6);
        let heavy = PaperScenario::new().with_seed(6).with_load_scale(2.0);
        let cfg = base.config().clone();
        let work = cfg.work_vector();
        let mean = |inputs: &SimulationInputs| -> f64 {
            (0..inputs.horizon())
                .map(|t| {
                    inputs
                        .arrivals(t)
                        .iter()
                        .zip(&work)
                        .map(|(a, d)| a * d)
                        .sum::<f64>()
                })
                .sum::<f64>()
                / inputs.horizon() as f64
        };
        let m1 = mean(&base.into_inputs(24 * 40));
        let m2 = mean(&heavy.into_inputs(24 * 40));
        assert!(m2 / m1 > 1.7, "scale 2 gave ratio {}", m2 / m1);
    }

    #[test]
    fn big_jobs_are_locality_restricted() {
        let cfg = PaperScenario::new().config().clone();
        for org in 0..4 {
            let j = job_index(org, 2);
            assert_eq!(cfg.job_classes()[j].eligible().len(), 2);
            let j_small = job_index(org, 0);
            assert_eq!(cfg.job_classes()[j_small].eligible().len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_load_scale() {
        let _ = PaperScenario::new().with_load_scale(0.0);
    }
}
