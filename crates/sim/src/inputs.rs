//! Frozen simulation inputs: one realization of all exogenous randomness.

use grefar_cluster::AvailabilityProcess;
use grefar_trace::{ArrivalProcess, PriceProcess};
use grefar_types::{DataCenterState, Slot, SystemConfig, SystemState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A frozen horizon of exogenous inputs: the data-center states `x(t)`
/// (availability + tariffs) and the arrivals `a(t)` for
/// `t = 0 .. horizon − 1`.
///
/// Freezing matters: comparing two schedulers on freshly-sampled processes
/// would confound policy differences with sampling noise. All experiment
/// binaries generate inputs once per seed and reuse them.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationInputs {
    states: Vec<SystemState>,
    arrivals: Vec<Vec<f64>>,
}

impl SimulationInputs {
    /// Samples a horizon from live processes — one price and availability
    /// process per data center, one arrival process — all driven by `seed`.
    ///
    /// # Panics
    /// Panics if `horizon == 0`, or if process counts mismatch the
    /// configuration.
    pub fn generate(
        config: &SystemConfig,
        horizon: usize,
        seed: u64,
        prices: &mut [Box<dyn PriceProcess + Send>],
        availability: &mut [Box<dyn AvailabilityProcess + Send>],
        workload: &mut dyn ArrivalProcess,
    ) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        assert_eq!(
            prices.len(),
            config.num_data_centers(),
            "one price process per data center required"
        );
        assert_eq!(
            availability.len(),
            config.num_data_centers(),
            "one availability process per data center required"
        );
        assert_eq!(
            workload.num_job_types(),
            config.num_job_classes(),
            "workload job-type count mismatch"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(horizon);
        let mut arrivals = Vec::with_capacity(horizon);
        for t in 0..horizon {
            let slot = t as Slot;
            let dcs = (0..config.num_data_centers())
                .map(|i| {
                    let avail =
                        availability[i].sample(slot, config.data_centers()[i].fleet(), &mut rng);
                    let tariff = prices[i].sample(slot, &mut rng);
                    DataCenterState::new(avail, tariff)
                })
                .collect();
            states.push(SystemState::new(slot, dcs));
            arrivals.push(workload.sample(slot, &mut rng));
        }
        Self { states, arrivals }
    }

    /// Builds inputs directly from explicit state/arrival sequences.
    ///
    /// # Panics
    /// Panics if lengths differ or are zero.
    pub fn from_parts(states: Vec<SystemState>, arrivals: Vec<Vec<f64>>) -> Self {
        assert!(!states.is_empty(), "horizon must be positive");
        assert_eq!(
            states.len(),
            arrivals.len(),
            "states/arrivals length mismatch"
        );
        Self { states, arrivals }
    }

    /// Applies a fault plan to the frozen horizon: outages zero
    /// availability, collapses scale it, spikes/gaps rewrite tariffs and
    /// bursts multiply arrivals (solver squeezes leave the data untouched —
    /// they act on the scheduler at run time). The transformation is
    /// deterministic, so two runs with the same seed and plan see identical
    /// faulted inputs.
    ///
    /// # Errors
    /// [`grefar_faults::FaultPlanError`] if the plan references data
    /// centers or job classes beyond this horizon's shape; the inputs are
    /// untouched on error.
    pub fn with_faults(
        mut self,
        plan: &grefar_faults::FaultPlan,
    ) -> Result<Self, grefar_faults::FaultPlanError> {
        plan.apply(&mut self.states, &mut self.arrivals)?;
        Ok(self)
    }

    /// The number of slots `t_end`.
    pub fn horizon(&self) -> usize {
        self.states.len()
    }

    /// The observed state `x(t)`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn state(&self, t: usize) -> &SystemState {
        &self.states[t]
    }

    /// The arrivals `a(t)` (revealed only *after* slot `t`'s decision).
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn arrivals(&self, t: usize) -> &[f64] {
        &self.arrivals[t]
    }

    /// All states (for offline planners such as the `T`-step lookahead).
    pub fn states(&self) -> &[SystemState] {
        &self.states
    }

    /// All arrivals (for offline planners).
    pub fn all_arrivals(&self) -> &[Vec<f64>] {
        &self.arrivals
    }

    /// Adds `count` jobs of class `job` to slot `t`'s arrivals — the live
    /// admission path of `grefar-served`, where submissions land on top of
    /// the frozen base workload. Replaying the same submissions onto the
    /// same base reproduces the exact same inputs, which is what makes a
    /// resumed daemon bit-identical to an uninterrupted one.
    ///
    /// # Panics
    /// Panics if `t` is past the horizon, `job` is out of range, or
    /// `count` is negative or non-finite.
    pub fn inject_arrivals(&mut self, t: usize, job: usize, count: f64) {
        assert!(t < self.arrivals.len(), "slot {t} past the horizon");
        assert!(
            count.is_finite() && count >= 0.0,
            "arrival count must be a non-negative finite number"
        );
        let row = &mut self.arrivals[t];
        assert!(job < row.len(), "job class {job} out of range");
        row[job] += count;
    }

    /// Truncates the inputs to the first `slots` slots (for frame-aligned
    /// lookahead comparisons).
    ///
    /// # Panics
    /// Panics if `slots` is zero or exceeds the horizon.
    pub fn truncated(&self, slots: usize) -> Self {
        assert!(slots > 0 && slots <= self.horizon(), "bad truncation");
        Self {
            states: self.states[..slots].to_vec(),
            arrivals: self.arrivals[..slots].to_vec(),
        }
    }

    /// Per-slot capacities `Σ_k n_{i,k}(t)·s_k` as `[slot][dc]` — input to
    /// the trace-based slackness certificate of Theorem 1.
    pub fn capacities(&self, config: &SystemConfig) -> Vec<Vec<f64>> {
        let classes = config.server_classes();
        self.states
            .iter()
            .map(|s| {
                (0..config.num_data_centers())
                    .map(|i| s.data_center(i).capacity(classes))
                    .collect()
            })
            .collect()
    }

    /// The smallest per-DC capacity across the horizon — input to the
    /// slackness certificate of Theorem 1.
    pub fn min_capacity(&self, config: &SystemConfig) -> Vec<f64> {
        let classes = config.server_classes();
        (0..config.num_data_centers())
            .map(|i| {
                self.states
                    .iter()
                    .map(|s| s.data_center(i).capacity(classes))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_cluster::FullAvailability;
    use grefar_trace::{ConstantPrice, ConstantWorkload};
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![4.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0))
            .build()
            .unwrap()
    }

    #[test]
    fn generate_produces_full_horizon() {
        let cfg = config();
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(0.3))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![2.0]);
        let inputs =
            SimulationInputs::generate(&cfg, 10, 1, &mut prices, &mut avail, &mut workload);
        assert_eq!(inputs.horizon(), 10);
        assert_eq!(inputs.state(3).data_center(0).price(), 0.3);
        assert_eq!(inputs.arrivals(9), &[2.0]);
        assert_eq!(inputs.min_capacity(&cfg), vec![4.0]);
    }

    #[test]
    fn generation_is_reproducible() {
        let cfg = config();
        let make = |seed| {
            let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(0.3))];
            let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> =
                vec![Box::new(grefar_cluster::UniformAvailability::new(0.5, 1.0))];
            let mut workload = ConstantWorkload::new(vec![2.0]);
            SimulationInputs::generate(&cfg, 20, seed, &mut prices, &mut avail, &mut workload)
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }

    #[test]
    fn truncation() {
        let cfg = config();
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ConstantPrice(0.3))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![1.0]);
        let inputs =
            SimulationInputs::generate(&cfg, 10, 1, &mut prices, &mut avail, &mut workload);
        assert_eq!(inputs.truncated(4).horizon(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_checks_lengths() {
        let cfg = config();
        let st = SystemState::new(
            0,
            vec![grefar_types::DataCenterState::new(
                vec![1.0],
                grefar_types::Tariff::flat(0.1),
            )],
        );
        let _ = cfg;
        let _ = SimulationInputs::from_parts(vec![st], vec![]);
    }
}
