//! Job-level FIFO tracking for true per-job delay measurement.
//!
//! The queue dynamics (12)–(13) determine queue *lengths*; to measure the
//! per-job delays the paper plots (Fig. 2(b)(c), 3(c), 4(c)) the simulator
//! additionally tracks every job individually. Jobs are served FIFO within
//! each (data center, job type) queue; because jobs may be suspended and
//! resumed (§III-B), the front job may be partially complete.
//!
//! Timing convention (matching (12)–(13)): a job arriving during slot `t`
//! becomes visible in the central queue at `t+1`; a job routed at slot `u`
//! becomes serviceable in its data center at `u+1`; a job finishing during
//! slot `w` has data-center delay `w − (u+1) + 1 = w − u` and total sojourn
//! `w − t`. The "Always" baseline therefore yields a data-center delay of
//! exactly 1, as §VI-B.3 expects.

use grefar_types::{Decision, Slot, SystemConfig};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct CentralJob {
    arrival: Slot,
}

#[derive(Debug, Clone, Copy)]
struct LocalJob {
    arrival: Slot,
    /// First slot at which the job is serviceable in the data center.
    serviceable_from: Slot,
    /// Remaining fraction of the job in `(0, 1]`.
    remaining: f64,
}

/// Aggregate completion statistics up to the current slot.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionStats {
    /// Jobs completed in each data center.
    pub completed_per_dc: Vec<u64>,
    /// Mean data-center delay (slots) of jobs completed in each data center
    /// (`NaN`-free: 0 when no completions).
    pub mean_dc_delay: Vec<f64>,
    /// Total completed jobs.
    pub completed_total: u64,
    /// Mean total sojourn (arrival to completion) over all completed jobs.
    pub mean_sojourn: f64,
}

/// Per-job FIFO tracker mirroring the queue dynamics.
#[derive(Debug, Clone)]
pub struct JobTracker {
    /// central[j]: jobs waiting at the central scheduler.
    central: Vec<VecDeque<CentralJob>>,
    /// local[i][j]: jobs waiting/executing in data center i.
    local: Vec<Vec<VecDeque<LocalJob>>>,
    completed_per_dc: Vec<u64>,
    dc_delay_sum: Vec<f64>,
    /// Every completed job's DC delay, per data center (for quantiles).
    dc_delay_samples: Vec<Vec<f64>>,
    completed_total: u64,
    sojourn_sum: f64,
}

impl JobTracker {
    /// An empty tracker shaped for the system.
    pub fn new(config: &SystemConfig) -> Self {
        let n = config.num_data_centers();
        let j = config.num_job_classes();
        Self {
            central: vec![VecDeque::new(); j],
            local: vec![vec![VecDeque::new(); j]; n],
            completed_per_dc: vec![0; n],
            dc_delay_sum: vec![0.0; n],
            dc_delay_samples: vec![Vec::new(); n],
            completed_total: 0,
            sojourn_sum: 0.0,
        }
    }

    /// Jobs currently waiting at the central scheduler for type `j`
    /// (should equal `Q_j(t)` whenever decisions respect backlogs).
    pub fn central_backlog(&self, j: usize) -> f64 {
        self.central[j].len() as f64
    }

    /// Job-units waiting in data center `i` for type `j`, counting the
    /// partially-served front job fractionally (should equal `q_{i,j}(t)`).
    pub fn local_backlog(&self, i: usize, j: usize) -> f64 {
        self.local[i][j].iter().map(|job| job.remaining).sum()
    }

    /// Whole jobs present in data center `i` for type `j` (a partially
    /// served job counts as one until it completes). Together with
    /// [`central_backlog`](Self::central_backlog) and the completion count
    /// this satisfies exact job-count conservation.
    pub fn local_job_count(&self, i: usize, j: usize) -> usize {
        self.local[i][j].len()
    }

    /// Executes one slot `t` of the decision: serves `h_{i,j}(t)` job-units
    /// FIFO in every data center (recording completions), then moves
    /// `r_{i,j}(t)` jobs from the central queues to the data centers
    /// (serviceable from `t+1`). Returns per-DC completions of this slot.
    ///
    /// Amounts beyond the actual backlog are ignored, mirroring the
    /// `max[·, 0]` in (12)–(13).
    pub fn step(&mut self, t: Slot, decision: &Decision) -> Vec<u64> {
        let n = self.local.len();
        let j_count = self.central.len();
        let mut completions = vec![0u64; n];

        // Serve: h_{i,j}(t) applies to jobs serviceable at t.
        for (i, done) in completions.iter_mut().enumerate() {
            for j in 0..j_count {
                let mut budget = decision.processed[(i, j)];
                let queue = &mut self.local[i][j];
                while budget > 1e-12 {
                    let Some(front) = queue.front_mut() else {
                        break;
                    };
                    if front.serviceable_from > t {
                        // Jobs routed this very slot are not serviceable yet.
                        break;
                    }
                    let served = front.remaining.min(budget);
                    front.remaining -= served;
                    budget -= served;
                    if front.remaining <= 1e-12 {
                        let job = *front;
                        queue.pop_front();
                        *done += 1;
                        self.completed_per_dc[i] += 1;
                        self.completed_total += 1;
                        // DC delay: w − u where u is the routing slot
                        // (= serviceable_from − 1); sojourn: w − arrival.
                        let delay = (t + 1 - job.serviceable_from) as f64;
                        self.dc_delay_sum[i] += delay;
                        self.dc_delay_samples[i].push(delay);
                        self.sojourn_sum += t.saturating_sub(job.arrival) as f64;
                    }
                }
            }
        }

        // Route: r_{i,j}(t) moves whole jobs, FIFO, capped by the backlog.
        for j in 0..j_count {
            for i in 0..n {
                let want = decision.routed[(i, j)].round() as usize;
                for _ in 0..want {
                    let Some(job) = self.central[j].pop_front() else {
                        break;
                    };
                    self.local[i][j].push_back(LocalJob {
                        arrival: job.arrival,
                        serviceable_from: t + 1,
                        remaining: 1.0,
                    });
                }
            }
        }

        completions
    }

    /// Records the arrivals of slot `t` (visible to the scheduler from
    /// `t+1`, per (12)).
    ///
    /// # Panics
    /// Panics if the arrival vector length mismatches.
    pub fn arrive(&mut self, t: Slot, arrivals: &[f64]) {
        assert_eq!(
            arrivals.len(),
            self.central.len(),
            "arrival vector mismatch"
        );
        for (j, &count) in arrivals.iter().enumerate() {
            for _ in 0..count.round() as usize {
                self.central[j].push_back(CentralJob { arrival: t });
            }
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> CompletionStats {
        let mean_dc_delay = self
            .completed_per_dc
            .iter()
            .zip(&self.dc_delay_sum)
            .map(|(&c, &s)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        CompletionStats {
            completed_per_dc: self.completed_per_dc.clone(),
            mean_dc_delay,
            completed_total: self.completed_total,
            mean_sojourn: if self.completed_total > 0 {
                self.sojourn_sum / self.completed_total as f64
            } else {
                0.0
            },
        }
    }

    /// Cumulative (completions, delay-sum) for data center `i` — used by
    /// the report to build running-average delay curves.
    pub fn dc_delay_accumulator(&self, i: usize) -> (u64, f64) {
        (self.completed_per_dc[i], self.dc_delay_sum[i])
    }

    /// Every completed job's data-center delay for data center `i`
    /// (for tail-latency quantiles).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn dc_delay_samples(&self, i: usize) -> &[f64] {
        &self.dc_delay_samples[i]
    }

    /// Captures the tracker's complete job-level state for a checkpoint.
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            central: self
                .central
                .iter()
                .map(|q| q.iter().map(|job| job.arrival).collect())
                .collect(),
            local: self
                .local
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|q| {
                            q.iter()
                                .map(|job| (job.arrival, job.serviceable_from, job.remaining))
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            completed_per_dc: self.completed_per_dc.clone(),
            dc_delay_sum: self.dc_delay_sum.clone(),
            dc_delay_samples: self.dc_delay_samples.clone(),
            completed_total: self.completed_total,
            sojourn_sum: self.sojourn_sum,
        }
    }

    /// Rebuilds a tracker from a [`snapshot`](Self::snapshot) — the exact
    /// inverse, so `from_snapshot(config, t.snapshot())` continues precisely
    /// where `t` stopped.
    ///
    /// # Errors
    /// Returns a message if the snapshot's shape mismatches the
    /// configuration or any job fraction is out of `(0, 1]`.
    pub fn from_snapshot(config: &SystemConfig, snap: TrackerSnapshot) -> Result<Self, String> {
        let n = config.num_data_centers();
        let j_count = config.num_job_classes();
        if snap.central.len() != j_count
            || snap.local.len() != n
            || snap.local.iter().any(|row| row.len() != j_count)
            || snap.completed_per_dc.len() != n
            || snap.dc_delay_sum.len() != n
            || snap.dc_delay_samples.len() != n
        {
            return Err("tracker snapshot shape mismatches the configuration".to_string());
        }
        for row in &snap.local {
            for queue in row {
                for &(_, _, remaining) in queue {
                    if !(remaining > 0.0 && remaining <= 1.0) {
                        return Err(format!(
                            "job fraction {remaining} outside (0, 1] in tracker snapshot"
                        ));
                    }
                }
            }
        }
        Ok(Self {
            central: snap
                .central
                .into_iter()
                .map(|q| {
                    q.into_iter()
                        .map(|arrival| CentralJob { arrival })
                        .collect()
                })
                .collect(),
            local: snap
                .local
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|q| {
                            q.into_iter()
                                .map(|(arrival, serviceable_from, remaining)| LocalJob {
                                    arrival,
                                    serviceable_from,
                                    remaining,
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            completed_per_dc: snap.completed_per_dc,
            dc_delay_sum: snap.dc_delay_sum,
            dc_delay_samples: snap.dc_delay_samples,
            completed_total: snap.completed_total,
            sojourn_sum: snap.sojourn_sum,
        })
    }
}

/// A plain-data copy of a [`JobTracker`]'s state, as written to and read
/// from checkpoints. Local jobs are `(arrival, serviceable_from,
/// remaining)` triples in FIFO order.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerSnapshot {
    /// Arrival slots of jobs waiting centrally, per job class, FIFO order.
    pub central: Vec<Vec<Slot>>,
    /// Jobs waiting in each data center: `[dc][job class]` FIFO queues.
    pub local: Vec<Vec<Vec<(Slot, Slot, f64)>>>,
    /// Completions per data center.
    pub completed_per_dc: Vec<u64>,
    /// Cumulative data-center delay per data center.
    pub dc_delay_sum: Vec<f64>,
    /// Every completed job's delay, per data center.
    pub dc_delay_samples: Vec<Vec<f64>>,
    /// Total completions.
    pub completed_total: u64,
    /// Cumulative sojourn time over all completed jobs.
    pub sojourn_sum: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("a", vec![10.0])
            .account("x", 1.0)
            .job_class(JobClass::new(1.0, vec![DataCenterId::new(0)], 0))
            .build()
            .unwrap()
    }

    #[test]
    fn always_style_service_has_dc_delay_one() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        // Slot 0: 2 jobs arrive.
        tr.arrive(0, &[2.0]);
        // Slot 1: route both.
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 2.0;
        tr.step(1, &route);
        assert_eq!(tr.central_backlog(0), 0.0);
        assert_eq!(tr.local_backlog(0, 0), 2.0);
        // Slot 2: serve both.
        let mut serve = cfg.decision_zeros();
        serve.processed[(0, 0)] = 2.0;
        let done = tr.step(2, &serve);
        assert_eq!(done, vec![2]);
        let stats = tr.stats();
        assert_eq!(stats.completed_total, 2);
        assert_eq!(stats.mean_dc_delay[0], 1.0);
        assert_eq!(stats.mean_sojourn, 2.0);
    }

    #[test]
    fn jobs_routed_this_slot_are_not_serviceable_yet() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[1.0]);
        // Route and (attempt to) serve in the same slot: per (13) the job
        // only reaches the DC queue at t+1.
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 1.0;
        z.processed[(0, 0)] = 1.0;
        let done = tr.step(1, &z);
        assert_eq!(done, vec![0]);
        assert_eq!(tr.local_backlog(0, 0), 1.0);
    }

    #[test]
    fn partial_service_suspends_and_resumes() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[1.0]);
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 1.0;
        tr.step(1, &route);
        // Serve 0.4 then 0.6 of the job.
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 0.4;
        assert_eq!(tr.step(2, &z), vec![0]);
        assert!((tr.local_backlog(0, 0) - 0.6).abs() < 1e-12);
        z.processed[(0, 0)] = 0.6;
        assert_eq!(tr.step(3, &z), vec![1]);
        // DC delay: routed at 1, finished at 3 → 2 slots.
        assert_eq!(tr.stats().mean_dc_delay[0], 2.0);
    }

    #[test]
    fn fifo_order_within_type() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[1.0]); // job A (arrival 0)
        tr.arrive(1, &[1.0]); // job B (arrival 1)
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 2.0;
        tr.step(2, &route);
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 1.0;
        tr.step(3, &z);
        // One completion; the completed job must be A (sojourn 3), not B.
        assert_eq!(tr.stats().completed_total, 1);
        assert_eq!(tr.stats().mean_sojourn, 3.0);
    }

    #[test]
    fn over_serving_and_over_routing_are_capped() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[1.0]);
        let mut z = cfg.decision_zeros();
        z.routed[(0, 0)] = 50.0;
        z.processed[(0, 0)] = 50.0;
        tr.step(1, &z);
        assert_eq!(tr.central_backlog(0), 0.0);
        assert_eq!(tr.local_backlog(0, 0), 1.0);
        tr.step(2, &z);
        assert_eq!(tr.local_backlog(0, 0), 0.0);
        assert_eq!(tr.stats().completed_total, 1);
    }

    #[test]
    fn snapshot_roundtrip_continues_identically() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[3.0]);
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 3.0;
        tr.step(1, &route);
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 1.4; // one done, one at 0.6 remaining
        tr.step(2, &z);

        let restored = JobTracker::from_snapshot(&cfg, tr.snapshot()).unwrap();
        assert_eq!(restored.stats(), tr.stats());
        assert_eq!(restored.local_backlog(0, 0), tr.local_backlog(0, 0));
        // Both continue to the same future.
        let mut a = tr.clone();
        let mut b = restored;
        z.processed[(0, 0)] = 2.0;
        assert_eq!(a.step(3, &z), b.step(3, &z));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn from_snapshot_rejects_bad_shapes_and_fractions() {
        let cfg = config();
        let tr = JobTracker::new(&cfg);
        let mut snap = tr.snapshot();
        snap.completed_per_dc.push(0);
        assert!(JobTracker::from_snapshot(&cfg, snap).is_err());
        let mut snap = tr.snapshot();
        snap.local[0][0].push((0, 1, 1.5));
        assert!(JobTracker::from_snapshot(&cfg, snap).is_err());
    }

    #[test]
    fn accumulator_matches_stats() {
        let cfg = config();
        let mut tr = JobTracker::new(&cfg);
        tr.arrive(0, &[3.0]);
        let mut route = cfg.decision_zeros();
        route.routed[(0, 0)] = 3.0;
        tr.step(1, &route);
        let mut z = cfg.decision_zeros();
        z.processed[(0, 0)] = 3.0;
        tr.step(2, &z);
        let (count, sum) = tr.dc_delay_accumulator(0);
        assert_eq!(count, 3);
        assert_eq!(sum, 3.0);
    }
}
