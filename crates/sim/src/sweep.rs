//! Parallel parameter sweeps: many schedulers against identical inputs.
//!
//! Fig. 2 sweeps `V ∈ {0.1, 2.5, 7.5, 20}`; Fig. 3 sweeps `β`; Fig. 4
//! compares policies. All of these are embarrassingly parallel over the
//! *same frozen inputs*, which is exactly what [`run_all`] does (one thread
//! per scheduler via `std::thread::scope`).

use crate::inputs::SimulationInputs;
use crate::report::SimulationReport;
use crate::simulation::Simulation;
use grefar_core::Scheduler;
use grefar_obs::{Event, Observer};
use grefar_types::SystemConfig;

/// Runs every `(label, scheduler)` pair against the same inputs in
/// parallel, returning `(label, report)` pairs in the original order.
///
/// # Example
/// ```
/// use grefar_core::{Always, GreFar, GreFarParams, Scheduler};
/// use grefar_sim::{sweep, PaperScenario};
///
/// let scenario = PaperScenario::default();
/// let config = scenario.config().clone();
/// let inputs = scenario.into_inputs(48);
/// let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
///     ("always".into(), Box::new(Always::new(&config))),
///     ("grefar".into(), Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).unwrap())),
/// ];
/// let reports = sweep::run_all(&config, &inputs, runs);
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports[0].0, "always");
/// ```
pub fn run_all(
    config: &SystemConfig,
    inputs: &SimulationInputs,
    schedulers: Vec<(String, Box<dyn Scheduler>)>,
) -> Vec<(String, SimulationReport)> {
    let mut out: Vec<Option<(String, SimulationReport)>> =
        (0..schedulers.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slot, (label, scheduler)) in out.iter_mut().zip(schedulers) {
            let config = config.clone();
            let inputs = inputs.clone();
            handles.push(scope.spawn(move || {
                let report = Simulation::new(config, inputs, scheduler).run();
                *slot = Some((label, report));
            }));
        }
        for h in handles {
            h.join().expect("simulation thread panicked");
        }
    });
    out.into_iter()
        .map(|entry| entry.expect("every run completes"))
        .collect()
}

/// The instrumented twin of [`run_all`]: runs the schedulers *serially*
/// against the same inputs, streaming every run's telemetry into `obs`.
///
/// Serial execution keeps the event stream deterministic (runs appear in
/// label order, never interleaved); a `sweep.run` marker event precedes
/// each run so a JSONL consumer can attribute the events that follow.
pub fn run_all_observed(
    config: &SystemConfig,
    inputs: &SimulationInputs,
    schedulers: Vec<(String, Box<dyn Scheduler>)>,
    obs: &mut dyn Observer,
) -> Vec<(String, SimulationReport)> {
    run_all_observed_until(config, inputs, schedulers, obs, &|| false)
}

/// [`run_all_observed`] with a cancellation point between runs: before
/// starting each scheduler, `cancel()` is polled, and a `true` stops the
/// sweep there, returning only the runs that completed.
///
/// Runs are never cut mid-flight — a run that has started always finishes,
/// so every returned report (and its telemetry) is whole. This is the hook
/// the experiment binaries use to honor a latched `SIGTERM` between the
/// runs of a long sweep.
pub fn run_all_observed_until(
    config: &SystemConfig,
    inputs: &SimulationInputs,
    schedulers: Vec<(String, Box<dyn Scheduler>)>,
    obs: &mut dyn Observer,
    cancel: &dyn Fn() -> bool,
) -> Vec<(String, SimulationReport)> {
    let mut out = Vec::new();
    for (label, scheduler) in schedulers {
        if cancel() {
            break;
        }
        if obs.enabled() {
            obs.record_event(Event::new("sweep.run").field("label", label.as_str()));
        }
        let mut sim = Simulation::new(config.clone(), inputs.clone(), scheduler);
        out.push((label, sim.run_with_observer(obs)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperScenario;
    use grefar_core::{Always, GreFar, GreFarParams};

    #[test]
    fn parallel_results_match_serial() {
        let scenario = PaperScenario::default().with_seed(9);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(36);

        let serial = Simulation::new(
            config.clone(),
            inputs.clone(),
            Box::new(Always::new(&config)),
        )
        .run();

        let runs: Vec<(String, Box<dyn Scheduler>)> = vec![
            ("a".into(), Box::new(Always::new(&config))),
            (
                "g".into(),
                Box::new(GreFar::new(&config, GreFarParams::new(7.5, 0.0)).unwrap()),
            ),
        ];
        let reports = run_all(&config, &inputs, runs);
        assert_eq!(reports.len(), 2);
        assert_eq!(
            reports[0].1.average_energy_cost(),
            serial.average_energy_cost()
        );
        assert_eq!(reports[0].0, "a");
        assert_eq!(reports[1].0, "g");
    }

    #[test]
    fn cancellation_stops_between_runs_and_keeps_completed_reports() {
        use grefar_obs::NullObserver;
        use std::cell::Cell;

        let scenario = PaperScenario::default().with_seed(9);
        let config = scenario.config().clone();
        let inputs = scenario.into_inputs(24);
        let make_runs = |config: &grefar_types::SystemConfig| -> Vec<(String, Box<dyn Scheduler>)> {
            vec![
                ("a".into(), Box::new(Always::new(config))),
                (
                    "g".into(),
                    Box::new(GreFar::new(config, GreFarParams::new(7.5, 0.0)).unwrap()),
                ),
            ]
        };

        // Cancel flips true after the first poll: the first run completes
        // (it was already cleared to start), the second never begins.
        let polls = Cell::new(0u32);
        let reports = run_all_observed_until(
            &config,
            &inputs,
            make_runs(&config),
            &mut NullObserver,
            &|| {
                polls.set(polls.get() + 1);
                polls.get() > 1
            },
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "a");

        // Never-cancelled matches run_all_observed exactly.
        let whole = run_all_observed_until(
            &config,
            &inputs,
            make_runs(&config),
            &mut NullObserver,
            &|| false,
        );
        let twin = run_all_observed(&config, &inputs, make_runs(&config), &mut NullObserver);
        assert_eq!(whole, twin);
    }
}
