//! Typed errors for the simulation run path.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a simulation run (or checkpoint operation) could not proceed.
///
/// The run loop itself is infallible — every slot produces a decision via
/// the scheduler's fallback chain — so these errors only arise at the
/// edges: constructing a run from mismatched parts, applying a fault plan,
/// and reading/writing checkpoints.
#[derive(Debug)]
pub enum SimError {
    /// The run was deliberately killed at `slot` by
    /// [`RunPolicy::kill_at`](crate::RunPolicy) after writing a checkpoint —
    /// the crash-injection half of the crash-recovery test.
    Killed {
        /// The first slot that was *not* executed.
        slot: u64,
        /// Where the checkpoint was written.
        checkpoint: PathBuf,
    },
    /// Inputs, configuration, fault plan or checkpoint disagree about the
    /// system's shape.
    Mismatch(String),
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// The checkpoint path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A checkpoint file exists but does not parse as a checkpoint.
    CheckpointFormat {
        /// 1-based line number within the checkpoint file.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The checkpoint was written by an incompatible format version.
    CheckpointSchema {
        /// Version found in the file.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Killed { slot, checkpoint } => write!(
                f,
                "run killed before slot {slot}; checkpoint written to {}",
                checkpoint.display()
            ),
            SimError::Mismatch(message) => write!(f, "{message}"),
            SimError::CheckpointIo { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            SimError::CheckpointFormat { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            SimError::CheckpointSchema { found, expected } => write!(
                f,
                "checkpoint schema v{found} is not the supported v{expected}"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::CheckpointIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Killed {
            slot: 250,
            checkpoint: PathBuf::from("/tmp/ck.jsonl"),
        };
        assert!(e.to_string().contains("slot 250"));
        let e = SimError::CheckpointSchema {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains("v9"));
        let e = SimError::CheckpointFormat {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = SimError::CheckpointIo {
            path: PathBuf::from("x"),
            source: io::Error::other("disk gone"),
        };
        assert!(e.source().is_some());
        assert!(SimError::Mismatch("m".into()).source().is_none());
    }
}
