//! Schema-versioned checkpoint/resume for simulation runs.
//!
//! A checkpoint captures *everything* the slot loop carries between slots —
//! queues, the job-level tracker, every metric series, the drop counter and
//! the fault-plan spec — as flat JSONL, one self-describing object per
//! line, parseable by `grefar_obs::json` (which is deliberately
//! array-free: vectors are comma-joined strings). Floats are encoded via
//! Rust's shortest-roundtrip `Display`, so a resumed run continues
//! **bit-identically**: the exogenous inputs are regenerated from the seed
//! and the accumulated state parses back to the exact same bits.
//!
//! Files are written atomically (temp file + rename), and the final
//! `ckpt.end` line carries the line count, so a crash mid-write leaves
//! either the previous complete checkpoint or a detectably-truncated file —
//! never a silently half-updated one.

use std::collections::BTreeMap;
use std::path::Path;

use grefar_obs::json::{self, JsonValue};
use grefar_obs::Event;
use grefar_types::Slot;

use crate::error::SimError;
use crate::tracker::TrackerSnapshot;

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// Every per-slot metric series the report accumulates, by raw per-slot
/// values (running averages are rebuilt by replaying
/// [`RunningSeries::push`](crate::RunningSeries)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSnapshot {
    /// Energy cost per slot.
    pub energy: Vec<f64>,
    /// Fairness score per slot.
    pub fairness: Vec<f64>,
    /// Per-account resource shares, `[account][slot]`.
    pub account_shares: Vec<Vec<f64>>,
    /// Per-DC scheduled work, `[dc][slot]`.
    pub work_per_dc: Vec<Vec<f64>>,
    /// Per-DC running-average delay curve, `[dc][slot]`.
    pub dc_delay: Vec<Vec<f64>>,
    /// Per-DC price series, `[dc][slot]`.
    pub prices: Vec<Vec<f64>>,
    /// Arriving work per slot.
    pub arriving_work: Vec<f64>,
    /// Total queue length per slot.
    pub queue_total: Vec<f64>,
    /// Max single queue length per slot.
    pub queue_max: Vec<f64>,
}

/// Cumulative job-conservation ledger counters
/// ([`JobLedger`](grefar_core::JobLedger)) at the cut, so a resumed run
/// continues the identical `soak.ledger` series and the conservation
/// oracle keeps holding across kill/resume.
///
/// Absent from pre-ledger checkpoints; the parser then re-anchors the
/// identity at the cut (`offered = admitted = Σ Θ`, everything else
/// zero), so old checkpoints keep loading and the schema stays at 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerSnapshot {
    /// Jobs offered (pre-admission-control) so far.
    pub offered: f64,
    /// Jobs admitted into the queues so far.
    pub admitted: f64,
    /// Jobs dropped by admission control so far.
    pub dropped: f64,
    /// Effective service `Σ min(h_ij, q_ij)` so far.
    pub served: f64,
    /// Phantom work minted by over-routing so far.
    pub route_excess: f64,
}

/// A complete mid-run snapshot: the next slot to execute plus all
/// accumulated state. Produced by
/// [`Simulation::run_resumable`](crate::Simulation::run_resumable), consumed
/// by [`Simulation::resume`](crate::Simulation::resume).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The first slot that has *not* been executed.
    pub slot: u64,
    /// The full horizon of the run being checkpointed.
    pub horizon: u64,
    /// The scheduler's self-reported name (sanity-checked on resume).
    pub scheduler: String,
    /// The fault-plan spec in force (empty string when none).
    pub faults: String,
    /// The feed-profile spec in force (empty string when none).
    pub feeds: String,
    /// Jobs dropped by admission control so far.
    pub dropped: u64,
    /// Central queue lengths `Q_j`.
    pub queues_central: Vec<f64>,
    /// Local queue lengths `q_{i,j}` as `[dc][job]` rows.
    pub queues_local: Vec<Vec<f64>>,
    /// The job-level tracker state.
    pub tracker: TrackerSnapshot,
    /// All metric series.
    pub series: SeriesSnapshot,
    /// Cumulative job-conservation ledger counters.
    pub ledger: LedgerSnapshot,
}

/// The result of a tolerant checkpoint load: the recovered record plus
/// how much trailing damage (if any) was skipped to reach it. Produced by
/// [`Checkpoint::load_latest`] / [`Checkpoint::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecovery {
    /// The last complete, valid checkpoint record.
    pub checkpoint: Checkpoint,
    /// Physical lines retained, up to and including the record's
    /// `ckpt.end`.
    pub kept_lines: u64,
    /// Bytes discarded after the recovered record (0 for a clean file).
    pub dropped_bytes: u64,
}

impl CheckpointRecovery {
    /// Whether trailing damage was skipped (callers emit a
    /// `checkpoint.truncated` telemetry event when so).
    pub fn was_truncated(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// Whether a physical line is a well-formed JSON object whose `event`
/// field equals `name` (consistent with the strict parser's framing).
fn is_event_line(line: &str, name: &str) -> bool {
    !line.trim().is_empty()
        && json::parse_object(line).ok().as_ref().and_then(event_name) == Some(name)
}

impl Checkpoint {
    /// Serializes to the JSONL checkpoint format.
    pub fn to_jsonl(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        lines.push(
            Event::new("ckpt.header")
                .field("v", CHECKPOINT_SCHEMA)
                .field("slot", self.slot)
                .field("horizon", self.horizon)
                .field("scheduler", self.scheduler.clone())
                .field("faults", self.faults.clone())
                .field("feeds", self.feeds.clone())
                .field("dropped", self.dropped)
                .field("data_centers", self.queues_local.len())
                .field("job_classes", self.queues_central.len())
                .field("accounts", self.series.account_shares.len())
                .field("completed_total", self.tracker.completed_total)
                .field("sojourn_sum", fmt_f64(self.tracker.sojourn_sum))
                .to_json(),
        );
        lines.push(
            Event::new("ckpt.ledger")
                .field("offered", self.ledger.offered)
                .field("admitted", self.ledger.admitted)
                .field("dropped", self.ledger.dropped)
                .field("served", self.ledger.served)
                .field("route_excess", self.ledger.route_excess)
                .to_json(),
        );
        lines.push(
            Event::new("ckpt.queues")
                .field("central", join_f64(&self.queues_central))
                .to_json(),
        );
        for (i, row) in self.queues_local.iter().enumerate() {
            lines.push(
                Event::new("ckpt.local_queues")
                    .field("dc", i)
                    .field("values", join_f64(row))
                    .to_json(),
            );
        }
        for (j, arrivals) in self.tracker.central.iter().enumerate() {
            lines.push(
                Event::new("ckpt.central_jobs")
                    .field("job", j)
                    .field("arrivals", join_u64(arrivals))
                    .to_json(),
            );
        }
        for (i, row) in self.tracker.local.iter().enumerate() {
            for (j, jobs) in row.iter().enumerate() {
                let arrivals: Vec<Slot> = jobs.iter().map(|&(a, _, _)| a).collect();
                let serviceable: Vec<Slot> = jobs.iter().map(|&(_, s, _)| s).collect();
                let remaining: Vec<f64> = jobs.iter().map(|&(_, _, r)| r).collect();
                lines.push(
                    Event::new("ckpt.local_jobs")
                        .field("dc", i)
                        .field("job", j)
                        .field("arrivals", join_u64(&arrivals))
                        .field("serviceable", join_u64(&serviceable))
                        .field("remaining", join_f64(&remaining))
                        .to_json(),
                );
            }
        }
        for i in 0..self.tracker.completed_per_dc.len() {
            lines.push(
                Event::new("ckpt.tracker_dc")
                    .field("dc", i)
                    .field("completed", self.tracker.completed_per_dc[i])
                    .field("delay_sum", fmt_f64(self.tracker.dc_delay_sum[i]))
                    .field("delay_samples", join_f64(&self.tracker.dc_delay_samples[i]))
                    .to_json(),
            );
        }
        let scalar_series = [
            ("energy", &self.series.energy),
            ("fairness", &self.series.fairness),
            ("arriving_work", &self.series.arriving_work),
            ("queue_total", &self.series.queue_total),
            ("queue_max", &self.series.queue_max),
        ];
        for (name, values) in scalar_series {
            lines.push(
                Event::new("ckpt.series")
                    .field("name", name)
                    .field("values", join_f64(values))
                    .to_json(),
            );
        }
        let indexed_series = [
            ("account_shares", &self.series.account_shares),
            ("work_per_dc", &self.series.work_per_dc),
            ("dc_delay", &self.series.dc_delay),
            ("prices", &self.series.prices),
        ];
        for (name, family) in indexed_series {
            for (index, values) in family.iter().enumerate() {
                lines.push(
                    Event::new("ckpt.series")
                        .field("name", name)
                        .field("index", index)
                        .field("values", join_f64(values))
                        .to_json(),
                );
            }
        }
        lines.push(
            Event::new("ckpt.end")
                .field("lines", lines.len() + 1)
                .to_json(),
        );
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// Writes the checkpoint atomically *and durably*: serialize to
    /// `<path>.tmp`, `fsync` the temp file, rename over `path`, then
    /// `fsync` the parent directory. An interrupted write never corrupts an
    /// existing checkpoint, and once `write` returns the new checkpoint
    /// survives power loss — without the data sync a rename can land before
    /// the bytes do (leaving a valid name over empty content), and without
    /// the directory sync the rename itself may not be on disk.
    ///
    /// # Errors
    /// [`SimError::CheckpointIo`] when the temp file cannot be written,
    /// synced or renamed, or the parent directory cannot be synced.
    pub fn write(&self, path: &Path) -> Result<(), SimError> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        let io_err = |source| SimError::CheckpointIo {
            path: path.to_path_buf(),
            source,
        };
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(self.to_jsonl().as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(io_err)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::File::open(parent)
                .and_then(|dir| dir.sync_all())
                .map_err(io_err)?;
        }
        Ok(())
    }

    /// Appends this checkpoint as one more record to a checkpoint
    /// *journal* and syncs it to disk. Unlike [`write`](Self::write) the
    /// journal keeps every prior record, so a crash mid-append damages at
    /// most the trailing record — [`load_latest`](Self::load_latest)
    /// recovers to the last complete one. This is how `grefar-served`
    /// persists state: append-only, recoverable, no rename window.
    ///
    /// # Errors
    /// [`SimError::CheckpointIo`] when the journal cannot be opened,
    /// written or synced.
    pub fn append(&self, path: &Path) -> Result<(), SimError> {
        use std::io::Write as _;
        let io_err = |source| SimError::CheckpointIo {
            path: path.to_path_buf(),
            source,
        };
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        file.write_all(self.to_jsonl().as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        Ok(())
    }

    /// Reads the last complete checkpoint record from a file, tolerating
    /// a truncated or corrupt trailing record (crash mid-append).
    ///
    /// Works on both a single [`write`](Self::write)-style checkpoint and
    /// an [`append`](Self::append)-style journal: the text is scanned for
    /// complete `ckpt.header … ckpt.end` blocks and the latest block that
    /// parses cleanly wins. Everything after it — a half-written line, a
    /// corrupt record, a block whose `ckpt.end` never made it to disk —
    /// is reported via [`CheckpointRecovery::dropped_bytes`] so the
    /// caller can emit a `checkpoint.truncated` telemetry event instead
    /// of dying on a hard parse error.
    ///
    /// # Errors
    /// [`SimError::CheckpointIo`] when the file cannot be read, and
    /// [`SimError::CheckpointFormat`]/[`SimError::CheckpointSchema`] when
    /// *no* complete record can be recovered (the strict error from the
    /// most recent candidate block is surfaced).
    pub fn load_latest(path: &Path) -> Result<CheckpointRecovery, SimError> {
        let text = std::fs::read_to_string(path).map_err(|source| SimError::CheckpointIo {
            path: path.to_path_buf(),
            source,
        })?;
        Self::recover(&text)
    }

    /// Parses the last complete record out of (possibly damaged)
    /// checkpoint/journal text. See [`load_latest`](Self::load_latest).
    ///
    /// # Errors
    /// As for [`load_latest`](Self::load_latest), minus the I/O case.
    pub fn recover(text: &str) -> Result<CheckpointRecovery, SimError> {
        // Physical lines with their byte extents (offset of the line start
        // and of the character past its newline), so dropped trailing
        // bytes can be counted exactly — including a final unterminated
        // fragment.
        let mut lines: Vec<(&str, usize, usize)> = Vec::new();
        let mut offset = 0;
        for raw in text.split_inclusive('\n') {
            lines.push((
                raw.trim_end_matches(['\n', '\r']),
                offset,
                offset + raw.len(),
            ));
            offset += raw.len();
        }
        let header_starts: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, (line, _, _))| is_event_line(line, "ckpt.header"))
            .map(|(idx, _)| idx)
            .collect();
        if header_starts.is_empty() {
            // No recognizable record at all: surface the strict parser's
            // precise diagnostic (it cannot succeed without a header).
            return Err(Self::parse(text)
                .err()
                .unwrap_or_else(|| bad(1, "empty checkpoint")));
        }
        let mut last_err = None;
        for &start in header_starts.iter().rev() {
            // A record ends at the first ckpt.end after its header; a
            // missing one means the record never finished landing.
            let Some(end) = lines[start..]
                .iter()
                .position(|(line, _, _)| is_event_line(line, "ckpt.end"))
                .map(|rel| start + rel)
            else {
                last_err = last_err.or(Some(bad(
                    lines.len(),
                    "checkpoint is truncated (no ckpt.end)",
                )));
                continue;
            };
            let block: String = lines[start..=end]
                .iter()
                .map(|(line, _, _)| *line)
                .collect::<Vec<_>>()
                .join("\n");
            match Self::parse(&block) {
                Ok(checkpoint) => {
                    return Ok(CheckpointRecovery {
                        checkpoint,
                        kept_lines: (end + 1) as u64,
                        dropped_bytes: (text.len() - lines[end].2) as u64,
                    });
                }
                Err(err) => last_err = last_err.or(Some(err)),
            }
        }
        Err(last_err.unwrap_or_else(|| bad(1, "empty checkpoint")))
    }

    /// Reads a checkpoint file written by [`write`](Self::write).
    ///
    /// # Errors
    /// [`SimError::CheckpointIo`] when the file cannot be read,
    /// [`SimError::CheckpointSchema`] on a version mismatch, and
    /// [`SimError::CheckpointFormat`] (with the offending line number) on
    /// malformed or truncated content.
    pub fn load(path: &Path) -> Result<Self, SimError> {
        let text = std::fs::read_to_string(path).map_err(|source| SimError::CheckpointIo {
            path: path.to_path_buf(),
            source,
        })?;
        Self::parse(&text)
    }

    /// Parses checkpoint JSONL text. See [`load`](Self::load) for errors.
    ///
    /// # Errors
    /// As for [`load`](Self::load), minus the I/O case.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let parsed: Vec<BTreeMap<String, JsonValue>> = lines
            .iter()
            .enumerate()
            .map(|(idx, line)| {
                json::parse_object(line).map_err(|message| SimError::CheckpointFormat {
                    line: idx + 1,
                    message,
                })
            })
            .collect::<Result<_, _>>()?;

        let header = parsed.first().ok_or(SimError::CheckpointFormat {
            line: 1,
            message: "empty checkpoint".to_string(),
        })?;
        if event_name(header) != Some("ckpt.header") {
            return Err(bad(1, "first line is not ckpt.header"));
        }
        let version = get_u64(header, "v", 1)?;
        if version != CHECKPOINT_SCHEMA {
            return Err(SimError::CheckpointSchema {
                found: version,
                expected: CHECKPOINT_SCHEMA,
            });
        }
        let last_line = parsed.len();
        let end = parsed.last().ok_or_else(|| bad(1, "empty checkpoint"))?;
        if event_name(end) != Some("ckpt.end") {
            return Err(bad(last_line, "checkpoint is truncated (no ckpt.end)"));
        }
        let declared = get_u64(end, "lines", last_line)?;
        if declared != parsed.len() as u64 {
            return Err(bad(
                last_line,
                &format!("expected {declared} lines, found {}", parsed.len()),
            ));
        }

        let n = get_u64(header, "data_centers", 1)? as usize;
        let j_count = get_u64(header, "job_classes", 1)? as usize;
        let accounts = get_u64(header, "accounts", 1)? as usize;
        let mut out = Checkpoint {
            slot: get_u64(header, "slot", 1)?,
            horizon: get_u64(header, "horizon", 1)?,
            scheduler: get_str(header, "scheduler", 1)?.to_string(),
            faults: get_str(header, "faults", 1)?.to_string(),
            // Absent in pre-feed-layer checkpoints; a missing field means
            // the run had no feed profile, so the schema stays at 1.
            feeds: get_str(header, "feeds", 1).unwrap_or("").to_string(),
            dropped: get_u64(header, "dropped", 1)?,
            queues_central: Vec::new(),
            queues_local: vec![Vec::new(); n],
            tracker: TrackerSnapshot {
                central: vec![Vec::new(); j_count],
                local: vec![vec![Vec::new(); j_count]; n],
                completed_per_dc: vec![0; n],
                dc_delay_sum: vec![0.0; n],
                dc_delay_samples: vec![Vec::new(); n],
                completed_total: get_u64(header, "completed_total", 1)?,
                sojourn_sum: parse_f64(get_str(header, "sojourn_sum", 1)?, 1)?,
            },
            series: SeriesSnapshot {
                account_shares: vec![Vec::new(); accounts],
                work_per_dc: vec![Vec::new(); n],
                dc_delay: vec![Vec::new(); n],
                prices: vec![Vec::new(); n],
                ..SeriesSnapshot::default()
            },
            ledger: LedgerSnapshot::default(),
        };

        let mut saw_ledger = false;
        for (idx, obj) in parsed.iter().enumerate().skip(1).take(parsed.len() - 2) {
            let lineno = idx + 1;
            // verify: match-events(checkpoint, partial)
            // (header/footer are consumed by the framing loop above, not
            // by this per-line dispatch.)
            match event_name(obj) {
                Some("ckpt.ledger") => {
                    out.ledger = LedgerSnapshot {
                        offered: get_f64(obj, "offered", lineno)?,
                        admitted: get_f64(obj, "admitted", lineno)?,
                        dropped: get_f64(obj, "dropped", lineno)?,
                        served: get_f64(obj, "served", lineno)?,
                        route_excess: get_f64(obj, "route_excess", lineno)?,
                    };
                    saw_ledger = true;
                }
                Some("ckpt.queues") => {
                    out.queues_central = split_f64(get_str(obj, "central", lineno)?, lineno)?;
                }
                Some("ckpt.local_queues") => {
                    let i = index_in(obj, "dc", n, lineno)?;
                    out.queues_local[i] = split_f64(get_str(obj, "values", lineno)?, lineno)?;
                }
                Some("ckpt.central_jobs") => {
                    let j = index_in(obj, "job", j_count, lineno)?;
                    out.tracker.central[j] = split_u64(get_str(obj, "arrivals", lineno)?, lineno)?;
                }
                Some("ckpt.local_jobs") => {
                    let i = index_in(obj, "dc", n, lineno)?;
                    let j = index_in(obj, "job", j_count, lineno)?;
                    let arrivals = split_u64(get_str(obj, "arrivals", lineno)?, lineno)?;
                    let serviceable = split_u64(get_str(obj, "serviceable", lineno)?, lineno)?;
                    let remaining = split_f64(get_str(obj, "remaining", lineno)?, lineno)?;
                    if arrivals.len() != serviceable.len() || arrivals.len() != remaining.len() {
                        return Err(bad(lineno, "ragged local job lists"));
                    }
                    out.tracker.local[i][j] = arrivals
                        .into_iter()
                        .zip(serviceable)
                        .zip(remaining)
                        .map(|((a, s), r)| (a, s, r))
                        .collect();
                }
                Some("ckpt.tracker_dc") => {
                    let i = index_in(obj, "dc", n, lineno)?;
                    out.tracker.completed_per_dc[i] = get_u64(obj, "completed", lineno)?;
                    out.tracker.dc_delay_sum[i] =
                        parse_f64(get_str(obj, "delay_sum", lineno)?, lineno)?;
                    out.tracker.dc_delay_samples[i] =
                        split_f64(get_str(obj, "delay_samples", lineno)?, lineno)?;
                }
                Some("ckpt.series") => {
                    let values = split_f64(get_str(obj, "values", lineno)?, lineno)?;
                    let name = get_str(obj, "name", lineno)?;
                    match name {
                        "energy" => out.series.energy = values,
                        "fairness" => out.series.fairness = values,
                        "arriving_work" => out.series.arriving_work = values,
                        "queue_total" => out.series.queue_total = values,
                        "queue_max" => out.series.queue_max = values,
                        "account_shares" => {
                            let k = index_in(obj, "index", accounts, lineno)?;
                            out.series.account_shares[k] = values;
                        }
                        "work_per_dc" => {
                            let i = index_in(obj, "index", n, lineno)?;
                            out.series.work_per_dc[i] = values;
                        }
                        "dc_delay" => {
                            let i = index_in(obj, "index", n, lineno)?;
                            out.series.dc_delay[i] = values;
                        }
                        "prices" => {
                            let i = index_in(obj, "index", n, lineno)?;
                            out.series.prices[i] = values;
                        }
                        other => return Err(bad(lineno, &format!("unknown series {other:?}"))),
                    }
                }
                Some(other) => return Err(bad(lineno, &format!("unknown line kind {other:?}"))),
                None => return Err(bad(lineno, "line has no event field")),
            }
        }

        if !saw_ledger {
            // Pre-ledger checkpoints carry no counters; re-anchor the
            // conservation identity at the cut so resumed runs keep
            // balancing from here on.
            let total = out.queues_central.iter().sum::<f64>()
                + out.queues_local.iter().flatten().sum::<f64>();
            out.ledger = LedgerSnapshot {
                offered: total,
                admitted: total,
                ..LedgerSnapshot::default()
            };
        }

        let executed = out.slot as usize;
        if out.queues_central.len() != j_count
            || out.queues_local.iter().any(|row| row.len() != j_count)
            || out.series.energy.len() != executed
            || out.series.fairness.len() != executed
            || out.series.queue_total.len() != executed
        {
            return Err(bad(1, "checkpoint shapes disagree with its header"));
        }
        Ok(out)
    }
}

fn bad(line: usize, message: &str) -> SimError {
    SimError::CheckpointFormat {
        line,
        message: message.to_string(),
    }
}

fn event_name(obj: &BTreeMap<String, JsonValue>) -> Option<&str> {
    obj.get("event").and_then(JsonValue::as_str)
}

fn get_str<'a>(
    obj: &'a BTreeMap<String, JsonValue>,
    key: &str,
    line: usize,
) -> Result<&'a str, SimError> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad(line, &format!("missing string field {key:?}")))
}

fn get_f64(obj: &BTreeMap<String, JsonValue>, key: &str, line: usize) -> Result<f64, SimError> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad(line, &format!("missing numeric field {key:?}")))
}

fn get_u64(obj: &BTreeMap<String, JsonValue>, key: &str, line: usize) -> Result<u64, SimError> {
    let v = obj
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad(line, &format!("missing numeric field {key:?}")))?;
    if v < 0.0 || v.fract() > 0.0 {
        return Err(bad(line, &format!("field {key:?} is not a whole number")));
    }
    Ok(v as u64)
}

fn index_in(
    obj: &BTreeMap<String, JsonValue>,
    key: &str,
    len: usize,
    line: usize,
) -> Result<usize, SimError> {
    let v = get_u64(obj, key, line)? as usize;
    if v >= len {
        return Err(bad(
            line,
            &format!("{key} index {v} out of range (< {len})"),
        ));
    }
    Ok(v)
}

/// Rust's `Display` for finite `f64` is shortest-roundtrip, so formatting
/// and reparsing reproduces the exact bits — the foundation of
/// bit-identical resume.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn join_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| fmt_f64(*v))
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_f64(text: &str, line: usize) -> Result<f64, SimError> {
    text.parse::<f64>()
        .map_err(|_| bad(line, &format!("bad float {text:?}")))
}

fn split_f64(text: &str, line: usize) -> Result<Vec<f64>, SimError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|_| bad(line, &format!("bad float {tok:?}")))
        })
        .collect()
}

fn split_u64(text: &str, line: usize) -> Result<Vec<u64>, SimError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|tok| {
            tok.parse::<u64>()
                .map_err(|_| bad(line, &format!("bad integer {tok:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            slot: 3,
            horizon: 10,
            scheduler: "GreFar(V=7.5, beta=0)".to_string(),
            faults: "outage:dc=0,start=2,end=4".to_string(),
            feeds: "drop:feed=price,p=0.25,start=0,end=10".to_string(),
            dropped: 1,
            queues_central: vec![2.0, 0.5],
            queues_local: vec![vec![1.0, 0.0], vec![0.25, 3.0]],
            tracker: TrackerSnapshot {
                central: vec![vec![1, 2], vec![]],
                local: vec![
                    vec![vec![(0, 1, 1.0), (0, 2, 0.125)], vec![]],
                    vec![vec![], vec![(1, 2, 0.7)]],
                ],
                completed_per_dc: vec![4, 0],
                dc_delay_sum: vec![5.5, 0.0],
                dc_delay_samples: vec![vec![1.0, 2.0, 1.5, 1.0], vec![]],
                completed_total: 4,
                sojourn_sum: 9.25,
            },
            series: SeriesSnapshot {
                energy: vec![0.1, 0.2, 0.30000000000000004],
                fairness: vec![0.0, 0.0, 0.0],
                account_shares: vec![vec![1.0, 1.0, 1.0]],
                work_per_dc: vec![vec![0.5, 0.5, 0.5], vec![0.0, 0.0, 0.0]],
                dc_delay: vec![vec![0.0, 1.0, 1.375], vec![0.0, 0.0, 0.0]],
                prices: vec![vec![0.3, 0.3, 0.3], vec![0.9, 0.9, 0.9]],
                arriving_work: vec![2.0, 2.0, 2.0],
                queue_total: vec![2.0, 4.0, 6.875],
                queue_max: vec![2.0, 3.0, 3.0],
            },
            ledger: LedgerSnapshot {
                offered: 8.0,
                admitted: 7.0,
                dropped: 1.0,
                served: 0.125,
                route_excess: 0.30000000000000004,
            },
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let ck = sample();
        let text = ck.to_jsonl();
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn write_load_roundtrip_and_atomicity() {
        let dir = std::env::temp_dir().join(format!("grefar-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.jsonl");
        let ck = sample();
        ck.write(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file left behind"
        );
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_feed_layer_checkpoints_parse_with_empty_feeds() {
        // Checkpoints written before the feed layer existed have no
        // `feeds` header field; they must load with an empty profile.
        let text = sample()
            .to_jsonl()
            .replace(",\"feeds\":\"drop:feed=price,p=0.25,start=0,end=10\"", "");
        let back = Checkpoint::parse(&text).unwrap();
        assert_eq!(back.feeds, "");
    }

    #[test]
    fn pre_ledger_checkpoints_reanchor_the_conservation_identity() {
        // Checkpoints written before the conservation ledger existed have
        // no `ckpt.ledger` line; they must load with the identity
        // re-anchored at the cut: offered = admitted = Σ Θ.
        let ck = sample();
        let full = ck.to_jsonl();
        let lines: Vec<&str> = full
            .lines()
            .filter(|l| !l.contains("ckpt.ledger"))
            .collect();
        assert_eq!(lines.len() + 1, full.lines().count());
        let mut text = lines.join("\n").replace(
            &format!("\"lines\":{}", full.lines().count()),
            &format!("\"lines\":{}", lines.len()),
        );
        text.push('\n');
        let back = Checkpoint::parse(&text).unwrap();
        let total = 2.0 + 0.5 + 1.0 + 0.25 + 3.0;
        assert_eq!(
            back.ledger,
            LedgerSnapshot {
                offered: total,
                admitted: total,
                ..LedgerSnapshot::default()
            }
        );
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let text = sample().to_jsonl();
        let cut: String = text
            .lines()
            .take(text.lines().count() - 2)
            .collect::<Vec<_>>()
            .join("\n");
        let err = Checkpoint::parse(&cut).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn recovery_tolerates_truncation_at_every_offset_of_the_final_record() {
        let ck1 = sample();
        let mut ck2 = sample();
        ck2.dropped = 2;
        ck2.queues_central = vec![1.5, 0.25];
        let block1 = ck1.to_jsonl();
        let text = format!("{}{}", block1, ck2.to_jsonl());

        // A clean journal recovers its newest record with nothing dropped.
        let clean = Checkpoint::recover(&text).unwrap();
        assert_eq!(clean.checkpoint, ck2);
        assert!(!clean.was_truncated());
        assert_eq!(clean.kept_lines as usize, text.lines().count());

        // Byte-level truncation at every offset inside the final record:
        // the loader falls back to the last complete record and counts
        // the damage. (At text.len() - 1 only the trailing newline is
        // missing, so the final record is still whole.)
        for cut in block1.len()..text.len() {
            let damaged = &text[..cut];
            let recovered =
                Checkpoint::recover(damaged).unwrap_or_else(|err| panic!("cut at {cut}: {err}"));
            if cut < text.len() - 1 {
                assert_eq!(recovered.checkpoint, ck1, "cut at {cut}");
                assert_eq!(recovered.dropped_bytes as usize, cut - block1.len());
                assert_eq!(recovered.was_truncated(), cut > block1.len());
                assert_eq!(recovered.kept_lines as usize, block1.lines().count());
            } else {
                assert_eq!(recovered.checkpoint, ck2, "cut at {cut}");
                assert!(!recovered.was_truncated());
            }
        }

        // Corrupt trailing garbage (not just truncation) is skipped too.
        let noisy = format!("{text}{{\"event\":\"ckpt.head");
        let recovered = Checkpoint::recover(&noisy).unwrap();
        assert_eq!(recovered.checkpoint, ck2);
        assert!(recovered.was_truncated());
        assert_eq!(recovered.dropped_bytes as usize, noisy.len() - text.len());

        // With no complete record at all, the strict diagnostic surfaces.
        let err = Checkpoint::recover(&block1[..block1.len() / 2]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert!(Checkpoint::recover("").is_err());
    }

    #[test]
    fn append_grows_a_recoverable_journal() {
        let dir = std::env::temp_dir().join(format!("grefar-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("served.ckpt.jsonl");
        let ck1 = sample();
        let mut ck2 = sample();
        ck2.dropped = 7;
        ck1.write(&path).unwrap();
        ck2.append(&path).unwrap();
        let recovered = Checkpoint::load_latest(&path).unwrap();
        assert_eq!(recovered.checkpoint, ck2);
        assert!(!recovered.was_truncated());
        // The journal still holds both records.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{}{}", ck1.to_jsonl(), ck2.to_jsonl()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let text = sample().to_jsonl().replace("\"v\":1", "\"v\":99");
        match Checkpoint::parse(&text) {
            Err(SimError::CheckpointSchema {
                found: 99,
                expected,
            }) => {
                assert_eq!(expected, CHECKPOINT_SCHEMA);
            }
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_values_carry_line_numbers() {
        let text = sample()
            .to_jsonl()
            .replace("\"central\":\"2,0.5\"", "\"central\":\"2,oops\"");
        match Checkpoint::parse(&text) {
            Err(SimError::CheckpointFormat { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("oops"), "{message}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn float_encoding_roundtrips_extremes() {
        let values = vec![
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            12345.678901234567,
            0.0,
        ];
        let back = split_f64(&join_f64(&values), 1).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
