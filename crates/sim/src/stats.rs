//! Small statistics helpers: empirical quantiles for tail-latency
//! reporting.

/// Summary quantiles of an empirical distribution (job delays, queue
/// lengths, …).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Number of samples summarized.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Quantiles {
    /// Computes the summary from unsorted samples. Returns all-zero for an
    /// empty slice.
    pub fn from_samples(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Self {
            count: sorted.len(),
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// The `q`-quantile of an ascending-sorted slice, with linear interpolation
/// between order statistics (the common "type 7" estimator).
///
/// # Panics
/// Panics if `values` is empty or `q ∉ [0, 1]`.
pub fn quantile_sorted(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    let position = q * (n - 1) as f64;
    let lo = position.floor() as usize;
    let hi = position.ceil() as usize;
    let frac = position - lo as f64;
    values[lo] * (1.0 - frac) + values[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from_samples(&values);
        assert_eq!(q.count, 100);
        assert!((q.p50 - 50.5).abs() < 1e-12);
        assert!((q.p90 - 90.1).abs() < 1e-9);
        assert!((q.p99 - 99.01).abs() < 1e-9);
        assert_eq!(q.max, 100.0);
    }

    #[test]
    fn empty_sample_is_zero() {
        let q = Quantiles::from_samples(&[]);
        assert_eq!(q.count, 0);
        assert_eq!(q.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let q = Quantiles::from_samples(&[7.0]);
        assert_eq!(q.p50, 7.0);
        assert_eq!(q.max, 7.0);
    }

    #[test]
    fn interpolation_between_order_statistics() {
        assert_eq!(quantile_sorted(&[0.0, 10.0], 0.25), 2.5);
        assert_eq!(quantile_sorted(&[0.0, 10.0], 0.5), 5.0);
        assert_eq!(quantile_sorted(&[1.0, 2.0, 3.0], 1.0), 3.0);
        assert_eq!(quantile_sorted(&[1.0, 2.0, 3.0], 0.0), 1.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let q = Quantiles::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(q.p50, 3.0);
        assert_eq!(q.max, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile_sorted(&[], 0.5);
    }
}
