//! A receding-horizon (MPC) scheduler built on the frame LP.
//!
//! The paper's §II discusses prediction-based approaches (e.g. Guenter et
//! al. [4] predict future demand with a Markov chain) and §I argues that
//! dynamic programming over forecasts "can be time consuming". This module
//! implements that alternative honestly so the trade-off can be measured:
//! every slot, [`MpcScheduler`] solves a linear program over the next `H`
//! slots of *forecast* prices, availability and arrivals — minimizing
//! energy plus a backlog holding cost — and applies the first slot of the
//! plan. With a perfect oracle forecast it upper-bounds what
//! forecast-driven scheduling can achieve; with forecast noise it degrades,
//! while GreFar needs no forecast at all (the `forecast_value` experiment).
//!
//! The LP per slot (variables `x[τ][i][j]` = jobs of type `j` served at DC
//! `i` in relative slot `τ`, `b[τ][i][k]` = busy servers, `B[τ][j]` =
//! backlog):
//!
//! ```text
//! min  Σ_τ Σ_i φ̂_i(t+τ)·Σ_k p_k b[τ][i][k]  +  w·Σ_τ Σ_j d_j B[τ][j]
//!      + φ̄(t)·Σ_j d_j B[H−1][j]                    (terminal backlog value)
//! s.t. B[0][j]  = backlog_j(t)         − Σ_i x[0][i][j]
//!      B[τ][j]  = B[τ−1][j] + â_j(t+τ−1) − Σ_i x[τ][i][j]        (τ ≥ 1)
//!      Σ_j d_j x[τ][i][j] ≤ Σ_k s_k b[τ][i][k],   b ≤ n̂,  x ≤ h^max
//! ```
//!
//! The holding weight `w` plays the role of `1/V`: higher `w` serves
//! sooner, lower `w` waits for cheap slots. The terminal term charges
//! work still unserved at the horizon's end the *current average price*
//! `φ̄(t)`, so the planner cannot cheat by pushing everything past the
//! horizon; it therefore serves now exactly when the current price beats
//! the average minus accrued holding.

use crate::inputs::SimulationInputs;
use grefar_core::{QueueState, Scheduler, SlotInstance};
use grefar_lp::{LpProblem, Relation, SolveStats};
use grefar_obs::{Event, Observer, Timer};
use grefar_types::{Decision, SystemConfig, SystemState};

/// Receding-horizon scheduler with an oracle (optionally noisy) forecast.
pub struct MpcScheduler {
    config: SystemConfig,
    forecast: SimulationInputs,
    horizon: usize,
    holding_weight: f64,
    price_noise: f64,
}

impl core::fmt::Debug for MpcScheduler {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MpcScheduler")
            .field("horizon", &self.horizon)
            .field("holding_weight", &self.holding_weight)
            .field("price_noise", &self.price_noise)
            .finish_non_exhaustive()
    }
}

impl MpcScheduler {
    /// Creates the scheduler with lookahead `horizon ≥ 1` slots, backlog
    /// holding weight `holding_weight > 0` (cost per unit of backlog work
    /// per slot) and a perfect forecast taken from `forecast`.
    ///
    /// # Panics
    /// Panics if `horizon == 0` or `holding_weight` is not positive/finite.
    pub fn new(
        config: &SystemConfig,
        forecast: SimulationInputs,
        horizon: usize,
        holding_weight: f64,
    ) -> Self {
        assert!(horizon >= 1, "horizon must be at least one slot");
        assert!(
            holding_weight.is_finite() && holding_weight > 0.0,
            "holding weight must be positive and finite"
        );
        Self {
            config: config.clone(),
            forecast,
            horizon,
            holding_weight,
            price_noise: 0.0,
        }
    }

    /// Degrades the price forecast with deterministic multiplicative error
    /// of relative amplitude `amplitude` (0 = oracle). Arrival and
    /// availability forecasts stay exact, isolating price-forecast value.
    ///
    /// # Panics
    /// Panics if `amplitude` is negative or non-finite.
    #[must_use]
    pub fn with_price_noise(mut self, amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "noise amplitude must be non-negative"
        );
        self.price_noise = amplitude;
        self
    }

    /// The forecast price of DC `i` at absolute slot `t` (clamped to the
    /// forecast horizon), with deterministic noise if configured.
    fn price_hat(&self, t: usize, i: usize) -> f64 {
        let t = t.min(self.forecast.horizon() - 1);
        let base = self.forecast.state(t).data_center(i).price();
        if grefar_types::approx_zero(self.price_noise, grefar_types::TOL_SENTINEL) {
            return base;
        }
        // Deterministic pseudo-noise: a cheap hash of (t, i) mapped to
        // [−1, 1]. Reproducible across runs without carrying RNG state.
        let mut h = (t as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i as u64 + 1);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (base * (1.0 + self.price_noise * (2.0 * unit - 1.0))).max(0.0)
    }

    fn availability_hat(&self, t: usize, i: usize, k: usize) -> f64 {
        let t = t.min(self.forecast.horizon() - 1);
        self.forecast.state(t).data_center(i).available(k)
    }

    fn arrivals_hat(&self, t: usize, j: usize) -> f64 {
        if t >= self.forecast.horizon() {
            return 0.0;
        }
        self.forecast.arrivals(t)[j]
    }

    /// Builds and solves the horizon LP, maps its first slot onto the
    /// two-tier dynamics, and reports the LP's shape and solve counters
    /// (`None` when the solve failed and the greedy fallback was used).
    fn plan(
        &mut self,
        state: &SystemState,
        queues: &QueueState,
    ) -> (Decision, Option<(usize, usize, SolveStats)>) {
        let now = state.slot() as usize;
        let n = self.config.num_data_centers();
        let j_count = self.config.num_job_classes();
        let k_count = self.config.num_server_classes();
        let hh = self.horizon;

        // Variable layout: x, then b, then B.
        let x_var = |tau: usize, i: usize, j: usize| (tau * n + i) * j_count + j;
        let b_base = hh * n * j_count;
        let b_var = |tau: usize, i: usize, k: usize| b_base + (tau * n + i) * k_count + k;
        let q_base = b_base + hh * n * k_count;
        let q_var = |tau: usize, j: usize| q_base + tau * j_count + j;
        let total_vars = q_base + hh * j_count;

        let mut lp = LpProblem::minimize(total_vars);

        for tau in 0..hh {
            let t_abs = now + tau;
            for i in 0..n {
                // Energy objective and availability bounds for b.
                let price = if tau == 0 {
                    state.data_center(i).price()
                } else {
                    self.price_hat(t_abs, i)
                };
                for (k, class) in self.config.server_classes().iter().enumerate() {
                    lp.set_objective(b_var(tau, i, k), price * class.active_power());
                    let avail = if tau == 0 {
                        state.data_center(i).available(k)
                    } else {
                        self.availability_hat(t_abs, i, k)
                    };
                    lp.set_upper_bound(b_var(tau, i, k), avail);
                }
                // Per-pair service bounds (0 for ineligible pairs).
                for (j, job) in self.config.job_classes().iter().enumerate() {
                    let ub = if job.is_eligible(grefar_types::DataCenterId::new(i)) {
                        job.max_process()
                    } else {
                        0.0
                    };
                    lp.set_upper_bound(x_var(tau, i, j), ub);
                }
                // Capacity: Σ_j d_j x ≤ Σ_k s_k b.
                let mut coeffs = Vec::with_capacity(j_count + k_count);
                for (j, job) in self.config.job_classes().iter().enumerate() {
                    coeffs.push((x_var(tau, i, j), job.work()));
                }
                for (k, class) in self.config.server_classes().iter().enumerate() {
                    coeffs.push((b_var(tau, i, k), -class.speed()));
                }
                lp.add_constraint(&coeffs, Relation::Le, 0.0);
            }
            // Backlog dynamics, holding cost and terminal backlog value.
            for (j, job) in self.config.job_classes().iter().enumerate() {
                let mut weight = self.holding_weight * job.work();
                if tau == hh - 1 {
                    // Unserved work at the horizon end will be served later
                    // at (approximately) today's average price per work.
                    let avg_cost_per_work: f64 = (0..n)
                        .map(|i| {
                            let dc = state.data_center(i);
                            dc.price()
                                * self
                                    .config
                                    .server_classes()
                                    .iter()
                                    .map(|c| c.power_per_work())
                                    .fold(f64::INFINITY, f64::min)
                        })
                        .sum::<f64>()
                        / n as f64;
                    weight += avg_cost_per_work * job.work();
                }
                lp.set_objective(q_var(tau, j), weight);
                let mut coeffs = vec![(q_var(tau, j), 1.0)];
                for i in 0..n {
                    coeffs.push((x_var(tau, i, j), 1.0));
                }
                let rhs = if tau == 0 {
                    // Current total backlog of the type (central + local).
                    let mut backlog = queues.central(j);
                    for i in 0..n {
                        backlog += queues.local(i, j);
                    }
                    backlog
                } else {
                    coeffs.push((q_var(tau - 1, j), -1.0));
                    self.arrivals_hat(now + tau - 1, j)
                };
                lp.add_constraint(&coeffs, Relation::Eq, rhs);
            }
        }

        let num_rows = lp.num_constraints();
        let Ok(solution) = lp.solve() else {
            // Defensive fallback (the LP is always feasible: serve nothing).
            let decision = SlotInstance::new(&self.config, state, queues, 0.0)
                .solve_greedy()
                .decision;
            return (decision, None);
        };
        let x = solution.x();

        // Apply the first slot of the plan: route the planned service and
        // serve it against the *current* local queues (the standard
        // receding-horizon mapping onto the two-tier dynamics (12)–(13)).
        let mut decision = self.config.decision_zeros();
        let mut work_by_dc = vec![0.0; n];
        for (j, job) in self.config.job_classes().iter().enumerate() {
            let mut central_left = queues.central(j).floor();
            for i in 0..n {
                let planned = x[x_var(0, i, j)];
                if planned <= 0.0 {
                    continue;
                }
                // Serve what is already local (up to the plan)...
                let serve = planned.min(queues.local(i, j));
                decision.processed[(i, j)] = serve;
                work_by_dc[i] += serve * job.work();
                // ...and route replacement jobs toward the planned site.
                let route = planned
                    .ceil()
                    .min(job.max_route())
                    .min(central_left)
                    .floor();
                if route > 0.0 {
                    decision.routed[(i, j)] = route;
                    central_left -= route;
                }
            }
        }
        // Minimum-power dispatch for the served work.
        let busy = SlotInstance::new(&self.config, state, queues, 0.0).min_power_busy(&work_by_dc);
        decision.busy = busy;
        (decision, Some((total_vars, num_rows, solution.stats())))
    }
}

impl Scheduler for MpcScheduler {
    fn name(&self) -> String {
        format!(
            "MPC(H={}, w={}{})",
            self.horizon,
            self.holding_weight,
            if self.price_noise > 0.0 {
                format!(", noise={}", self.price_noise)
            } else {
                String::new()
            }
        )
    }

    fn decide(&mut self, state: &SystemState, queues: &QueueState) -> Decision {
        self.plan(state, queues).0
    }

    fn decide_observed(
        &mut self,
        state: &SystemState,
        queues: &QueueState,
        obs: &mut dyn Observer,
    ) -> Decision {
        if !obs.enabled() && !obs.profiling() {
            return self.decide(state, queues);
        }
        let profiling = obs.profiling();
        if profiling {
            obs.span_enter("lp.solve");
        }
        let timer = Timer::start();
        let (decision, lp_info) = self.plan(state, queues);
        let elapsed = timer.elapsed();
        if let Some((vars, rows, stats)) = lp_info {
            if profiling {
                obs.span_leaf(
                    "simplex.pivot",
                    (stats.pivots_phase1 + stats.pivots_phase2) as u64,
                );
            }
            if obs.enabled() {
                obs.record_event(
                    Event::new("lp.solve")
                        .field("t", state.slot())
                        .field("vars", vars)
                        .field("rows", rows)
                        .field("pivots_phase1", stats.pivots_phase1)
                        .field("pivots_phase2", stats.pivots_phase2)
                        .field("degenerate_pivots", stats.degenerate_pivots)
                        .field("bound_flips", stats.bound_flips)
                        .field("wall_us", stats.wall_us),
                );
                obs.record_value(
                    "lp.pivots",
                    (stats.pivots_phase1 + stats.pivots_phase2) as f64,
                );
                obs.record_duration("lp.solve.wall_us", elapsed);
            }
        } else if obs.enabled() {
            obs.add_counter("lp.fallbacks", 1);
        }
        if profiling {
            obs.span_exit("lp.solve");
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::SimulationInputs;
    use crate::simulation::Simulation;
    use grefar_cluster::{AvailabilityProcess, FullAvailability};
    use grefar_trace::{ConstantWorkload, PriceProcess, ReplayPrice};
    use grefar_types::{DataCenterId, JobClass, ServerClass};

    fn config() -> SystemConfig {
        SystemConfig::builder()
            .server_class(ServerClass::new(1.0, 1.0))
            .data_center("solo", vec![20.0])
            .account("x", 1.0)
            .job_class(
                JobClass::new(1.0, vec![DataCenterId::new(0)], 0)
                    .with_max_arrivals(4.0)
                    .with_max_route(20.0)
                    .with_max_process(20.0),
            )
            .build()
            .unwrap()
    }

    fn sawtooth_inputs(cfg: &SystemConfig, hours: usize) -> SimulationInputs {
        // Price alternates 0.9, 0.9, 0.1 — an oracle planner should push
        // work into every third slot.
        let rates: Vec<f64> = (0..hours)
            .map(|t| if t % 3 == 2 { 0.1 } else { 0.9 })
            .collect();
        let mut prices: Vec<Box<dyn PriceProcess + Send>> = vec![Box::new(ReplayPrice::new(rates))];
        let mut avail: Vec<Box<dyn AvailabilityProcess + Send>> = vec![Box::new(FullAvailability)];
        let mut workload = ConstantWorkload::new(vec![4.0]);
        SimulationInputs::generate(cfg, hours, 1, &mut prices, &mut avail, &mut workload)
    }

    #[test]
    fn oracle_mpc_concentrates_work_in_cheap_slots() {
        let cfg = config();
        let inputs = sawtooth_inputs(&cfg, 90);
        let mpc = MpcScheduler::new(&cfg, inputs.clone(), 6, 0.05);
        let report = Simulation::new(cfg.clone(), inputs, Box::new(mpc)).run();
        let work = report.work_per_dc[0].instant();
        let cheap: f64 = work.iter().skip(2).step_by(3).sum();
        let total: f64 = work.iter().sum();
        assert!(
            cheap / total > 0.7,
            "oracle MPC should serve mostly in cheap slots: {:.2}",
            cheap / total
        );
        // Long-run throughput keeps up with arrivals.
        assert!(total >= 4.0 * 80.0, "served only {total}");
    }

    #[test]
    fn high_holding_weight_serves_immediately() {
        let cfg = config();
        let inputs = sawtooth_inputs(&cfg, 60);
        let mpc = MpcScheduler::new(&cfg, inputs.clone(), 6, 100.0);
        let report = Simulation::new(cfg.clone(), inputs, Box::new(mpc)).run();
        // With an enormous holding cost MPC behaves like Always: delay ≈ 1.
        assert!(
            report.average_dc_delay(0) < 1.6,
            "delay {}",
            report.average_dc_delay(0)
        );
    }

    #[test]
    fn noisy_forecast_does_not_beat_oracle_materially() {
        // The slot-0 price is always observed (never forecast), so mild
        // noise is partially self-correcting; per-seed the noisy run can
        // even tie the oracle. The robust claim: it cannot be *better* by a
        // material margin, and it still clears the workload.
        let cfg = config();
        let inputs = sawtooth_inputs(&cfg, 120);
        let oracle = MpcScheduler::new(&cfg, inputs.clone(), 6, 0.05);
        let noisy = MpcScheduler::new(&cfg, inputs.clone(), 6, 0.05).with_price_noise(1.5);
        let r_oracle = Simulation::new(cfg.clone(), inputs.clone(), Box::new(oracle)).run();
        let r_noisy = Simulation::new(cfg.clone(), inputs, Box::new(noisy)).run();
        assert!(
            r_noisy.average_energy_cost() >= r_oracle.average_energy_cost() * 0.95,
            "noise should not materially beat the oracle: oracle {} vs noisy {}",
            r_oracle.average_energy_cost(),
            r_noisy.average_energy_cost()
        );
        assert!(r_noisy.completions.completed_total >= 4 * 100);
    }

    #[test]
    fn name_reflects_configuration() {
        let cfg = config();
        let inputs = sawtooth_inputs(&cfg, 6);
        let mpc = MpcScheduler::new(&cfg, inputs, 8, 0.2).with_price_noise(0.3);
        assert_eq!(mpc.name(), "MPC(H=8, w=0.2, noise=0.3)");
    }
}
