//! Discrete-time simulator and experiment runner for the GreFar scheduler.
//!
//! Reproduces the evaluation methodology of §VI of the paper: "We build a
//! time-based simulator and drive the simulation using a real-world trace".
//! The pieces:
//!
//! * [`SimulationInputs`] — a frozen realization of prices, availability and
//!   arrivals, so that every scheduler under comparison sees *identical*
//!   randomness (required for the GreFar-vs-Always comparison of Fig. 4),
//! * [`PaperScenario`] — the §VI-A setup: three data centers with Table I's
//!   normalized speeds/powers, four organizations with fairness weights
//!   40/30/15/15, diurnal prices calibrated to Table I averages, and a
//!   Cosmos-like workload,
//! * [`JobTracker`] — job-level FIFO tracking yielding *true per-job
//!   delays* (not just queue-length proxies),
//! * [`Simulation`] — the slot loop: observe → decide → meter energy and
//!   fairness → serve jobs → update queues (12)–(13),
//! * [`SimulationReport`] — running averages exactly as in the paper's
//!   footnote 8, plus per-DC delay and work series,
//! * [`sweep`] — run many scheduler configurations against the same inputs
//!   in parallel (used by the V-sweep of Fig. 2).
//!
//! # Example
//!
//! ```
//! use grefar_core::{GreFar, GreFarParams};
//! use grefar_sim::{PaperScenario, Simulation};
//!
//! let scenario = PaperScenario::default().with_seed(7);
//! let config = scenario.config().clone();
//! let inputs = scenario.into_inputs(72); // three days
//! let grefar = GreFar::new(&config, GreFarParams::new(7.5, 0.0)).unwrap();
//! let report = Simulation::new(config, inputs, Box::new(grefar)).run();
//! assert!(report.average_energy_cost() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod error;
mod inputs;
mod mpc;
mod report;
mod scenario;
mod simulation;
pub mod stats;
pub mod sweep;
pub mod theory_obs;
mod tracker;

pub use checkpoint::{
    Checkpoint, CheckpointRecovery, LedgerSnapshot, SeriesSnapshot, CHECKPOINT_SCHEMA,
};
pub use error::SimError;
pub use inputs::SimulationInputs;
pub use mpc::MpcScheduler;
pub use report::{RunningSeries, SimulationReport};
pub use scenario::PaperScenario;
pub use simulation::{RunPolicy, Simulation, SteppedRun};
pub use tracker::{CompletionStats, JobTracker, TrackerSnapshot};
