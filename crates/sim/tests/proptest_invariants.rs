//! Property-based end-to-end invariants: random small systems, random
//! scheduler parameters, random traces — the conservation laws must hold.

use grefar_cluster::{AvailabilityProcess, UniformAvailability};
use grefar_core::QueueState;
use grefar_core::{Always, GreFar, GreFarParams, LocalOnly, PriceGreedy, Scheduler};
use grefar_sim::{JobTracker, Simulation, SimulationInputs};
use grefar_trace::{CosmosLikeWorkload, DiurnalPriceModel, JobArrivalSpec, PriceProcess};
use grefar_types::{DataCenterId, JobClass, ServerClass, SystemConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_system(seed: u64) -> (SystemConfig, SimulationInputs) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..=3usize);
    let j = rng.gen_range(1..=3usize);
    let m = rng.gen_range(1..=2usize);

    let mut builder = SystemConfig::builder();
    builder = builder.server_class(ServerClass::new(
        rng.gen_range(0.5..1.5),
        rng.gen_range(0.3..1.5),
    ));
    for i in 0..n {
        builder = builder.data_center(format!("dc{i}"), vec![rng.gen_range(10.0f64..40.0).floor()]);
    }
    for acct in 0..m {
        builder = builder.account(format!("m{acct}"), 1.0 / m as f64);
    }
    let mut specs = Vec::new();
    for jj in 0..j {
        let mut eligible: Vec<DataCenterId> = (0..n)
            .filter(|_| rng.gen_bool(0.6))
            .map(DataCenterId::new)
            .collect();
        if eligible.is_empty() {
            eligible.push(DataCenterId::new(rng.gen_range(0..n)));
        }
        let base: f64 = rng.gen_range(0.5..3.0);
        let a_max = (2.0 * base + 2.0).ceil();
        builder = builder.job_class(
            JobClass::new(rng.gen_range(0.5..2.0), eligible, jj % m)
                .with_max_arrivals(a_max)
                .with_max_route(a_max)
                .with_max_process(2.0 * a_max),
        );
        specs.push(
            JobArrivalSpec::diurnal(base, rng.gen_range(0.0..0.8), 14.0, a_max)
                .with_bursts(0.1, base),
        );
    }
    let config = builder.build().expect("random config valid");

    let mut prices: Vec<Box<dyn PriceProcess + Send>> = (0..n)
        .map(|i| {
            Box::new(
                DiurnalPriceModel::new(
                    rng.gen_range(0.2..0.7),
                    rng.gen_range(0.0..0.1),
                    24.0,
                    i as f64 * 5.0,
                )
                .with_noise(0.5, 0.02),
            ) as Box<dyn PriceProcess + Send>
        })
        .collect();
    let mut availability: Vec<Box<dyn AvailabilityProcess + Send>> = (0..n)
        .map(|_| {
            Box::new(UniformAvailability::new(0.8, 1.0)) as Box<dyn AvailabilityProcess + Send>
        })
        .collect();
    let mut workload = CosmosLikeWorkload::new(specs, 24.0);
    let inputs = SimulationInputs::generate(
        &config,
        60,
        seed ^ 0xabcd,
        &mut prices,
        &mut availability,
        &mut workload,
    );
    (config, inputs)
}

fn scheduler_for(config: &SystemConfig, choice: u8, v: f64, beta: f64) -> Box<dyn Scheduler> {
    match choice % 4 {
        0 => Box::new(Always::new(config)),
        1 => Box::new(LocalOnly::new(config)),
        2 => Box::new(PriceGreedy::new(config)),
        _ => Box::new(GreFar::new(config, GreFarParams::new(v, beta)).expect("valid")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Conservation: arrived = completed + central backlog + local backlog
    /// (the fractional remainder of partially-served jobs included), for
    /// every scheduler on every random system.
    #[test]
    fn job_conservation(seed in any::<u64>(), choice in any::<u8>(),
                        v in 0.0f64..30.0, beta in 0.0f64..50.0) {
        let (config, inputs) = random_system(seed);
        let mut scheduler = scheduler_for(&config, choice, v, beta);

        // Re-run the slot loop manually so we can inspect mid-run state.
        let mut queues = QueueState::new(&config);
        let mut tracker = JobTracker::new(&config);
        let mut arrived = 0.0f64;
        for t in 0..inputs.horizon() {
            let decision = scheduler.decide(inputs.state(t), &queues);
            prop_assert!(decision.is_nonnegative() && decision.is_finite());
            tracker.step(t as u64, &decision);
            tracker.arrive(t as u64, inputs.arrivals(t));
            queues.apply(&decision, inputs.arrivals(t));
            arrived += inputs.arrivals(t).iter().sum::<f64>();

            // Tracker and (12)-(13) queues agree at every slot.
            for j in 0..config.num_job_classes() {
                prop_assert!(
                    (queues.central(j) - tracker.central_backlog(j)).abs() < 1e-6,
                    "slot {t}: central {j} diverged"
                );
                for i in 0..config.num_data_centers() {
                    prop_assert!(
                        (queues.local(i, j) - tracker.local_backlog(i, j)).abs() < 1e-6,
                        "slot {t}: local ({i},{j}) diverged"
                    );
                }
            }
        }
        let stats = tracker.stats();
        // Count conservation uses whole-job counts: a partially-served job
        // is still one job until it completes (its queue *mass* is
        // fractional, which is what q_{i,j} tracks).
        let in_system: f64 = (0..config.num_job_classes())
            .map(|j| {
                tracker.central_backlog(j)
                    + (0..config.num_data_centers())
                        .map(|i| tracker.local_job_count(i, j) as f64)
                        .sum::<f64>()
            })
            .sum();
        prop_assert!(
            (arrived - (stats.completed_total as f64 + in_system)).abs() < 1e-6,
            "conservation violated: arrived {arrived}, completed {}, in system {in_system}",
            stats.completed_total
        );
    }

    /// The full Simulation wrapper agrees with itself and produces sane
    /// metrics for arbitrary schedulers and systems.
    #[test]
    fn simulation_metrics_are_sane(seed in any::<u64>(), choice in any::<u8>(),
                                   v in 0.0f64..30.0) {
        let (config, inputs) = random_system(seed);
        let scheduler = scheduler_for(&config, choice, v, 0.0);
        let report = Simulation::new(config.clone(), inputs, scheduler).run();
        prop_assert!(report.average_energy_cost() >= 0.0);
        prop_assert!(report.average_energy_cost().is_finite());
        prop_assert!(report.average_fairness() <= 1e-12);
        prop_assert!(report.max_queue_length().is_finite());
        for i in 0..config.num_data_centers() {
            prop_assert!(report.average_dc_delay(i) >= 0.0);
            let q = report.dc_delay_quantiles[i];
            prop_assert!(q.p50 <= q.p95 + 1e-12 && q.p95 <= q.max + 1e-12);
            if report.completions.completed_per_dc[i] > 0 {
                prop_assert!(report.average_dc_delay(i) >= 1.0 - 1e-12,
                    "a completed job needs at least one service slot");
            }
        }
        let shares: f64 = (0..config.num_accounts())
            .map(|m| report.average_account_share(m))
            .sum();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&shares), "shares sum {shares}");
    }

    /// Arrivals honor the eq. (1) bound for every generated workload.
    #[test]
    fn arrivals_respect_amax(seed in any::<u64>()) {
        let (config, inputs) = random_system(seed);
        for t in 0..inputs.horizon() {
            for (j, job) in config.job_classes().iter().enumerate() {
                prop_assert!(inputs.arrivals(t)[j] <= job.max_arrivals() + 1e-9);
            }
        }
    }
}
