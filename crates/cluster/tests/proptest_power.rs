//! Property tests for the energy model: the supply curve must be convex,
//! monotone, exact under dispatch, and never beat brute-force assignments.

use grefar_cluster::{energy_cost, PowerCurve};
use grefar_types::{DataCenterState, ServerClass, Tariff};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = ServerClass> {
    (0.25f64..3.0, 0.05f64..3.0).prop_map(|(s, p)| ServerClass::new(s, p))
}

fn fleet_strategy() -> impl Strategy<Value = (Vec<ServerClass>, Vec<f64>)> {
    proptest::collection::vec((class_strategy(), 0.0f64..20.0), 1..=5).prop_map(|pairs| {
        let (classes, counts): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let counts = counts.into_iter().map(f64::floor).collect();
        (classes, counts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// power_for_work is 0 at 0, non-decreasing and convex on [0, capacity].
    #[test]
    fn supply_curve_is_monotone_and_convex((classes, counts) in fleet_strategy()) {
        let curve = PowerCurve::build(&counts, &classes);
        let cap = curve.total_capacity();
        prop_assume!(cap > 0.0);
        prop_assert_eq!(curve.power_for_work(0.0), 0.0);
        let samples: Vec<f64> = (0..=32)
            .map(|i| curve.power_for_work(cap * i as f64 / 32.0))
            .collect();
        for w in samples.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "monotonicity violated");
        }
        for w in samples.windows(3) {
            prop_assert!(w[2] - 2.0 * w[1] + w[0] >= -1e-9, "convexity violated");
        }
    }

    /// dispatch() serves exactly the requested work at exactly
    /// power_for_work() power, within availability.
    #[test]
    fn dispatch_is_exact((classes, counts) in fleet_strategy(), frac in 0.0f64..1.0) {
        let curve = PowerCurve::build(&counts, &classes);
        let cap = curve.total_capacity();
        prop_assume!(cap > 0.0);
        let work = cap * frac;
        let busy = curve.dispatch(work, &classes);
        let served: f64 = busy.iter().zip(&classes).map(|(b, c)| b * c.speed()).sum();
        let power: f64 = busy.iter().zip(&classes).map(|(b, c)| b * c.active_power()).sum();
        prop_assert!((served - work).abs() < 1e-9 * (1.0 + work));
        prop_assert!((power - curve.power_for_work(work)).abs() < 1e-9 * (1.0 + power));
        for (b, &n) in busy.iter().zip(&counts) {
            prop_assert!(*b >= 0.0 && *b <= n + 1e-9);
        }
    }

    /// The greedy supply curve is optimal: no random feasible assignment of
    /// the same work uses less power.
    #[test]
    fn dispatch_beats_random_assignments(
        (classes, counts) in fleet_strategy(),
        frac in 0.0f64..1.0,
        weights in proptest::collection::vec(0.01f64..1.0, 5),
    ) {
        let curve = PowerCurve::build(&counts, &classes);
        let cap = curve.total_capacity();
        prop_assume!(cap > 0.0);
        let work = cap * frac;

        // A random feasible assignment: distribute `work` by the random
        // weights, clamping at per-class capacity and spilling leftovers.
        let k = classes.len();
        let mut assigned = vec![0.0; k];
        let wsum: f64 = weights[..k].iter().sum();
        let mut leftover = work;
        for i in 0..k {
            let want = work * weights[i] / wsum;
            let capacity_i = counts[i] * classes[i].speed();
            assigned[i] = want.min(capacity_i);
            leftover -= assigned[i];
        }
        // Spill remaining into any spare capacity.
        for i in 0..k {
            if leftover <= 0.0 {
                break;
            }
            let spare = counts[i] * classes[i].speed() - assigned[i];
            let add = leftover.min(spare);
            assigned[i] += add;
            leftover -= add;
        }
        prop_assume!(leftover <= 1e-9);
        let random_power: f64 = assigned
            .iter()
            .zip(&classes)
            .map(|(w, c)| w / c.speed() * c.active_power())
            .sum();
        prop_assert!(
            curve.power_for_work(work) <= random_power + 1e-9,
            "greedy {} beat by random {}",
            curve.power_for_work(work),
            random_power
        );
    }

    /// Energy cost under a flat tariff equals eq. (2) exactly.
    #[test]
    fn flat_energy_cost_matches_eq2(
        (classes, counts) in fleet_strategy(),
        price in 0.0f64..2.0,
        frac in 0.0f64..1.0,
    ) {
        let curve = PowerCurve::build(&counts, &classes);
        let cap = curve.total_capacity();
        prop_assume!(cap > 0.0);
        let busy = curve.dispatch(cap * frac, &classes);
        let state = DataCenterState::new(counts.clone(), Tariff::flat(price));
        let expected: f64 = price
            * busy
                .iter()
                .zip(&classes)
                .map(|(b, c)| b * c.active_power())
                .sum::<f64>();
        prop_assert!((energy_cost(&state, &busy, &classes) - expected).abs() < 1e-9);
    }
}
