//! Data-center cluster substrate for the GreFar scheduler.
//!
//! Models the physical side of §III-A of the paper:
//!
//! * [`availability`] — the time-varying server-availability processes
//!   `n_{i,k}(t)` ("server failures, software upgrades, influence of other
//!   workloads"): full, uniform-random, Markov birth–death, diurnal
//!   interactive-load, and a scheduled-outage wrapper for failure injection.
//! * [`power`] — the energy model of eq. (2): the piecewise-linear convex
//!   *supply curve* mapping work to the minimum power that serves it (filling
//!   the most energy-efficient servers first), min-power dispatch back to
//!   per-class busy counts `b_{i,k}`, and the per-slot energy cost
//!   `e_i(t) = φ_i(t) · Σ_k b_{i,k}(t) p_k` generalized to convex tariffs.
//!
//! # Example
//!
//! ```
//! use grefar_cluster::power::PowerCurve;
//! use grefar_types::ServerClass;
//!
//! // 10 slow-but-efficient servers and 10 fast-but-hungry ones.
//! let classes = [ServerClass::new(0.75, 0.6), ServerClass::new(1.15, 1.2)];
//! let curve = PowerCurve::build(&[10.0, 10.0], &classes);
//!
//! // Serving 5 units of work uses only the efficient class...
//! assert!((curve.power_for_work(5.0) - 5.0 * 0.8).abs() < 1e-12);
//! // ...and the dispatch says how many of each server to keep busy.
//! let busy = curve.dispatch(5.0, &classes);
//! assert!((busy[0] - 5.0 / 0.75).abs() < 1e-12);
//! assert_eq!(busy[1], 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod power;

pub use availability::{
    AvailabilityProcess, DiurnalAvailability, FullAvailability, MarkovAvailability, OutageSchedule,
    UniformAvailability,
};
pub use power::{energy_cost, PowerCurve, PowerSegment};
