//! The energy model of eq. (2) and minimum-power dispatch.
//!
//! Given the available servers of a data center, the cheapest way (in power)
//! to serve `w` units of work is to fill server classes in increasing order
//! of power-per-work `p_k / s_k`. The resulting work → power mapping is an
//! increasing, piecewise-linear, convex *supply curve*; its breakpoints are
//! exactly what both the GreFar greedy slot solver and the Frank–Wolfe LMO
//! consume.

use grefar_types::{DataCenterState, ServerClass};

/// One linear piece of a [`PowerCurve`]: up to `work_capacity` units of work
/// served at `power_per_work` additional power per unit, by servers of class
/// `class_index`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Index `k` of the server class providing this segment.
    pub class_index: usize,
    /// Work this segment can absorb: `n_k · s_k`.
    pub work_capacity: f64,
    /// Differential power per unit of work: `p_k / s_k`.
    pub power_per_work: f64,
}

/// The minimum-power supply curve of one data center for one slot:
/// a sorted sequence of [`PowerSegment`]s (most efficient first).
///
/// # Example
/// ```
/// use grefar_cluster::PowerCurve;
/// use grefar_types::ServerClass;
///
/// let classes = [ServerClass::new(1.0, 1.0)];
/// let curve = PowerCurve::build(&[4.0], &classes);
/// assert_eq!(curve.total_capacity(), 4.0);
/// assert_eq!(curve.power_for_work(3.0), 3.0);
/// assert_eq!(curve.marginal_power_per_work(0.0), Some(1.0));
/// assert_eq!(curve.marginal_power_per_work(5.0), None); // beyond capacity
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCurve {
    segments: Vec<PowerSegment>,
    num_classes: usize,
}

impl PowerCurve {
    /// Builds the supply curve from per-class availability `n_{i,·}(t)` and
    /// the server classes. Classes with zero availability are skipped.
    ///
    /// # Panics
    /// Panics if `available.len() != classes.len()` or any availability is
    /// negative.
    pub fn build(available: &[f64], classes: &[ServerClass]) -> Self {
        assert_eq!(
            available.len(),
            classes.len(),
            "availability/class length mismatch"
        );
        let mut segments: Vec<PowerSegment> = available
            .iter()
            .zip(classes)
            .enumerate()
            .filter(|(_, (&n, _))| {
                assert!(n >= 0.0, "availability must be non-negative");
                n > 0.0
            })
            .map(|(k, (&n, class))| PowerSegment {
                class_index: k,
                work_capacity: n * class.speed(),
                power_per_work: class.power_per_work(),
            })
            .collect();
        segments.sort_by(|a, b| {
            a.power_per_work
                .partial_cmp(&b.power_per_work)
                .expect("power_per_work is finite")
        });
        Self {
            segments,
            num_classes: classes.len(),
        }
    }

    /// The sorted supply segments (most power-efficient first).
    #[inline]
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Maximum work this data center can serve in the slot:
    /// `Σ_k n_{i,k}(t) s_k` (right-hand side of constraint (11)).
    pub fn total_capacity(&self) -> f64 {
        self.segments.iter().map(|s| s.work_capacity).sum()
    }

    /// Minimum power needed to serve `work` units. Increasing, convex and
    /// piecewise linear in `work`. Work beyond capacity is billed at the
    /// least-efficient rate (callers should not exceed
    /// [`total_capacity`](Self::total_capacity); the scheduler never does).
    ///
    /// # Panics
    /// Panics if `work` is negative or non-finite, or if the curve is empty
    /// while `work > 0`.
    pub fn power_for_work(&self, work: f64) -> f64 {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be non-negative and finite, got {work}"
        );
        if grefar_types::approx_zero(work, 0.0) {
            return 0.0;
        }
        assert!(
            !self.segments.is_empty(),
            "no servers available to serve positive work"
        );
        let mut remaining = work;
        let mut power = 0.0;
        for seg in &self.segments {
            let served = remaining.min(seg.work_capacity);
            power += served * seg.power_per_work;
            remaining -= served;
            if remaining <= 0.0 {
                return power;
            }
        }
        power + remaining * self.segments[self.segments.len() - 1].power_per_work
    }

    /// Marginal power of the next unit of work at load `work`, or `None`
    /// if the data center is already at capacity.
    ///
    /// # Panics
    /// Panics if `work` is negative or non-finite.
    pub fn marginal_power_per_work(&self, work: f64) -> Option<f64> {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be non-negative and finite, got {work}"
        );
        let mut level = work;
        for seg in &self.segments {
            if level < seg.work_capacity {
                return Some(seg.power_per_work);
            }
            level -= seg.work_capacity;
        }
        None
    }

    /// Minimum-power split of `work` across server classes: entry `k` is
    /// the *work* assigned to class `k` (not the server count — see
    /// [`dispatch`](Self::dispatch) for that). Length `K`.
    ///
    /// # Panics
    /// Panics if `work` is negative/non-finite or exceeds
    /// [`total_capacity`](Self::total_capacity) by more than a tolerance.
    pub fn work_split(&self, work: f64) -> Vec<f64> {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be non-negative and finite, got {work}"
        );
        let cap = self.total_capacity();
        assert!(
            work <= cap * (1.0 + 1e-9) + 1e-12,
            "work {work} exceeds capacity {cap}"
        );
        let mut busy = vec![0.0; self.num_classes];
        let mut remaining = work.min(cap);
        for seg in &self.segments {
            if remaining <= 0.0 {
                break;
            }
            let served = remaining.min(seg.work_capacity);
            busy[seg.class_index] += served;
            remaining -= served;
        }
        busy
    }

    /// Minimum-power dispatch: the per-class busy *server counts* `b_{i,·}`
    /// that serve `work` units at [`power_for_work`](Self::power_for_work)
    /// power, i.e. [`work_split`](Self::work_split) divided by class speeds.
    ///
    /// # Panics
    /// As [`work_split`](Self::work_split); additionally if
    /// `classes.len()` mismatches the curve.
    pub fn dispatch(&self, work: f64, classes: &[ServerClass]) -> Vec<f64> {
        assert_eq!(classes.len(), self.num_classes, "class count mismatch");
        let mut by_work = self.work_split(work);
        for (b, class) in by_work.iter_mut().zip(classes) {
            *b /= class.speed();
        }
        by_work
    }
}

/// The per-slot energy cost of data center `i` (eq. (2)), generalized to
/// convex tariffs: `e_i(t) = tariff.cost( Σ_k b_{i,k}(t) · p_k )`.
///
/// For the paper's flat tariffs this is exactly
/// `φ_i(t) · Σ_k b_{i,k}(t) p_k`.
///
/// # Panics
/// Panics if `busy.len() != classes.len()` or availability is exceeded
/// beyond a small tolerance.
///
/// # Example
/// ```
/// use grefar_cluster::energy_cost;
/// use grefar_types::{DataCenterState, ServerClass, Tariff};
///
/// let state = DataCenterState::new(vec![10.0], Tariff::flat(0.4));
/// let classes = [ServerClass::new(1.0, 1.0)];
/// assert!((energy_cost(&state, &[5.0], &classes) - 2.0).abs() < 1e-12);
/// ```
pub fn energy_cost(state: &DataCenterState, busy: &[f64], classes: &[ServerClass]) -> f64 {
    assert_eq!(busy.len(), classes.len(), "busy/class length mismatch");
    let mut power = 0.0;
    for (k, (&b, class)) in busy.iter().zip(classes).enumerate() {
        assert!(
            b >= 0.0 && b <= state.available(k) * (1.0 + 1e-9) + 1e-9,
            "busy count {b} for class {k} violates availability {}",
            state.available(k)
        );
        power += b * class.active_power();
    }
    state.tariff().cost(power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grefar_types::Tariff;

    fn classes() -> Vec<ServerClass> {
        // Efficiencies: 1.0, 0.8, ~1.043 → order is k=1, k=0, k=2.
        vec![
            ServerClass::new(1.00, 1.00),
            ServerClass::new(0.75, 0.60),
            ServerClass::new(1.15, 1.20),
        ]
    }

    #[test]
    fn curve_sorted_by_efficiency() {
        let curve = PowerCurve::build(&[10.0, 10.0, 10.0], &classes());
        let orders: Vec<usize> = curve.segments().iter().map(|s| s.class_index).collect();
        assert_eq!(orders, vec![1, 0, 2]);
        assert!((curve.total_capacity() - (10.0 + 7.5 + 11.5)).abs() < 1e-12);
    }

    #[test]
    fn power_fills_cheapest_first() {
        let curve = PowerCurve::build(&[10.0, 10.0, 10.0], &classes());
        // 7.5 units fit entirely on class 1 (capacity 7.5 at 0.8/unit).
        assert!((curve.power_for_work(7.5) - 6.0).abs() < 1e-12);
        // 10 more units go to class 0 (1.0/unit).
        assert!((curve.power_for_work(17.5) - (6.0 + 10.0)).abs() < 1e-12);
        // Remaining to class 2.
        let all = curve.total_capacity();
        let expected = 6.0 + 10.0 + 11.5 * (1.2 / 1.15);
        assert!((curve.power_for_work(all) - expected).abs() < 1e-9);
    }

    #[test]
    fn power_curve_is_convex() {
        let curve = PowerCurve::build(&[3.0, 5.0, 2.0], &classes());
        let cap = curve.total_capacity();
        let vals: Vec<f64> = (0..=40)
            .map(|i| curve.power_for_work(cap * i as f64 / 40.0))
            .collect();
        for w in vals.windows(3) {
            assert!(w[2] - 2.0 * w[1] + w[0] >= -1e-9);
        }
    }

    #[test]
    fn marginal_rates_step_up() {
        let curve = PowerCurve::build(&[10.0, 10.0, 10.0], &classes());
        let approx = |v: Option<f64>, want: f64| {
            assert!((v.unwrap() - want).abs() < 1e-12, "{v:?} vs {want}");
        };
        approx(curve.marginal_power_per_work(0.0), 0.8);
        approx(curve.marginal_power_per_work(7.5), 1.0);
        approx(curve.marginal_power_per_work(18.0), 1.2 / 1.15);
        assert_eq!(curve.marginal_power_per_work(1000.0), None);
    }

    #[test]
    fn dispatch_consistent_with_power() {
        let curve = PowerCurve::build(&[4.0, 4.0, 4.0], &classes());
        let cls = classes();
        for w in [0.0, 1.0, 3.0, 7.0, 10.0] {
            let busy = curve.dispatch(w, &cls);
            let total_work: f64 = busy.iter().zip(&cls).map(|(b, c)| b * c.speed()).sum();
            assert!(
                (total_work - w).abs() < 1e-9,
                "work {w}: served {total_work}"
            );
            let power: f64 = busy
                .iter()
                .zip(&cls)
                .map(|(b, c)| b * c.active_power())
                .sum();
            assert!((power - curve.power_for_work(w)).abs() < 1e-9);
            // Never exceed availability.
            for (k, b) in busy.iter().enumerate() {
                assert!(*b <= 4.0 + 1e-9, "class {k} overcommitted: {b}");
            }
        }
    }

    #[test]
    fn zero_availability_classes_are_skipped() {
        let curve = PowerCurve::build(&[0.0, 10.0, 0.0], &classes());
        assert_eq!(curve.segments().len(), 1);
        assert_eq!(curve.segments()[0].class_index, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn dispatch_rejects_overload() {
        let curve = PowerCurve::build(&[1.0], &[ServerClass::new(1.0, 1.0)]);
        let _ = curve.work_split(2.0);
    }

    #[test]
    fn energy_cost_flat_matches_eq2() {
        let state = DataCenterState::new(vec![10.0, 10.0, 10.0], Tariff::flat(0.5));
        let cls = classes();
        let busy = [2.0, 3.0, 1.0];
        let expected = 0.5 * (2.0 * 1.0 + 3.0 * 0.6 + 1.0 * 1.2);
        assert!((energy_cost(&state, &busy, &cls) - expected).abs() < 1e-12);
    }

    #[test]
    fn energy_cost_convex_tariff() {
        let tariff = Tariff::convex(vec![(1.0, 0.1), (f64::INFINITY, 1.0)]).unwrap();
        let state = DataCenterState::new(vec![10.0], tariff);
        let cls = [ServerClass::new(1.0, 1.0)];
        // 3 units of power: 1 at 0.1, 2 at 1.0.
        assert!((energy_cost(&state, &[3.0], &cls) - 2.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "violates availability")]
    fn energy_cost_rejects_overcommit() {
        let state = DataCenterState::new(vec![1.0], Tariff::flat(0.5));
        let _ = energy_cost(&state, &[2.0], &[ServerClass::new(1.0, 1.0)]);
    }
}
