//! Time-varying server-availability processes `n_{i,k}(t)` (§III-A.1).
//!
//! The paper lists several sources of availability variation: "server
//! failures, software upgrades, influence of other workloads". Each process
//! here models one of those, and — crucially for GreFar — none of them needs
//! to be stationary: the scheduler is provably agnostic to the distribution.

use grefar_types::Slot;
use rand::RngCore;

/// A stochastic process producing the available server counts
/// `n_{i,·}(t) ∈ [0, fleet]` of one data center, one slot at a time.
///
/// Processes may keep internal state (e.g. the Markov model), which is why
/// sampling takes `&mut self`. Randomness is injected so that whole
/// simulations are reproducible from a single seed.
pub trait AvailabilityProcess {
    /// Samples `n_{i,·}(slot)`, one entry per server class, each in
    /// `[0, fleet[k]]`.
    fn sample(&mut self, slot: Slot, fleet: &[f64], rng: &mut dyn RngCore) -> Vec<f64>;
}

/// Every owned server is always available — the overprovisioned steady
/// state, and the easiest way to satisfy the slackness conditions (20)–(22).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullAvailability;

impl AvailabilityProcess for FullAvailability {
    fn sample(&mut self, _slot: Slot, fleet: &[f64], _rng: &mut dyn RngCore) -> Vec<f64> {
        fleet.to_vec()
    }
}

/// Each slot, an independent uniformly-random fraction of each class is
/// available: `n_k(t) = round(fleet_k · U[min_fraction, max_fraction])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformAvailability {
    min_fraction: f64,
    max_fraction: f64,
}

impl UniformAvailability {
    /// Creates the process with availability fractions in
    /// `[min_fraction, max_fraction] ⊆ [0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ min_fraction ≤ max_fraction ≤ 1`.
    pub fn new(min_fraction: f64, max_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_fraction)
                && (0.0..=1.0).contains(&max_fraction)
                && min_fraction <= max_fraction,
            "fractions must satisfy 0 <= min <= max <= 1"
        );
        Self {
            min_fraction,
            max_fraction,
        }
    }
}

impl AvailabilityProcess for UniformAvailability {
    fn sample(&mut self, _slot: Slot, fleet: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        fleet
            .iter()
            .map(|&n| {
                let u = uniform(rng);
                let f = self.min_fraction + (self.max_fraction - self.min_fraction) * u;
                (n * f).round()
            })
            .collect()
    }
}

/// A per-server birth–death (failure/repair) Markov chain: each up server
/// fails with probability `fail` per slot, each down server is repaired
/// with probability `repair` per slot. Models §III-A.1's "server failures,
/// software upgrades".
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovAvailability {
    fail: f64,
    repair: f64,
    /// Current up counts per class; lazily initialized to the full fleet.
    up: Option<Vec<f64>>,
}

impl MarkovAvailability {
    /// Creates the chain with per-slot failure and repair probabilities.
    ///
    /// The stationary availability fraction is `repair / (fail + repair)`.
    ///
    /// # Panics
    /// Panics unless both probabilities are in `[0, 1]` and not both zero.
    pub fn new(fail: f64, repair: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail) && (0.0..=1.0).contains(&repair),
            "probabilities must lie in [0, 1]"
        );
        assert!(fail + repair > 0.0, "fail and repair cannot both be zero");
        Self {
            fail,
            repair,
            up: None,
        }
    }

    /// The long-run expected availability fraction
    /// `repair / (fail + repair)`.
    pub fn stationary_fraction(&self) -> f64 {
        self.repair / (self.fail + self.repair)
    }
}

impl AvailabilityProcess for MarkovAvailability {
    fn sample(&mut self, _slot: Slot, fleet: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        let up = self.up.get_or_insert_with(|| fleet.to_vec());
        // Fleets can change between calls in principle; clamp defensively.
        for (u, &n) in up.iter_mut().zip(fleet) {
            *u = u.min(n);
            let upc = u.round() as u64;
            let downc = (n - *u).max(0.0).round() as u64;
            let failures = binomial(upc, self.fail, rng) as f64;
            let repairs = binomial(downc, self.repair, rng) as f64;
            *u = (*u - failures + repairs).clamp(0.0, n);
        }
        up.clone()
    }
}

/// Diurnal interactive-load model: batch jobs only get the servers that
/// interactive traffic is not using, and interactive traffic peaks during
/// the day (§III-A.1: "the increase of interactive workloads may reduce the
/// number of servers available to process batch jobs").
///
/// `n_k(t) = round(fleet_k · (1 − load(t)) )` where
/// `load(t) = base + swing · ½(1 + sin(2π (t − phase) / period))` plus a
/// small uniform jitter, clamped into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalAvailability {
    base_load: f64,
    swing: f64,
    jitter: f64,
    period: f64,
    phase: f64,
}

impl DiurnalAvailability {
    /// Creates the model.
    ///
    /// * `base_load` — minimum interactive-load fraction,
    /// * `swing` — additional fraction consumed at the daily peak,
    /// * `jitter` — amplitude of uniform noise added to the load,
    /// * `period` — slots per day (24 for hourly slots),
    /// * `phase` — slot of the daily load *trough*.
    ///
    /// # Panics
    /// Panics if any fraction is outside `[0, 1]` or the period is not
    /// positive.
    pub fn new(base_load: f64, swing: f64, jitter: f64, period: f64, phase: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base_load)
                && (0.0..=1.0).contains(&swing)
                && (0.0..=1.0).contains(&jitter),
            "fractions must lie in [0, 1]"
        );
        assert!(period > 0.0, "period must be positive");
        Self {
            base_load,
            swing,
            jitter,
            period,
            phase,
        }
    }
}

impl AvailabilityProcess for DiurnalAvailability {
    fn sample(&mut self, slot: Slot, fleet: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        let angle = 2.0 * core::f64::consts::PI * (slot as f64 - self.phase) / self.period;
        let load = self.base_load + self.swing * 0.5 * (1.0 + angle.sin());
        fleet
            .iter()
            .map(|&n| {
                let noise = self.jitter * (2.0 * uniform(rng) - 1.0);
                (n * (1.0 - (load + noise).clamp(0.0, 1.0))).round()
            })
            .collect()
    }
}

/// Failure-injection wrapper: during any of the given `[start, end)` slot
/// windows the data center is fully down (`n ≡ 0`); otherwise the inner
/// process is sampled. Used by the failure-injection integration tests.
pub struct OutageSchedule {
    inner: Box<dyn AvailabilityProcess + Send>,
    windows: Vec<(Slot, Slot)>,
}

impl core::fmt::Debug for OutageSchedule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OutageSchedule")
            .field("windows", &self.windows)
            .finish_non_exhaustive()
    }
}

impl OutageSchedule {
    /// Wraps `inner`, forcing zero availability during each `[start, end)`
    /// window.
    ///
    /// # Panics
    /// Panics if any window has `start >= end`.
    pub fn new(inner: Box<dyn AvailabilityProcess + Send>, windows: Vec<(Slot, Slot)>) -> Self {
        for &(s, e) in &windows {
            assert!(s < e, "outage window [{s}, {e}) is empty");
        }
        Self { inner, windows }
    }

    /// Returns `true` if `slot` falls inside an outage window.
    pub fn is_down(&self, slot: Slot) -> bool {
        self.windows.iter().any(|&(s, e)| (s..e).contains(&slot))
    }

    /// The scheduled `[start, end)` outage windows, as given to
    /// [`new`](OutageSchedule::new).
    pub fn windows(&self) -> &[(Slot, Slot)] {
        &self.windows
    }

    /// Number of down slots within `[0, horizon)` — windows may overlap, so
    /// this counts slots, not window lengths.
    pub fn down_slots(&self, horizon: Slot) -> u64 {
        (0..horizon).filter(|&t| self.is_down(t)).count() as u64
    }
}

impl AvailabilityProcess for OutageSchedule {
    fn sample(&mut self, slot: Slot, fleet: &[f64], rng: &mut dyn RngCore) -> Vec<f64> {
        // Advance the inner process regardless, so that an outage does not
        // shift the inner chain's randomness timeline.
        let inner = self.inner.sample(slot, fleet, rng);
        if self.is_down(slot) {
            vec![0.0; fleet.len()]
        } else {
            inner
        }
    }
}

/// Uniform sample in `[0, 1)` from a raw RNG.
fn uniform(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits.
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Exact binomial sample by `n` Bernoulli draws (counts here are small).
fn binomial(n: u64, p: f64, rng: &mut dyn RngCore) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    (0..n).filter(|_| uniform(rng) < p).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn full_availability_returns_fleet() {
        let mut p = FullAvailability;
        let out = p.sample(0, &[10.0, 20.0], &mut rng());
        assert_eq!(out, vec![10.0, 20.0]);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut p = UniformAvailability::new(0.5, 0.9);
        let mut r = rng();
        for t in 0..200 {
            let out = p.sample(t, &[100.0], &mut r);
            assert!(out[0] >= 50.0 - 1e-9 && out[0] <= 90.0 + 1e-9, "{}", out[0]);
            assert_eq!(out[0], out[0].round());
        }
    }

    #[test]
    fn uniform_mean_is_about_midpoint() {
        let mut p = UniformAvailability::new(0.4, 0.8);
        let mut r = rng();
        let mean: f64 = (0..2000)
            .map(|t| p.sample(t, &[1000.0], &mut r)[0])
            .sum::<f64>()
            / 2000.0;
        assert!((mean - 600.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn markov_converges_to_stationary_fraction() {
        let mut p = MarkovAvailability::new(0.1, 0.3);
        assert!((p.stationary_fraction() - 0.75).abs() < 1e-12);
        let mut r = rng();
        let fleet = [400.0];
        // Burn in, then average.
        for t in 0..200 {
            p.sample(t, &fleet, &mut r);
        }
        let mean: f64 = (200..1200)
            .map(|t| p.sample(t, &fleet, &mut r)[0])
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 300.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn markov_never_exceeds_fleet() {
        let mut p = MarkovAvailability::new(0.05, 0.5);
        let mut r = rng();
        for t in 0..500 {
            let out = p.sample(t, &[50.0, 10.0], &mut r);
            assert!(out[0] >= 0.0 && out[0] <= 50.0);
            assert!(out[1] >= 0.0 && out[1] <= 10.0);
        }
    }

    #[test]
    fn diurnal_has_daily_shape() {
        let mut p = DiurnalAvailability::new(0.1, 0.4, 0.0, 24.0, 6.0);
        let mut r = rng();
        // Trough of load (max availability) at phase+18? With our formula the
        // sine is −1 at slot = phase + 18 (mod 24): load = base. At
        // phase + 6 the sine is +1: load = base + swing.
        let hi = p.sample(6 + 18, &[100.0], &mut r)[0];
        let lo = p.sample(6 + 6, &[100.0], &mut r)[0];
        assert!(hi > lo, "hi {hi} lo {lo}");
        assert!((hi - 90.0).abs() < 1.0);
        assert!((lo - 50.0).abs() < 1.0);
    }

    #[test]
    fn outage_forces_zero() {
        let mut p = OutageSchedule::new(Box::new(FullAvailability), vec![(10, 20)]);
        let mut r = rng();
        assert_eq!(p.sample(9, &[5.0], &mut r), vec![5.0]);
        assert_eq!(p.sample(10, &[5.0], &mut r), vec![0.0]);
        assert_eq!(p.sample(19, &[5.0], &mut r), vec![0.0]);
        assert_eq!(p.sample(20, &[5.0], &mut r), vec![5.0]);
        assert!(p.is_down(15));
        assert!(!p.is_down(25));
    }

    #[test]
    fn outage_window_accounting() {
        let p = OutageSchedule::new(Box::new(FullAvailability), vec![(10, 20), (15, 25)]);
        assert_eq!(p.windows(), &[(10, 20), (15, 25)]);
        // Overlapping windows cover slots 10..25 — 15 slots, not 20.
        assert_eq!(p.down_slots(100), 15);
        assert_eq!(p.down_slots(12), 2);
        assert_eq!(p.down_slots(0), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn outage_rejects_empty_window() {
        let _ = OutageSchedule::new(Box::new(FullAvailability), vec![(5, 5)]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(10, 0.0, &mut r), 0);
        assert_eq!(binomial(10, 1.0, &mut r), 10);
        let s = binomial(10_000, 0.5, &mut r);
        assert!((4_700..=5_300).contains(&s), "{s}");
    }
}
