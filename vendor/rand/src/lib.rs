//! Minimal, API-compatible stand-in for the `rand 0.8` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! exactly the surface the GreFar crates use: [`RngCore`], [`Rng`]
//! (`gen_range` over primitive ranges plus `gen_bool`), [`SeedableRng`],
//! a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64,
//! *not* upstream's ChaCha12) and [`rngs::mock::StepRng`].
//!
//! Streams differ from upstream `rand`; everything in this repository that
//! consumes randomness asserts determinism (same seed → same stream) or
//! distributional properties, never upstream golden values.

/// Core random-number-generation interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can act as a `gen_range` argument, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples a value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform sample in `[0, 1)` from 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    ///
    /// Internally xoshiro256++ (public domain construction by Blackman &
    /// Vigna); statistically strong and fast, but **not** the ChaCha12
    /// stream upstream `StdRng` produces.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Mock generators for tests.

        use super::super::RngCore;

        /// Arithmetic-progression generator, mirroring
        /// `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator returning `initial`, `initial + step`, …
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&y));
            let z: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(0, 1);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
