//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! Benchmarks run with warm-up followed by timed iterations and report
//! mean / median / min wall-clock per iteration (plus throughput when
//! declared). There is no statistical regression analysis, HTML report or
//! baseline store — the output is intended for relative before/after
//! comparisons on the same machine.
//!
//! # Machine-readable output
//!
//! `cargo bench -- --json [DIR]` additionally writes `BENCH_<target>.json`
//! (to `DIR`, default the current directory): a flat JSONL document with a
//! `bench.meta` header line carrying an environment fingerprint and one
//! `bench.case` line per benchmark with min/mean/median nanoseconds and
//! the sample count. Every line carries the telemetry wire-format version
//! (`"schema":1`, see `grefar-obs`), so `grefar_obs::json::parse_lines`
//! and `grefar-report bench-gate` consume the files directly. Without
//! `--json` the printed output is unchanged, byte for byte.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 60,
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.label(),
            self.sample_size,
            self.measurement_time,
            None,
            &mut f,
        );
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Declared per-iteration workload, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the minimum number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement wall-clock budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` over warm-up plus measured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one run, up to ~10% of the budget.
        let warm_budget = self.budget / 10;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= warm_budget {
                break;
            }
        }
        self.samples.clear();
        let start = Instant::now();
        while self.samples.len() < self.target_samples
            || (start.elapsed() < self.budget && self.samples.len() < 4 * self.target_samples)
        {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() >= self.budget && self.samples.len() >= self.target_samples {
                break;
            }
        }
    }
}

// Completed-case results, collected for the optional `--json` report.
struct CaseResult {
    label: String,
    min_ns: u128,
    mean_ns: u128,
    median_ns: u128,
    samples: usize,
}

static RESULTS: Mutex<Vec<CaseResult>> = Mutex::new(Vec::new());

// The telemetry wire-format version (grefar_obs::SCHEMA_VERSION); the shim
// stays dependency-free, so the constant is mirrored here.
const SCHEMA_VERSION: u32 = 1;

/// The `--json [DIR]` directory from the process arguments, if present.
/// `cargo bench -p CRATE -- --json target` forwards everything after `--`
/// to each (harness = false) bench binary.
fn json_output_dir() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(match args.next() {
                Some(dir) if !dir.starts_with("--") => dir,
                _ => String::from("."),
            });
        }
        if let Some(dir) = arg.strip_prefix("--json=") {
            return Some(dir.to_string());
        }
    }
    None
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes `BENCH_<target>.json` when the process ran with `--json [DIR]`.
///
/// Called by [`criterion_main!`] after every group has run; `target` is the
/// bench target's crate name. A no-op without the flag.
pub fn write_json_report(target: &str) {
    let Some(dir) = json_output_dir() else {
        return;
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"event\":\"bench.meta\",\"crate\":\"{}\",\
         \"arch\":\"{}\",\"os\":\"{}\",\"family\":\"{}\",\"cpus\":{cpus},\
         \"profile\":\"{profile}\",\"harness\":\"{}\"}}\n",
        escape_json(target),
        std::env::consts::ARCH,
        std::env::consts::OS,
        std::env::consts::FAMILY,
        env!("CARGO_PKG_VERSION"),
    );
    for case in results.iter() {
        out.push_str(&format!(
            "{{\"schema\":{SCHEMA_VERSION},\"event\":\"bench.case\",\"name\":\"{}\",\
             \"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"samples\":{}}}\n",
            escape_json(&case.label),
            case.min_ns,
            case.mean_ns,
            case.median_ns,
            case.samples,
        ));
    }
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("(wrote {})", path.display()),
        Err(e) => eprintln!("criterion shim: cannot write {}: {e}", path.display()),
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
        budget,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples — closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(CaseResult {
            label: label.to_string(),
            min_ns: min.as_nanos(),
            mean_ns: mean.as_nanos(),
            median_ns: median.as_nanos(),
            samples: sorted.len(),
        });
    let rate = throughput.map(|tp| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => format!(" ({:.4} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.4} B/s)", per_sec(n)),
        }
    });
    println!(
        "{label:<40} mean {:>12} median {:>12} min {:>12} n={}{}",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        sorted.len(),
        rate.unwrap_or_default(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, then writing the optional
/// `BENCH_<target>.json` report (see [`write_json_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report(env!("CARGO_CRATE_NAME"));
        }
    };
}
