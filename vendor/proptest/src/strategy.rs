//! The [`Strategy`] trait and its combinators (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: sampling draws a fresh
/// value directly, and failing cases are reported without shrinking.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds produced values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies, backing `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_raw() as usize) % self.options.len();
        self.options[idx].sample(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
