//! Minimal, API-compatible stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace uses — [`Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, ranges, tuples, [`Just`],
//! [`collection::vec`], [`any`], the [`proptest!`] runner macro and the
//! `prop_assert*`/`prop_assume`/`prop_oneof` macros — by **sampling only**:
//! each test case draws fresh values from a per-test deterministic RNG and
//! failures report the offending input, but no shrinking is attempted.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

use std::ops::{Range, RangeInclusive};

/// Built-in sampling for primitive types, backing [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_raw() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_raw() & 1 == 1
    }
}

/// Strategy producing unconstrained values of `T`, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.rng_mut().gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects (skips) the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-test runner macro, mirroring `proptest::proptest!`.
///
/// Runs each embedded `#[test]` function for `cases` iterations (default
/// 256, overridable via `#![proptest_config(..)]`), sampling every
/// `pattern in strategy` binding per iteration from a deterministic
/// per-test RNG. On failure the offending inputs are reported; there is
/// no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut completed: u32 = 0;
            let mut rejected: u64 = 0;
            let reject_budget = (config.cases as u64).saturating_mul(64).max(4096);
            while completed < config.cases {
                let mut inputs = ::std::string::String::new();
                $(
                    let sampled =
                        $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    inputs.push_str(&format!(
                        "{} = {:?}; ",
                        stringify!($arg),
                        &sampled
                    ));
                    let $arg = sampled;
                )*
                let case = ::std::panic::AssertUnwindSafe(
                    move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                );
                match ::std::panic::catch_unwind(case) {
                    Ok(Ok(())) => completed += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject)) => {
                        rejected += 1;
                        assert!(
                            rejected <= reject_budget,
                            "proptest: too many rejected cases ({rejected}) in {}",
                            stringify!($name)
                        );
                    }
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest case failed: {msg}\n    inputs: {}",
                            inputs.trim_end()
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case panicked\n    inputs: {}",
                            inputs.trim_end()
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}
