//! Runner configuration, case outcomes and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure with a message (from `prop_assert*`).
    Fail(String),
    /// The case was filtered out (from `prop_assume!`).
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG driving strategy sampling.
///
/// Each `proptest!` test seeds one of these from a hash of the test name,
/// so every `cargo test` run explores the same cases in the same order.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for the named test (FNV-1a hash of the name as the seed).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Raw 64 random bits.
    pub fn next_raw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Access to the underlying generator for `gen_range`-style sampling.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
